#ifndef RODB_COMMON_BYTES_H_
#define RODB_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>

namespace rodb {

/// Unaligned little-endian loads/stores. All on-disk integers in rodb are
/// little-endian; these helpers keep page code free of casts and UB.

inline uint32_t LoadLE32(const void* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreLE32(void* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

inline int32_t LoadLE32s(const void* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreLE32s(void* p, int32_t v) { std::memcpy(p, &v, sizeof(v)); }

inline uint64_t LoadLE64(const void* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreLE64(void* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

/// Rounds `n` up to the nearest multiple of `align` (align must be > 0).
constexpr uint64_t RoundUp(uint64_t n, uint64_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace rodb

#endif  // RODB_COMMON_BYTES_H_
