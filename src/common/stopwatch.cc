#include "common/stopwatch.h"

#include <sys/resource.h>
#include <sys/time.h>

namespace rodb {

namespace {
double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) + 1e-6 * static_cast<double>(tv.tv_usec);
}
}  // namespace

CpuUsage CurrentCpuUsage() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return {TimevalSeconds(usage.ru_utime), TimevalSeconds(usage.ru_stime)};
}

}  // namespace rodb
