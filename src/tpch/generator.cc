#include "tpch/generator.h"

#include <cstring>

#include "common/bytes.h"

namespace rodb::tpch {

namespace {

/// Copies `text` into a fixed-width field, space-padded.
void PutText(uint8_t* out, int width, const char* text) {
  const size_t len = std::strlen(text);
  std::memset(out, ' ', static_cast<size_t>(width));
  std::memcpy(out, text, len < static_cast<size_t>(width)
                             ? len
                             : static_cast<size_t>(width));
}

const char* const kReturnFlags[] = {"R", "A", "N"};
const char* const kLineStatus[] = {"O", "F"};
const char* const kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD",
                                     "NONE", "TAKE BACK RETURN"};
const char* const kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                                  "TRUCK", "MAIL", "FOB"};
const char* const kOrderStatus[] = {"F", "O", "P"};
const char* const kOrderPriority[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                      "4-NOT SPECI", "5-LOW"};

/// The CharPack alphabet (compression/codecs_internal.h) minus nothing:
/// comments draw from exactly the symbols the 4-bit codec can represent.
constexpr char kCommentAlphabet[] = " abcdefghijklmno";
constexpr int kCommentChars = 56;  ///< packed prefix of the 69-byte field

}  // namespace

LineitemGenerator::LineitemGenerator(uint64_t seed) : rng_(seed) {}

void LineitemGenerator::NextTuple(uint8_t* out) {
  // ~4 lineitems per order (TPC-H's LINEITEM:ORDERS ratio): advance the
  // orderkey with probability 1/4, keeping FOR-delta deltas in {0, 1}.
  if (count_ > 0 && rng_.Bernoulli(0.25)) {
    ++orderkey_;
    linenumber_ = 1;
  }
  const int32_t quantity = static_cast<int32_t>(rng_.UniformRange(1, 50));
  const int32_t price = static_cast<int32_t>(
      rng_.UniformRange(1000, kPriceDomain));
  const int32_t shipdate = static_cast<int32_t>(
      rng_.UniformRange(0, kDateDomain - 120));

  StoreLE32s(out + 0, static_cast<int32_t>(rng_.Uniform(kPartkeyDomain)));
  StoreLE32s(out + 4, orderkey_);
  StoreLE32s(out + 8, static_cast<int32_t>(rng_.Uniform(kSuppkeyDomain)));
  StoreLE32s(out + 12, linenumber_ <= 7 ? linenumber_ : 7);
  StoreLE32s(out + 16, quantity);
  StoreLE32s(out + 20, price * quantity % 1000000);
  PutText(out + 24, 1, kReturnFlags[rng_.Uniform(3)]);
  PutText(out + 25, 1, kLineStatus[rng_.Uniform(2)]);
  PutText(out + 26, 25, kShipInstruct[rng_.Uniform(4)]);
  PutText(out + 51, 10, kShipModes[rng_.Uniform(7)]);
  // L_COMMENT: 56 packable characters + 13 bytes of space padding.
  uint8_t* comment = out + 61;
  for (int i = 0; i < kCommentChars; ++i) {
    comment[i] =
        static_cast<uint8_t>(kCommentAlphabet[rng_.Uniform(16)]);
  }
  std::memset(comment + kCommentChars, ' ', 69 - kCommentChars);
  StoreLE32s(out + 130, static_cast<int32_t>(rng_.UniformRange(0, 10)));
  StoreLE32s(out + 134, static_cast<int32_t>(rng_.UniformRange(0, 8)));
  StoreLE32s(out + 138, shipdate);
  StoreLE32s(out + 142, shipdate + static_cast<int32_t>(rng_.UniformRange(1, 60)));
  StoreLE32s(out + 146, shipdate + static_cast<int32_t>(rng_.UniformRange(1, 120)));

  ++linenumber_;
  ++count_;
}

OrdersGenerator::OrdersGenerator(uint64_t seed) : rng_(seed) {}

void OrdersGenerator::NextTuple(uint8_t* out) {
  StoreLE32s(out + 0, static_cast<int32_t>(rng_.Uniform(kOrderdateDomain)));
  StoreLE32s(out + 4, orderkey_++);
  StoreLE32s(out + 8, static_cast<int32_t>(rng_.Uniform(kCustkeyDomain)));
  PutText(out + 12, 1, kOrderStatus[rng_.Uniform(3)]);
  PutText(out + 13, 11, kOrderPriority[rng_.Uniform(5)]);
  StoreLE32s(out + 24, static_cast<int32_t>(rng_.UniformRange(1000, kPriceDomain)));
  StoreLE32s(out + 28, static_cast<int32_t>(rng_.Uniform(2)));
  ++count_;
}

}  // namespace rodb::tpch
