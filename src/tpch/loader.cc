#include "tpch/loader.h"

#include <vector>

#include "common/macros.h"

namespace rodb::tpch {

std::string TableName(const std::string& base, const LoadSpec& spec) {
  if (!spec.name.empty()) return spec.name;
  std::string name = base;
  if (spec.orders_plain_for) {
    name += "_zfor";
  } else if (spec.compressed) {
    name += "_z";
  }
  switch (spec.layout) {
    case Layout::kRow:
      name += "_row";
      break;
    case Layout::kColumn:
      name += "_col";
      break;
    case Layout::kPax:
      name += "_pax";
      break;
  }
  return name;
}

namespace {

template <typename Generator>
Result<TableMeta> LoadTable(const LoadSpec& spec, const std::string& base,
                            Result<Schema> schema_result, int tuple_width,
                            uint64_t generator_seed) {
  RODB_ASSIGN_OR_RETURN(Schema schema, std::move(schema_result));
  const std::string name = TableName(base, spec);
  RODB_ASSIGN_OR_RETURN(
      std::unique_ptr<TableWriter> writer,
      TableWriter::Create(spec.dir, name, schema, spec.layout,
                          spec.page_size));
  Generator gen(generator_seed);
  std::vector<uint8_t> tuple(static_cast<size_t>(tuple_width));
  for (uint64_t i = 0; i < spec.num_tuples; ++i) {
    gen.NextTuple(tuple.data());
    RODB_RETURN_IF_ERROR(writer->Append(tuple.data()));
  }
  RODB_RETURN_IF_ERROR(writer->Finish());
  return Catalog::LoadTableMeta(spec.dir, name);
}

template <typename Generator>
Result<TableMeta> EnsureTable(const LoadSpec& spec, const std::string& base,
                              Result<Schema> schema_result, int tuple_width,
                              uint64_t generator_seed) {
  const std::string name = TableName(base, spec);
  auto existing = Catalog::LoadTableMeta(spec.dir, name);
  if (existing.ok() && existing->num_tuples == spec.num_tuples &&
      existing->page_size == spec.page_size &&
      existing->layout == spec.layout) {
    return existing;
  }
  return LoadTable<Generator>(spec, base, std::move(schema_result),
                              tuple_width, generator_seed);
}

Result<Schema> OrdersSchemaFor(const LoadSpec& spec) {
  if (spec.orders_plain_for) return OrdersZForSchema();
  return spec.compressed ? OrdersZSchema() : OrdersSchema();
}

}  // namespace

Result<TableMeta> LoadLineitem(const LoadSpec& spec) {
  return LoadTable<LineitemGenerator>(
      spec, "lineitem",
      spec.compressed ? LineitemZSchema() : LineitemSchema(), 150, spec.seed);
}

Result<TableMeta> LoadOrders(const LoadSpec& spec) {
  return LoadTable<OrdersGenerator>(spec, "orders", OrdersSchemaFor(spec), 32,
                                    spec.seed + 1);
}

Result<TableMeta> EnsureLineitem(const LoadSpec& spec) {
  return EnsureTable<LineitemGenerator>(
      spec, "lineitem",
      spec.compressed ? LineitemZSchema() : LineitemSchema(), 150, spec.seed);
}

Result<TableMeta> EnsureOrders(const LoadSpec& spec) {
  return EnsureTable<OrdersGenerator>(spec, "orders", OrdersSchemaFor(spec),
                                      32, spec.seed + 1);
}

}  // namespace rodb::tpch
