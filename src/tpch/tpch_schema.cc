#include "tpch/tpch_schema.h"

#include <cmath>

namespace rodb::tpch {

namespace {

/// LINEITEM attribute descriptors; `compressed` selects Figure 5's right-
/// hand column ("Z" specs). 150 raw bytes either way.
std::vector<AttributeDesc> LineitemAttrs(bool compressed) {
  auto z = [compressed](CodecSpec spec) {
    return compressed ? spec : CodecSpec::None();
  };
  return {
      AttributeDesc::Int32("L_PARTKEY"),                                // 1
      AttributeDesc::Int32("L_ORDERKEY", z(CodecSpec::ForDelta(8))),    // 2Z
      AttributeDesc::Int32("L_SUPPKEY"),                                // 3
      AttributeDesc::Int32("L_LINENUMBER", z(CodecSpec::BitPack(3))),   // 4Z
      AttributeDesc::Int32("L_QUANTITY", z(CodecSpec::BitPack(6))),     // 5Z
      AttributeDesc::Int32("L_EXTENDEDPRICE"),                          // 6
      AttributeDesc::Text("L_RETURNFLAG", 1, z(CodecSpec::Dict(2))),    // 7Z
      AttributeDesc::Text("L_LINESTATUS", 1),                           // 8
      AttributeDesc::Text("L_SHIPINSTRUCT", 25, z(CodecSpec::Dict(2))), // 9Z
      AttributeDesc::Text("L_SHIPMODE", 10, z(CodecSpec::Dict(3))),     // 10Z
      // "pack, 28 bytes": 56 characters x 4 bits from a 16-symbol
      // alphabet; the remaining 13 bytes of the 69-byte field are padding.
      AttributeDesc::Text("L_COMMENT", 69, z(CodecSpec::CharPack(4, 56))),
      AttributeDesc::Int32("L_DISCOUNT", z(CodecSpec::Dict(4))),        // 12Z
      AttributeDesc::Int32("L_TAX", z(CodecSpec::Dict(4))),             // 13Z
      AttributeDesc::Int32("L_SHIPDATE", z(CodecSpec::BitPack(16))),    // 14Z
      AttributeDesc::Int32("L_COMMITDATE", z(CodecSpec::BitPack(16))),  // 15Z
      AttributeDesc::Int32("L_RECEIPTDATE", z(CodecSpec::BitPack(16))), // 16Z
  };
}

std::vector<AttributeDesc> OrdersAttrs(bool compressed, bool plain_for) {
  auto z = [compressed](CodecSpec spec) {
    return compressed ? spec : CodecSpec::None();
  };
  // Figure 9 swaps O_ORDERKEY between FOR-delta (8 bits) and plain FOR
  // (16 bits: "storing the difference from a base value instead of the
  // previous attribute requires more space, 16 bits instead of 8").
  const CodecSpec orderkey_spec =
      plain_for ? CodecSpec::For(16) : CodecSpec::ForDelta(8);
  return {
      AttributeDesc::Int32("O_ORDERDATE", z(CodecSpec::BitPack(14))),    // 1Z
      AttributeDesc::Int32("O_ORDERKEY", z(orderkey_spec)),              // 2Z
      AttributeDesc::Int32("O_CUSTKEY"),                                 // 3
      AttributeDesc::Text("O_ORDERSTATUS", 1, z(CodecSpec::Dict(2))),    // 4Z
      AttributeDesc::Text("O_ORDERPRIORITY", 11, z(CodecSpec::Dict(3))), // 5Z
      AttributeDesc::Int32("O_TOTALPRICE"),                              // 6
      AttributeDesc::Int32("O_SHIPPRIORITY", z(CodecSpec::BitPack(1))),  // 7Z
  };
}

}  // namespace

Result<Schema> LineitemSchema() { return Schema::Make(LineitemAttrs(false)); }
Result<Schema> LineitemZSchema() { return Schema::Make(LineitemAttrs(true)); }
Result<Schema> OrdersSchema() {
  return Schema::Make(OrdersAttrs(false, false));
}
Result<Schema> OrdersZSchema() {
  return Schema::Make(OrdersAttrs(true, false));
}
Result<Schema> OrdersZForSchema() {
  return Schema::Make(OrdersAttrs(true, true));
}

int32_t SelectivityCutoff(int32_t domain, double selectivity) {
  if (selectivity <= 0.0) return 0;
  if (selectivity >= 1.0) return domain;
  return static_cast<int32_t>(
      std::llround(static_cast<double>(domain) * selectivity));
}

}  // namespace rodb::tpch
