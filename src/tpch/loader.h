#ifndef RODB_TPCH_LOADER_H_
#define RODB_TPCH_LOADER_H_

#include <string>

#include "storage/catalog.h"
#include "storage/table_files.h"
#include "tpch/generator.h"

namespace rodb::tpch {

/// Which table to materialize and how.
struct LoadSpec {
  std::string dir;                     ///< database directory (must exist)
  uint64_t num_tuples = 0;
  Layout layout = Layout::kRow;
  bool compressed = false;             ///< use the -Z schema
  /// ORDERS only: use plain FOR(16) instead of FOR-delta(8) on O_ORDERKEY
  /// (the Figure 9 ablation). Implies compressed.
  bool orders_plain_for = false;
  size_t page_size = kDefaultPageSize;
  uint64_t seed = 42;
  /// Table name; empty derives "<base>[_z|_zfor]_<row|col>".
  std::string name;
};

/// Canonical table name for a spec ("lineitem_z_col", "orders_row", ...).
std::string TableName(const std::string& base, const LoadSpec& spec);

/// Generates and bulk-loads LINEITEM / ORDERS per the spec. Returns the
/// catalog entry of the created table.
Result<TableMeta> LoadLineitem(const LoadSpec& spec);
Result<TableMeta> LoadOrders(const LoadSpec& spec);

/// Loads the table only if its catalog entry is absent or disagrees with
/// the spec (tuple count / page size); benches use this to reuse datasets
/// across runs.
Result<TableMeta> EnsureLineitem(const LoadSpec& spec);
Result<TableMeta> EnsureOrders(const LoadSpec& spec);

}  // namespace rodb::tpch

#endif  // RODB_TPCH_LOADER_H_
