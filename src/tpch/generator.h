#ifndef RODB_TPCH_GENERATOR_H_
#define RODB_TPCH_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "tpch/tpch_schema.h"

namespace rodb::tpch {

/// Deterministic generator of LINEITEM tuples (the dbgen substitute; see
/// DESIGN.md substitution #3). Tuples are produced in clustering order:
/// L_ORDERKEY ascends with ~4 lineitems per order, so FOR-delta deltas are
/// always 0 or 1, matching the "sorted ID attribute" the paper compresses
/// at 8 bits.
class LineitemGenerator {
 public:
  explicit LineitemGenerator(uint64_t seed = 42);

  /// Writes the next tuple's 150 raw bytes into `out`.
  void NextTuple(uint8_t* out);

  uint64_t tuples_generated() const { return count_; }

 private:
  Random rng_;
  int32_t orderkey_ = 1;
  int32_t linenumber_ = 1;
  uint64_t count_ = 0;
};

/// Deterministic generator of ORDERS tuples: O_ORDERKEY is the dense
/// ascending key (delta always 1).
class OrdersGenerator {
 public:
  explicit OrdersGenerator(uint64_t seed = 43);

  /// Writes the next tuple's 32 raw bytes into `out`.
  void NextTuple(uint8_t* out);

  uint64_t tuples_generated() const { return count_; }

 private:
  Random rng_;
  int32_t orderkey_ = 1;
  uint64_t count_ = 0;
};

}  // namespace rodb::tpch

#endif  // RODB_TPCH_GENERATOR_H_
