#ifndef RODB_TPCH_TPCH_SCHEMA_H_
#define RODB_TPCH_TPCH_SCHEMA_H_

#include <cstdint>

#include "storage/schema.h"

namespace rodb::tpch {

/// The two tables of the study (Section 3.1, Figure 5), with the paper's
/// modifications to stock TPC-H: all decimals/dates are four-byte ints,
/// L_COMMENT is fixed text sized to make LINEITEM exactly 150 bytes, and
/// ORDERS drops/resizes text fields to reach exactly 32 bytes.
///
/// The -Z variants carry the compressed attribute specs of Figure 5's
/// right-hand side: LINEITEM-Z encodes to 52 bytes/tuple and ORDERS-Z to
/// 12 bytes/tuple.

Result<Schema> LineitemSchema();
Result<Schema> LineitemZSchema();
Result<Schema> OrdersSchema();
Result<Schema> OrdersZSchema();
/// ORDERS-Z with plain FOR (16 bits) instead of FOR-delta (8 bits) on
/// O_ORDERKEY -- the compression ablation of Figure 9.
Result<Schema> OrdersZForSchema();

// Attribute indices (0-based; Figure 5 numbers them from 1).
inline constexpr int kLPartkey = 0;
inline constexpr int kLOrderkey = 1;
inline constexpr int kLSuppkey = 2;
inline constexpr int kLLinenumber = 3;
inline constexpr int kLQuantity = 4;
inline constexpr int kLExtendedprice = 5;
inline constexpr int kLReturnflag = 6;
inline constexpr int kLLinestatus = 7;
inline constexpr int kLShipinstruct = 8;
inline constexpr int kLShipmode = 9;
inline constexpr int kLComment = 10;
inline constexpr int kLDiscount = 11;
inline constexpr int kLTax = 12;
inline constexpr int kLShipdate = 13;
inline constexpr int kLCommitdate = 14;
inline constexpr int kLReceiptdate = 15;

inline constexpr int kOOrderdate = 0;
inline constexpr int kOOrderkey = 1;
inline constexpr int kOCustkey = 2;
inline constexpr int kOOrderstatus = 3;
inline constexpr int kOOrderpriority = 4;
inline constexpr int kOTotalprice = 5;
inline constexpr int kOShippriority = 6;

// Value domains the generator draws from (all uniform unless noted). The
// experiment harness derives predicate cutoffs from these.
inline constexpr int32_t kPartkeyDomain = 200000;   ///< L_PARTKEY in [0, N)
inline constexpr int32_t kSuppkeyDomain = 10000;
inline constexpr int32_t kCustkeyDomain = 150000;
inline constexpr int32_t kOrderdateDomain = 10000;  ///< O_ORDERDATE in [0, N)
inline constexpr int32_t kDateDomain = 60000;       ///< lineitem dates < 2^16
inline constexpr int32_t kPriceDomain = 100000;

/// Predicate cutoff c such that `attr < c` selects `selectivity` of a
/// uniform [0, domain) attribute.
int32_t SelectivityCutoff(int32_t domain, double selectivity);

}  // namespace rodb::tpch

#endif  // RODB_TPCH_TPCH_SCHEMA_H_
