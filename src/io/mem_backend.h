#ifndef RODB_IO_MEM_BACKEND_H_
#define RODB_IO_MEM_BACKEND_H_

#include <map>
#include <memory>
#include <vector>

#include "io/io.h"

namespace rodb {

/// In-memory file system serving the same stream interface as
/// FileBackend. Used by tests (no disk churn) and by model-driven sweeps
/// where the disk array is simulated analytically while the engine does
/// real CPU work over memory-resident pages.
class MemBackend : public IoBackend {
 public:
  /// Registers (or replaces) a file.
  void PutFile(const std::string& path, std::vector<uint8_t> contents);

  /// Convenience for loaders that want to append pages incrementally.
  std::vector<uint8_t>* MutableFile(const std::string& path);

  bool HasFile(const std::string& path) const {
    return files_.count(path) != 0;
  }
  uint64_t FileSize(const std::string& path) const;

  Result<std::unique_ptr<SequentialStream>> OpenStream(
      const std::string& path, const IoOptions& options) override;

 private:
  std::map<std::string, std::shared_ptr<std::vector<uint8_t>>> files_;
};

}  // namespace rodb

#endif  // RODB_IO_MEM_BACKEND_H_
