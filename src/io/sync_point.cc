#include "io/sync_point.h"

#include <utility>

namespace rodb {

std::atomic<bool> SyncPoint::armed_{false};
std::atomic<uint64_t> SyncPoint::hits_{0};
SyncPoint::Hook SyncPoint::hook_;

void SyncPoint::Install(Hook hook) {
  armed_.store(false, std::memory_order_release);
  hook_ = std::move(hook);
  if (hook_) armed_.store(true, std::memory_order_release);
}

uint64_t SyncPoint::Hits() { return hits_.load(std::memory_order_relaxed); }

Status SyncPoint::Hit(std::string_view point, std::string_view path) {
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return hook_(point, path);
}

}  // namespace rodb
