#include "io/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>

#include "common/macros.h"
#include "io/sync_point.h"

namespace rodb {
namespace {

FsyncLevel LevelFromEnvironment() {
  if (const char* p = std::getenv("RODB_PARANOID_FSYNC")) {
    std::string v(p);
    if (v == "1" || v == "ON" || v == "on" || v == "true") {
      return FsyncLevel::kParanoid;
    }
  }
  if (const char* p = std::getenv("RODB_FSYNC")) {
    std::string v(p);
    if (v == "off" || v == "none" || v == "0") return FsyncLevel::kNone;
    if (v == "paranoid") return FsyncLevel::kParanoid;
  }
  return FsyncLevel::kCommit;
}

std::atomic<int>& LevelSlot() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnvironment())};
  return level;
}

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

class PosixDurableFile : public DurableFile {
 public:
  PosixDurableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixDurableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t size) override {
    if (fd_ < 0) return Status::IoError("append on closed file " + path_);
    RODB_RETURN_IF_ERROR(SyncPoint::Hit("durable.append", path_));
    const char* p = static_cast<const char*>(data);
    while (size > 0) {
      ssize_t n = ::write(fd_, p, size);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("write", path_));
      }
      p += n;
      size -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IoError("sync on closed file " + path_);
    RODB_RETURN_IF_ERROR(SyncPoint::Hit("durable.sync", path_));
    auto start = std::chrono::steady_clock::now();
    if (::fsync(fd_) != 0) {
      return Status::IoError(ErrnoMessage("fsync", path_));
    }
    auto& m = DurabilityMetrics::Get();
    m.syncs->Increment();
    m.sync_micros->Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Status::IoError(ErrnoMessage("close", path_));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixDurableEnv : public DurableEnv {
 public:
  Result<std::unique_ptr<DurableFile>> Create(const std::string& path) override {
    RODB_RETURN_IF_ERROR(SyncPoint::Hit("durable.create", path));
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
    return {std::make_unique<PosixDurableFile>(fd, path)};
  }

  Status Rename(const std::string& from, const std::string& to) override {
    RODB_RETURN_IF_ERROR(SyncPoint::Hit("durable.rename", from));
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError(ErrnoMessage("rename", from + " -> " + to));
    }
    DurabilityMetrics::Get().renames->Increment();
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    RODB_RETURN_IF_ERROR(SyncPoint::Hit("durable.sync_dir", dir));
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Status::IoError(ErrnoMessage("open dir", dir));
    auto start = std::chrono::steady_clock::now();
    int rc = ::fsync(fd);
    int saved = errno;
    ::close(fd);
    if (rc != 0) {
      errno = saved;
      return Status::IoError(ErrnoMessage("fsync dir", dir));
    }
    auto& m = DurabilityMetrics::Get();
    m.dir_syncs->Increment();
    m.sync_micros->Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    RODB_RETURN_IF_ERROR(SyncPoint::Hit("durable.remove", path));
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError(ErrnoMessage("unlink", path));
    }
    return Status::OK();
  }
};

std::atomic<DurableEnv*>& DefaultSlot() {
  static std::atomic<DurableEnv*> slot{nullptr};
  return slot;
}

}  // namespace

FsyncLevel GetFsyncLevel() {
  return static_cast<FsyncLevel>(LevelSlot().load(std::memory_order_relaxed));
}

void SetFsyncLevel(FsyncLevel level) {
  LevelSlot().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool FsyncAt(FsyncLevel threshold) {
  return static_cast<int>(GetFsyncLevel()) >= static_cast<int>(threshold);
}

DurabilityMetrics& DurabilityMetrics::Get() {
  static DurabilityMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    DurabilityMetrics metrics;
    metrics.syncs = reg.GetCounter("rodb.durability.syncs");
    metrics.dir_syncs = reg.GetCounter("rodb.durability.dir_syncs");
    metrics.sync_micros = reg.GetCounter("rodb.durability.sync_micros");
    metrics.renames = reg.GetCounter("rodb.durability.renames");
    metrics.torn_pages_detected =
        reg.GetCounter("rodb.durability.torn_pages_detected");
    metrics.recovery_sweeps = reg.GetCounter("rodb.durability.recovery_sweeps");
    metrics.tmp_files_swept = reg.GetCounter("rodb.durability.tmp_files_swept");
    return metrics;
  }();
  return m;
}

DurableEnv* DurableEnv::Posix() {
  static PosixDurableEnv env;
  return &env;
}

DurableEnv* DurableEnv::Default() {
  DurableEnv* env = DefaultSlot().load(std::memory_order_acquire);
  return env != nullptr ? env : Posix();
}

DurableEnv* DurableEnv::SetDefault(DurableEnv* env) {
  DurableEnv* prev = DefaultSlot().exchange(env, std::memory_order_acq_rel);
  return prev != nullptr ? prev : Posix();
}

Status DurableWriteFile(const std::string& path, std::string_view data,
                        DurableEnv* env) {
  if (env == nullptr) env = DurableEnv::Default();
  RODB_ASSIGN_OR_RETURN(auto file, env->Create(path));
  Status status = file->Append(data);
  if (status.ok() && FsyncAt(FsyncLevel::kCommit)) status = file->Sync();
  Status close_status = file->Close();
  if (status.ok()) status = close_status;
  if (!status.ok()) {
    env->Remove(path);
    return status;
  }
  if (FsyncAt(FsyncLevel::kParanoid)) {
    RODB_RETURN_IF_ERROR(env->SyncDir(ParentDir(path)));
  }
  return Status::OK();
}

Status AtomicPublishFile(const std::string& path, std::string_view data,
                         DurableEnv* env) {
  if (env == nullptr) env = DurableEnv::Default();
  const std::string tmp = path + ".tmp";
  RODB_ASSIGN_OR_RETURN(auto file, env->Create(tmp));
  Status status = file->Append(data);
  if (status.ok() && FsyncAt(FsyncLevel::kCommit)) status = file->Sync();
  Status close_status = file->Close();
  if (status.ok()) status = close_status;
  if (status.ok()) status = env->Rename(tmp, path);
  if (!status.ok()) {
    env->Remove(tmp);
    return status;
  }
  if (FsyncAt(FsyncLevel::kCommit)) {
    RODB_RETURN_IF_ERROR(env->SyncDir(ParentDir(path)));
  }
  return Status::OK();
}

}  // namespace rodb
