#include "io/retry_backend.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rodb {

namespace {

/// Same basename-only stream identity as the fault injector's StreamSeed
/// (io/fault_injection.cc): fresh temp directories must not change the
/// jitter sequence a given stream draws.
uint64_t JitterSeed(uint64_t seed, const std::string& path, uint64_t offset) {
  const size_t slash = path.find_last_of('/');
  const size_t start = slash == std::string::npos ? 0 : slash + 1;
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = start; i < path.size(); ++i) {
    h ^= static_cast<uint8_t>(path[i]);
    h *= 1099511628211ULL;
  }
  h ^= seed + 0x51afd7ed558ccd25ULL;
  h *= 1099511628211ULL;
  h ^= offset + 1;
  h *= 1099511628211ULL;
  return h;
}

struct RetryMetrics {
  obs::Counter* attempts;
  obs::Counter* successes;
  obs::Counter* giveups;
  obs::Counter* abandoned;
};

const RetryMetrics& Metrics() {
  static RetryMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    return RetryMetrics{reg.GetCounter("rodb.resilience.retry.attempts"),
                        reg.GetCounter("rodb.resilience.retry.successes"),
                        reg.GetCounter("rodb.resilience.retry.giveups"),
                        reg.GetCounter("rodb.resilience.retry.abandoned")};
  }();
  return m;
}

/// Backoff before 0-based retry `k`: exponential base, jittered down to
/// at most half to decorrelate streams, zero if the policy asks for none.
uint64_t BackoffMicros(const RetryPolicy& policy, int k, Random* jitter) {
  if (policy.initial_backoff_micros == 0) return 0;
  uint64_t base = policy.initial_backoff_micros;
  for (int i = 0; i < k && base < policy.max_backoff_micros; ++i) base *= 2;
  base = std::min(base, policy.max_backoff_micros);
  const uint64_t half = base / 2;
  return half + jitter->Uniform(base - half + 1);
}

}  // namespace

template <typename T>
Result<T> RetryingBackend::RunWithRetries(
    const std::function<Result<T>()>& op, Random* jitter,
    obs::QueryTrace* trace) {
  Result<T> result = op();
  if (result.ok() || !result.status().IsTransient() || !policy_.enabled()) {
    return result;
  }
  for (int k = 0; k < policy_.max_retries; ++k) {
    obs::SpanTimer timer(trace, obs::TracePhase::kIoRetry);
    if (alive_) {
      Status alive = alive_();
      if (!alive.ok()) {
        // The query died while we were failing; surface its status, not
        // the transient error, so cancellation is reported as such.
        abandoned_.fetch_add(1);
        Metrics().abandoned->Increment();
        return alive;
      }
    }
    const uint64_t backoff = BackoffMicros(policy_, k, jitter);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
    attempts_.fetch_add(1);
    Metrics().attempts->Increment();
    result = op();
    if (result.ok()) {
      successes_.fetch_add(1);
      Metrics().successes->Increment();
      return result;
    }
    if (!result.status().IsTransient()) return result;
  }
  giveups_.fetch_add(1);
  Metrics().giveups->Increment();
  return result;
}

class RetryingBackend::RetryStream final : public SequentialStream {
 public:
  RetryStream(std::unique_ptr<SequentialStream> inner, RetryingBackend* owner,
              uint64_t jitter_seed, obs::QueryTrace* trace)
      : inner_(std::move(inner)),
        owner_(owner),
        jitter_(jitter_seed),
        trace_(trace) {}

  Result<IoView> Next() override {
    return owner_->RunWithRetries<IoView>([this] { return inner_->Next(); },
                                          &jitter_, trace_);
  }

  uint64_t file_size() const override { return inner_->file_size(); }

 private:
  std::unique_ptr<SequentialStream> inner_;
  RetryingBackend* owner_;
  Random jitter_;
  obs::QueryTrace* trace_;
};

Result<std::unique_ptr<SequentialStream>> RetryingBackend::OpenStream(
    const std::string& path, const IoOptions& options) {
  Random jitter(JitterSeed(policy_.seed, path, options.start_offset));
  RODB_ASSIGN_OR_RETURN(
      std::unique_ptr<SequentialStream> inner,
      (RunWithRetries<std::unique_ptr<SequentialStream>>(
          [&] { return inner_->OpenStream(path, options); }, &jitter,
          options.read.trace)));
  return std::unique_ptr<SequentialStream>(
      new RetryStream(std::move(inner), this,
                      JitterSeed(policy_.seed ^ 0xa24baed4963ee407ULL, path,
                                 options.start_offset),
                      options.read.trace));
}

}  // namespace rodb
