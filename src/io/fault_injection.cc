#include "io/fault_injection.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/random.h"

namespace rodb {

namespace {

/// FNV-1a over the path's basename, mixed with the stream's seed and byte
/// range so distinct streams draw independent (but reproducible) fault
/// sequences. The directory part is deliberately excluded: fuzz runs use
/// fresh temp directories, and fault sequences must not depend on their
/// random names.
uint64_t StreamSeed(uint64_t seed, const std::string& path, uint64_t offset) {
  const size_t slash = path.find_last_of('/');
  const size_t start = slash == std::string::npos ? 0 : slash + 1;
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = start; i < path.size(); ++i) {
    h ^= static_cast<uint8_t>(path[i]);
    h *= 1099511628211ULL;
  }
  h ^= seed + 0x9e3779b97f4a7c15ULL;
  h *= 1099511628211ULL;
  h ^= offset + 1;
  h *= 1099511628211ULL;
  return h;
}

}  // namespace

class FaultInjectingBackend::FaultStream final : public SequentialStream {
 public:
  FaultStream(std::unique_ptr<SequentialStream> inner,
              FaultInjectingBackend* owner, uint64_t stream_seed)
      : inner_(std::move(inner)), owner_(owner), rng_(stream_seed) {
    const FaultSpec& spec = owner_->spec_;
    if (spec.truncate_probability > 0 &&
        rng_.Bernoulli(spec.truncate_probability)) {
      // End the stream after a random prefix of whatever it would have
      // served (0 = immediate EOF, as if the whole range were gone).
      truncate_at_ = rng_.Uniform(inner_->file_size() + 1);
      owner_->injected_truncations_.fetch_add(1);
    }
  }

  Result<IoView> Next() override {
    const FaultSpec& spec = owner_->spec_;
    if (units_served_++ == spec.fail_after_units) {
      owner_->injected_errors_.fetch_add(1);
      return Status::IoError("injected I/O failure");
    }
    if (spec.error_probability > 0 && rng_.Bernoulli(spec.error_probability)) {
      owner_->injected_errors_.fetch_add(1);
      return Status::IoError("injected transient I/O error");
    }
    if (remainder_size_ > 0) {
      return ServeFromBuffer();
    }
    RODB_ASSIGN_OR_RETURN(IoView view, inner_->Next());
    if (view.size == 0) return view;
    if (truncate_at_ >= 0) {
      const uint64_t limit = static_cast<uint64_t>(truncate_at_);
      if (bytes_served_ >= limit) {
        return IoView{nullptr, 0, view.file_offset};
      }
      view.size = std::min<size_t>(view.size,
                                   static_cast<size_t>(limit - bytes_served_));
    }
    // From here every mutation works on a private copy: the inner view
    // must stay byte-exact for any retry/other decorator.
    buffer_.assign(view.data, view.data + view.size);
    buffer_offset_ = view.file_offset;
    buffer_served_ = 0;
    remainder_size_ = buffer_.size();
    if (spec.bit_flip_probability > 0 &&
        rng_.Bernoulli(spec.bit_flip_probability)) {
      const uint64_t bit = rng_.Uniform(buffer_.size() * 8);
      buffer_[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      owner_->injected_bit_flips_.fetch_add(1);
    }
    return ServeFromBuffer();
  }

  uint64_t file_size() const override { return inner_->file_size(); }

 private:
  Result<IoView> ServeFromBuffer() {
    const FaultSpec& spec = owner_->spec_;
    size_t take = remainder_size_;
    if (take > 1 && spec.short_read_probability > 0 &&
        rng_.Bernoulli(spec.short_read_probability)) {
      take = 1 + static_cast<size_t>(rng_.Uniform(take - 1));
      owner_->injected_short_reads_.fetch_add(1);
    }
    IoView view{buffer_.data() + buffer_served_, take,
                buffer_offset_ + buffer_served_};
    buffer_served_ += take;
    remainder_size_ -= take;
    bytes_served_ += take;
    return view;
  }

  std::unique_ptr<SequentialStream> inner_;
  FaultInjectingBackend* owner_;
  Random rng_;
  int64_t truncate_at_ = -1;  ///< stream byte budget; -1 = no truncation
  int64_t units_served_ = 0;
  uint64_t bytes_served_ = 0;
  /// Private copy of the current inner view (bit flips / short reads).
  std::vector<uint8_t> buffer_;
  uint64_t buffer_offset_ = 0;
  size_t buffer_served_ = 0;
  size_t remainder_size_ = 0;
};

Result<std::unique_ptr<SequentialStream>> FaultInjectingBackend::OpenStream(
    const std::string& path, const IoOptions& options) {
  RODB_ASSIGN_OR_RETURN(std::unique_ptr<SequentialStream> inner,
                        inner_->OpenStream(path, options));
  return std::unique_ptr<SequentialStream>(new FaultStream(
      std::move(inner), this,
      StreamSeed(spec_.seed, path, options.start_offset)));
}

class TracingBackend::TracingStream final : public SequentialStream {
 public:
  TracingStream(std::unique_ptr<SequentialStream> inner,
                TracingBackend* owner, std::string path)
      : inner_(std::move(inner)), owner_(owner), path_(std::move(path)) {}

  Result<IoView> Next() override {
    RODB_ASSIGN_OR_RETURN(IoView view, inner_->Next());
    if (view.size > 0) owner_->Record(path_, 1, view.size);
    return view;
  }

  uint64_t file_size() const override { return inner_->file_size(); }

 private:
  std::unique_ptr<SequentialStream> inner_;
  TracingBackend* owner_;
  std::string path_;
};

Result<std::unique_ptr<SequentialStream>> TracingBackend::OpenStream(
    const std::string& path, const IoOptions& options) {
  RODB_ASSIGN_OR_RETURN(std::unique_ptr<SequentialStream> inner,
                        inner_->OpenStream(path, options));
  {
    std::lock_guard<std::mutex> lock(mu_);
    traces_[path].opens += 1;
  }
  return std::unique_ptr<SequentialStream>(
      new TracingStream(std::move(inner), this, path));
}

void TracingBackend::Record(const std::string& path, uint64_t units,
                            uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  PathTrace& t = traces_[path];
  t.units += units;
  t.bytes += bytes;
}

TracingBackend::PathTrace TracingBackend::Trace(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(path);
  return it == traces_.end() ? PathTrace{} : it->second;
}

std::vector<std::string> TracingBackend::Paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  paths.reserve(traces_.size());
  for (const auto& [path, trace] : traces_) paths.push_back(path);
  return paths;
}

uint64_t TracingBackend::total_opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, trace] : traces_) total += trace.opens;
  return total;
}

void TracingBackend::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
}

}  // namespace rodb
