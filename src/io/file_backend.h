#ifndef RODB_IO_FILE_BACKEND_H_
#define RODB_IO_FILE_BACKEND_H_

#include "io/io.h"

namespace rodb {

/// Reads real files with a non-blocking prefetching reader.
///
/// The paper implements prefetching with Linux AIO inside a single-
/// threaded process; rodb reaches the same behaviour portably with one
/// background producer thread per stream that keeps up to `prefetch_depth`
/// I/O units resident in a ring of reusable buffers while the consumer
/// (the query engine) drains them in order. As in the paper there is no
/// buffer pool: the stream hands the query a pointer into the ring.
class FileBackend : public IoBackend {
 public:
  Result<std::unique_ptr<SequentialStream>> OpenStream(
      const std::string& path, const IoOptions& options) override;
};

}  // namespace rodb

#endif  // RODB_IO_FILE_BACKEND_H_
