#include "io/file_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace rodb {

namespace {

/// Prefetching stream over a POSIX fd. A producer thread preads
/// sequentially into a bounded ring; Next() hands units to the consumer in
/// file order. The ring holds prefetch_depth + 1 buffers: depth in flight
/// plus the one the consumer is currently holding.
class AsyncFileStream final : public SequentialStream {
 public:
  AsyncFileStream(int fd, uint64_t file_size, const IoOptions& options)
      : fd_(fd), file_size_(file_size),
        range_start_(std::min(options.start_offset, file_size)),
        range_end_(options.length > file_size - range_start_
                       ? file_size
                       : range_start_ + options.length),
        unit_(options.read.io_unit_bytes),
        depth_(options.read.prefetch_depth < 1 ? 1
                                               : options.read.prefetch_depth),
        stats_(options.read.stats) {
    const size_t ring = static_cast<size_t>(depth_) + 1;
    buffers_.resize(ring);
    for (auto& buf : buffers_) buf.resize(unit_);
    producer_ = std::thread([this] { ProducerLoop(); });
  }

  ~AsyncFileStream() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_producer_.notify_all();
    cv_consumer_.notify_all();
    producer_.join();
    ::close(fd_);
  }

  Result<IoView> Next() override {
    std::unique_lock<std::mutex> lock(mu_);
    // Release the buffer the consumer was holding.
    if (holding_) {
      holding_ = false;
      ++free_slots_;
      cv_producer_.notify_one();
    }
    // Prefetch-depth utilization: a unit already sitting in the ring
    // means the prefetcher kept ahead of the consumer; an empty ring
    // means the consumer stalls on the disk.
    RecordPrefetchUtilization(!filled_.empty() || produced_all_ ||
                              !error_.ok());
    cv_consumer_.wait(lock, [this] {
      return !filled_.empty() || produced_all_ || !error_.ok();
    });
    if (!error_.ok()) return error_;
    if (filled_.empty()) return IoView{nullptr, 0, file_size_};  // EOF
    Filled f = filled_.front();
    filled_.pop_front();
    holding_ = true;
    if (stats_ != nullptr) {
      stats_->bytes_read += f.size;
      stats_->requests += 1;
    }
    return IoView{buffers_[f.slot].data(), f.size, f.offset};
  }

  uint64_t file_size() const override { return file_size_; }

 private:
  struct Filled {
    size_t slot;
    size_t size;
    uint64_t offset;
  };

  static void RecordPrefetchUtilization(bool ready) {
    auto& reg = obs::MetricsRegistry::Default();
    static obs::Counter* hits = reg.GetCounter("rodb.io.prefetch_ready");
    static obs::Counter* stalls = reg.GetCounter("rodb.io.prefetch_stalls");
    (ready ? hits : stalls)->Increment();
  }

  void ProducerLoop() {
    uint64_t offset = range_start_;
    size_t slot = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_producer_.wait(lock, [this] { return free_slots_ > 0 || stop_; });
        if (stop_) return;
        --free_slots_;
      }
      if (offset >= range_end_) break;
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(unit_, range_end_ - offset));
      size_t got = 0;
      while (got < want) {
        const ssize_t n =
            ::pread(fd_, buffers_[slot].data() + got, want - got,
                    static_cast<off_t>(offset + got));
        if (n < 0) {
          std::lock_guard<std::mutex> lock(mu_);
          error_ = Status::IoError("pread failed");
          cv_consumer_.notify_all();
          return;
        }
        if (n == 0) break;  // truncated file
        got += static_cast<size_t>(n);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        filled_.push_back({slot, got, offset});
        cv_consumer_.notify_one();
        if (got < want) {
          error_ = Status::IoError("file shrank while reading");
          cv_consumer_.notify_all();
          return;
        }
      }
      offset += got;
      slot = (slot + 1) % buffers_.size();
    }
    std::lock_guard<std::mutex> lock(mu_);
    produced_all_ = true;
    cv_consumer_.notify_all();
  }

  const int fd_;
  const uint64_t file_size_;
  const uint64_t range_start_;
  const uint64_t range_end_;
  const size_t unit_;
  const int depth_;
  IoStats* const stats_;

  std::vector<std::vector<uint8_t>> buffers_;
  std::mutex mu_;
  std::condition_variable cv_producer_;
  std::condition_variable cv_consumer_;
  std::deque<Filled> filled_;
  size_t free_slots_ = 0;  // set in ctor body via initial credit below
  bool holding_ = false;
  bool produced_all_ = false;
  bool stop_ = false;
  Status error_;
  std::thread producer_;

 public:
  /// Gives the producer its initial credit (depth slots). Called once by
  /// the factory right after construction.
  void GrantInitialCredit() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      free_slots_ = static_cast<size_t>(depth_);
    }
    cv_producer_.notify_one();
  }
};

}  // namespace

Result<std::unique_ptr<SequentialStream>> FileBackend::OpenStream(
    const std::string& path, const IoOptions& options) {
  if (options.read.io_unit_bytes == 0) {
    return Status::InvalidArgument("io_unit_bytes must be positive");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat failed for " + path);
  }
  if (options.read.stats != nullptr) options.read.stats->files_opened += 1;
  auto stream = std::make_unique<AsyncFileStream>(
      fd, static_cast<uint64_t>(st.st_size), options);
  stream->GrantInitialCredit();
  return std::unique_ptr<SequentialStream>(std::move(stream));
}

}  // namespace rodb
