#ifndef RODB_IO_RETRY_BACKEND_H_
#define RODB_IO_RETRY_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/random.h"
#include "io/io.h"

namespace rodb {

/// How transient I/O failures are retried (docs/RESILIENCE.md).
///
/// The classifier is IsTransient(StatusCode) in common/status.h: IoError
/// and ResourceExhausted are retryable; corruption, cancellation and
/// deadline expiry are not. Backoff between attempts is exponential with
/// deterministically seeded jitter — the same (policy, stream) pair
/// backs off identically on every run, so retrying composes with the
/// FaultInjection decorator without breaking the fuzzer's
/// reproduce-from-seed contract.
struct RetryPolicy {
  /// Retries per failing call (so a call is issued at most
  /// 1 + max_retries times). 0 disables retrying entirely.
  int max_retries = 0;

  /// Backoff before retry k (0-based) is drawn uniformly from
  /// [base/2, base] where base = min(initial << k, max); a computed
  /// backoff of zero skips the sleep, which is how tests and fuzz runs
  /// retry at full speed (initial_backoff_micros = 0).
  uint64_t initial_backoff_micros = 0;
  uint64_t max_backoff_micros = 100 * 1000;

  /// Seed for the jitter PRNG; mixed with the stream identity so
  /// distinct streams draw independent (but reproducible) jitter.
  uint64_t seed = 1;

  bool enabled() const { return max_retries > 0; }

  /// Policy used by rodbctl / benches for --max-retries=N: N retries
  /// with 100us..100ms exponential backoff.
  static RetryPolicy BoundedBackoff(int max_retries) {
    RetryPolicy p;
    p.max_retries = max_retries;
    p.initial_backoff_micros = 100;
    return p;
  }
};

/// Pre-sleep callback: returns non-OK to abandon the retry loop (the
/// query was cancelled or ran out of deadline while backing off). The io
/// layer cannot see engine/query_context.h — layering runs the other way
/// — so the engine hands its liveness check down as a closure.
using AliveCheck = std::function<Status()>;

/// IoBackend decorator that retries transient failures of the inner
/// backend — both OpenStream and per-unit Next() — under a RetryPolicy.
///
/// Composition order matters and is: engine -> Caching -> Retrying ->
/// FaultInjecting/Tracing -> File/Mem. Placed directly above the fault
/// injector, every injected transient error is either retried (and the
/// re-issued read sees the same bytes, because injected errors do not
/// consume the inner read) or given up on, which is what makes the fuzz
/// campaign's counter reconciliation exact:
///   injected_errors == attempts() + giveups().
///
/// Thread-safe like the other decorators: concurrent OpenStream calls are
/// fine and each stream owns its jitter PRNG; the totals are atomics.
/// Emits rodb.resilience.retry.* metrics and, when the stream's
/// ReadOptions carry a QueryTrace, io.retry spans per re-issue.
class RetryingBackend : public IoBackend {
 public:
  /// `inner` is borrowed and must outlive this. `alive` may be empty
  /// (never gives up early); it is shared by all streams of this backend
  /// and must therefore be safe to call from any stream's thread.
  RetryingBackend(IoBackend* inner, RetryPolicy policy,
                  AliveCheck alive = nullptr)
      : inner_(inner), policy_(policy), alive_(std::move(alive)) {}

  Result<std::unique_ptr<SequentialStream>> OpenStream(
      const std::string& path, const IoOptions& options) override;

  const RetryPolicy& policy() const { return policy_; }

  /// Totals across all streams of this backend.
  /// Re-issues after a transient failure (one per failed attempt that
  /// was retried).
  uint64_t attempts() const { return attempts_.load(); }
  /// Calls that ultimately succeeded after at least one retry.
  uint64_t successes() const { return successes_.load(); }
  /// Calls that exhausted max_retries (the last error is surfaced).
  uint64_t giveups() const { return giveups_.load(); }
  /// Retry loops abandoned because the AliveCheck failed mid-backoff.
  uint64_t abandoned() const { return abandoned_.load(); }

 private:
  class RetryStream;
  friend class RetryStream;

  /// Runs `op` with retries; `kind` labels the trace/metric attribution.
  template <typename T>
  Result<T> RunWithRetries(const std::function<Result<T>()>& op,
                           Random* jitter, obs::QueryTrace* trace);

  IoBackend* inner_;
  RetryPolicy policy_;
  AliveCheck alive_;
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> successes_{0};
  std::atomic<uint64_t> giveups_{0};
  std::atomic<uint64_t> abandoned_{0};
};

}  // namespace rodb

#endif  // RODB_IO_RETRY_BACKEND_H_
