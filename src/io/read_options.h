#ifndef RODB_IO_READ_OPTIONS_H_
#define RODB_IO_READ_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace rodb {

class BlockCache;
struct IoStats;

namespace obs {
class QueryTrace;
}  // namespace obs

/// The knobs every read path shares, owned in exactly one place.
///
/// Before this struct existed the same fields were declared twice --
/// `ScanSpec` carried {io_unit_bytes, prefetch_depth, verify_checksums}
/// for the scanners and `IoOptions` carried {io_unit_bytes,
/// prefetch_depth, stats} for the backends -- and a cache handle had
/// nowhere to live at all. Now `ScanSpec::read` and `IoOptions::read`
/// are the same type, so a spec's I/O configuration flows through the
/// engine to the backend without copying field by field.
struct ReadOptions {
  /// I/O request granularity (Section 2.2.3: fixed-size I/O units).
  size_t io_unit_bytes = 128 * 1024;
  /// I/O units kept in flight ahead of the consumer.
  int prefetch_depth = 48;
  /// Verify every page's CRC-32 before decoding it. Off on the hot path
  /// (as in any engine); turned on by verification tools and by the
  /// fault-injecting fuzz runs, where silent payload corruption must
  /// surface as Status::Corruption instead of decoded garbage.
  bool verify_checksums = false;
  /// Optional block cache (not owned). When set on a ScanSpec, the
  /// scanner routes all of its streams through a CachingBackend over
  /// this cache; repeated scans of the same files are then served from
  /// memory (IoStats::bytes_from_cache) instead of the backend.
  BlockCache* cache = nullptr;
  /// Optional I/O statistics sink (not owned). Honored by backends when
  /// streams are opened directly; scanners ignore a ScanSpec-level sink
  /// and substitute their own ExecStats record, preserving the IoStats
  /// single-writer contract under morsel parallelism (io/io.h).
  IoStats* stats = nullptr;
  /// Optional per-query trace (not owned). Decorators that spend time
  /// below the engine — today the RetryingBackend's backoff/re-issue
  /// loop — record their spans here (TracePhase::kIoRetry). Scanners
  /// populate it from ExecStats::trace() alongside `stats`.
  obs::QueryTrace* trace = nullptr;
};

}  // namespace rodb

#endif  // RODB_IO_READ_OPTIONS_H_
