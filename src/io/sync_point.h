#ifndef RODB_IO_SYNC_POINT_H_
#define RODB_IO_SYNC_POINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>

#include "common/status.h"

namespace rodb {

/// Process-wide hook fired immediately before every durability syscall
/// (create / append / fsync / rename / fsync-dir / unlink) issued by a
/// DurableEnv. The crash-torture harness installs a hook that counts
/// hits and `kill(getpid(), SIGKILL)`s at the Nth one, turning each
/// syscall boundary into an enumerable kill-point schedule; fault tests
/// install hooks that return errors to model failed fsync/rename.
///
/// When no hook is installed the cost is one relaxed atomic load.
class SyncPoint {
 public:
  /// `point` names the operation ("durable.sync", "durable.rename",
  /// ...) and `path` the file it applies to. A non-OK return aborts the
  /// operation with that status before the syscall runs; a hook that
  /// SIGKILLs never returns.
  using Hook = std::function<Status(std::string_view point,
                                    std::string_view path)>;

  /// Replaces the process-wide hook (nullptr uninstalls). Not
  /// thread-safe against concurrent Hit() — install before the workload
  /// starts, as the torture harness does in a fresh child process.
  static void Install(Hook hook);

  /// Total hits since process start (counted only while a hook is
  /// installed); the harness's first pass uses this to learn how many
  /// kill points one workload exposes.
  static uint64_t Hits();

  /// Fires the hook, if any. Called by DurableEnv implementations.
  static Status Hit(std::string_view point, std::string_view path);

 private:
  static std::atomic<bool> armed_;
  static std::atomic<uint64_t> hits_;
  static Hook hook_;
};

}  // namespace rodb

#endif  // RODB_IO_SYNC_POINT_H_
