#ifndef RODB_IO_IO_H_
#define RODB_IO_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "io/read_options.h"

namespace rodb {

/// Counters a stream updates while reading; the engine folds these into
/// its ExecCounters to model CPU system time.
///
/// Single-writer contract: streams update their IoStats sink with plain
/// unsynchronized increments, so at any moment a given IoStats object may
/// be written by AT MOST ONE stream/worker thread. Partitioned scans give
/// every worker its own ExecStats (and therefore its own IoStats) and
/// combine the per-worker records with MergeFrom() after the workers have
/// quiesced; sharing one IoStats* across concurrently running streams is
/// a data race.
struct IoStats {
  uint64_t bytes_read = 0;  ///< bytes the backend actually served
  uint64_t requests = 0;    ///< I/O unit requests issued to the backend
  uint64_t files_opened = 0;
  /// Bytes served from a BlockCache instead of the backend. A fully warm
  /// scan has bytes_read == 0 and bytes_from_cache == the scan's bytes;
  /// ModelQueryTiming then sees (almost) no disk traffic and the run is
  /// CPU-bound (see CacheAdjustedStreams in engine/executor.h).
  uint64_t bytes_from_cache = 0;
  uint64_t cache_hits = 0;    ///< I/O units served from cache
  uint64_t cache_misses = 0;  ///< I/O units assembled from the backend

  /// Adds `other`'s counters into this record. Safe across threads only
  /// in the join sense: the worker that produced `other` must have
  /// finished (its stream destroyed or drained) before the merge.
  void MergeFrom(const IoStats& other) {
    bytes_read += other.bytes_read;
    requests += other.requests;
    files_opened += other.files_opened;
    bytes_from_cache += other.bytes_from_cache;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }
};

/// How a scan reads a file (Section 2.2.3): fixed-size I/O units, a
/// prefetch depth saying how many units are kept in flight ahead of the
/// consumer, and DMA-like delivery (buffers are handed to the query with
/// no extra copies and no OS file cache assumptions).
///
/// The shared knobs (unit size, prefetch depth, stats sink, cache) live
/// in `read` -- the same ReadOptions a ScanSpec carries -- and this
/// struct adds only what is inherently per-stream: the byte range and
/// the stable file identity.
struct IoOptions {
  ReadOptions read;
  /// Byte range of the file to read ([start_offset, start_offset+length)),
  /// for partitioned scans; length saturates at end of file.
  uint64_t start_offset = 0;
  uint64_t length = UINT64_MAX;
  /// Stable identity of the file for cache keying (storage records one
  /// per table file in TableMeta). 0 = unknown; a CachingBackend then
  /// derives it from the path (common/file_id.h).
  uint64_t file_id = 0;
};

/// A filled I/O unit as seen by the consumer. The view stays valid until
/// the next Next() call on the same stream.
struct IoView {
  const uint8_t* data = nullptr;
  size_t size = 0;          ///< 0 at end of file
  uint64_t file_offset = 0;
};

/// Sequential, prefetched read stream over one file. Single consumer.
class SequentialStream {
 public:
  virtual ~SequentialStream() = default;
  /// Returns the next I/O unit (size == 0 at EOF).
  virtual Result<IoView> Next() = 0;
  /// Total size of the underlying file in bytes.
  virtual uint64_t file_size() const = 0;
};

/// Factory for streams. Implementations: FileBackend (real files through
/// the threaded async reader) and MemBackend (in-memory files, for tests
/// and model-driven sweeps); decorators: CachingBackend (block cache),
/// FaultInjectingBackend and TracingBackend (io/fault_injection.h).
class IoBackend {
 public:
  virtual ~IoBackend() = default;
  virtual Result<std::unique_ptr<SequentialStream>> OpenStream(
      const std::string& path, const IoOptions& options) = 0;
};

}  // namespace rodb

#endif  // RODB_IO_IO_H_
