#include "io/block_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/file_id.h"
#include "common/macros.h"
#include "obs/metrics.h"

namespace rodb {

namespace {

size_t RoundUpPow2(int n) {
  size_t p = 1;
  while (p < static_cast<size_t>(n < 1 ? 1 : n)) p <<= 1;
  return p;
}

/// Process-wide cache metrics, aggregated across every BlockCache
/// instance (per-instance numbers stay available via BlockCache::stats).
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* inserted_bytes;
  static const CacheMetrics& Get() {
    static const CacheMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Default();
      return CacheMetrics{reg.GetCounter("rodb.cache.hits"),
                          reg.GetCounter("rodb.cache.misses"),
                          reg.GetCounter("rodb.cache.evictions"),
                          reg.GetCounter("rodb.cache.inserted_bytes")};
    }();
    return m;
  }
};

}  // namespace

BlockCache::BlockCache(uint64_t capacity_bytes, int num_shards)
    : capacity_bytes_(capacity_bytes) {
  const size_t shards = RoundUpPow2(num_shards);
  shard_mask_ = shards - 1;
  shard_capacity_ = capacity_bytes_ / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BlockCache::Shard& BlockCache::ShardFor(uint64_t file_id, uint64_t offset) {
  // The bucket hash uses the low bits; take the high bits for the shard
  // so the two partitions are independent.
  const size_t h = KeyHash{}(Key{file_id, offset});
  return *shards_[(h >> 48) & shard_mask_];
}

BlockCache::BlockHandle BlockCache::Lookup(uint64_t file_id, uint64_t offset,
                                           size_t min_size) {
  Shard& shard = ShardFor(file_id, offset);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(Key{file_id, offset});
    if (it != shard.index.end() && it->second->block->size() >= min_size) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::Get().hits->Increment();
      return it->second->block;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().misses->Increment();
  return nullptr;
}

void BlockCache::Insert(uint64_t file_id, uint64_t offset, BlockHandle block) {
  if (block == nullptr) return;
  const uint64_t size = block->size();
  if (size > shard_capacity_) return;  // would evict everything and not fit
  Shard& shard = ShardFor(file_id, offset);
  const Key key{file_id, offset};
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->block->size();
    bytes_in_use_.fetch_sub(it->second->block->size(),
                            std::memory_order_relaxed);
    it->second->block = std::move(block);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(block)});
    shard.index[key] = shard.lru.begin();
    entries_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.bytes += size;
  bytes_in_use_.fetch_add(size, std::memory_order_relaxed);
  inserted_bytes_.fetch_add(size, std::memory_order_relaxed);
  CacheMetrics::Get().inserted_bytes->Add(size);
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    const uint64_t victim_size = victim.block->size();
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    shard.bytes -= victim_size;
    bytes_in_use_.fetch_sub(victim_size, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().evictions->Increment();
  }
}

void BlockCache::RecordFileSize(uint64_t file_id, uint64_t size) {
  std::lock_guard<std::mutex> lock(file_size_mu_);
  file_sizes_[file_id] = size;
}

std::optional<uint64_t> BlockCache::KnownFileSize(uint64_t file_id) const {
  std::lock_guard<std::mutex> lock(file_size_mu_);
  auto it = file_sizes_.find(file_id);
  if (it == file_sizes_.end()) return std::nullopt;
  return it->second;
}

void BlockCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
  {
    std::lock_guard<std::mutex> lock(file_size_mu_);
    file_sizes_.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  inserted_bytes_.store(0, std::memory_order_relaxed);
  bytes_in_use_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
}

BlockCache::Stats BlockCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inserted_bytes = inserted_bytes_.load(std::memory_order_relaxed);
  s.bytes_in_use = bytes_in_use_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.capacity_bytes = capacity_bytes_;
  return s;
}

uint64_t BlockCache::ExternalPins() const {
  uint64_t pinned = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& entry : shard->lru) {
      // use_count == 1 is the cache's own reference; anything above it
      // is a handle still held by a reader. Racy in principle (readers
      // may pin/unpin concurrently) but exact once they have quiesced,
      // which is when the leak audit runs.
      if (entry.block.use_count() > 1) ++pinned;
    }
  }
  return pinned;
}

/// The stream side of the decorator. Serves one logical I/O unit per
/// Next(): a cache hit pins the cached block and hands out a view into
/// it; a miss (re)opens the inner stream at the current offset, copies
/// exactly one unit's worth of inner views into a private buffer,
/// caches the fully assembled unit, and serves it. Short assemblies
/// (truncation below us) are served but never cached.
class CachingBackend::CachingStream final : public SequentialStream {
 public:
  CachingStream(IoBackend* inner_backend, BlockCache* cache,
                std::string path, const IoOptions& options,
                uint64_t file_size,
                std::unique_ptr<SequentialStream> inner_stream)
      : inner_backend_(inner_backend), cache_(cache), path_(std::move(path)),
        options_(options), file_size_(file_size),
        pos_(std::min(options.start_offset, file_size)),
        end_(options.length > file_size - pos_ ? file_size
                                               : pos_ + options.length),
        unit_(options.read.io_unit_bytes), stats_(options.read.stats),
        inner_(std::move(inner_stream)), inner_next_offset_(pos_),
        counted_open_(inner_ != nullptr) {}

  Result<IoView> Next() override {
    if (pos_ >= end_) return IoView{nullptr, 0, end_};
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(unit_, end_ - pos_));
    handle_ = cache_->Lookup(options_.file_id, pos_, want);
    if (handle_ != nullptr) {
      if (stats_ != nullptr) {
        stats_->bytes_from_cache += want;
        stats_->cache_hits += 1;
      }
      IoView view{handle_->data(), want, pos_};
      pos_ += want;
      return view;
    }
    if (stats_ != nullptr) stats_->cache_misses += 1;
    // Miss: assemble the unit from the inner stream, which counts its
    // own bytes_read/requests into the same stats sink.
    if (inner_ == nullptr || inner_next_offset_ != pos_) {
      RODB_RETURN_IF_ERROR(ReopenInnerAt(pos_));
    }
    std::vector<uint8_t> assembled;
    assembled.reserve(want);
    while (assembled.size() < want) {
      auto view_or = inner_->Next();
      if (!view_or.ok()) {
        inner_.reset();  // position unknown after an error
        return view_or.status();
      }
      const IoView& v = view_or.value();
      if (v.size == 0) break;  // EOF below us (truncated file)
      assembled.insert(assembled.end(), v.data, v.data + v.size);
    }
    inner_next_offset_ = pos_ + assembled.size();
    if (assembled.empty()) return IoView{nullptr, 0, pos_};
    auto block = std::make_shared<const std::vector<uint8_t>>(
        std::move(assembled));
    if (block->size() == want) {
      cache_->Insert(options_.file_id, pos_, block);
    }
    handle_ = block;
    IoView view{handle_->data(), handle_->size(), pos_};
    pos_ += view.size;
    return view;
  }

  uint64_t file_size() const override { return file_size_; }

 private:
  Status ReopenInnerAt(uint64_t offset) {
    IoOptions inner_options = options_;
    inner_options.start_offset = offset;
    inner_options.length = end_ - offset;
    inner_options.read.cache = nullptr;  // we are the caching layer
    RODB_ASSIGN_OR_RETURN(inner_,
                          inner_backend_->OpenStream(path_, inner_options));
    // The inner backend counts files_opened on every OpenStream, but a
    // reopen (hits advanced pos_ past the inner cursor on a partially
    // warm cache) is still the same logical file: compensate so one
    // CachingStream contributes at most one open.
    if (counted_open_) {
      if (stats_ != nullptr && stats_->files_opened > 0) {
        stats_->files_opened -= 1;
      }
    } else {
      counted_open_ = true;
    }
    inner_next_offset_ = offset;
    return Status::OK();
  }

  IoBackend* const inner_backend_;
  BlockCache* const cache_;
  const std::string path_;
  const IoOptions options_;
  const uint64_t file_size_;
  uint64_t pos_;
  const uint64_t end_;
  const size_t unit_;
  IoStats* const stats_;

  std::unique_ptr<SequentialStream> inner_;
  uint64_t inner_next_offset_;
  /// Whether this stream already contributed one files_opened to the
  /// stats sink (reopens of the same logical file must not count again).
  bool counted_open_;
  BlockCache::BlockHandle handle_;  ///< pins the block behind the view
};

Result<std::unique_ptr<SequentialStream>> CachingBackend::OpenStream(
    const std::string& path, const IoOptions& options) {
  if (options.read.io_unit_bytes == 0) {
    return Status::InvalidArgument("io_unit_bytes must be positive");
  }
  BlockCache* cache =
      cache_ != nullptr ? cache_ : options.read.cache;
  if (cache == nullptr) return inner_->OpenStream(path, options);

  IoOptions resolved = options;
  if (resolved.file_id == 0) resolved.file_id = FileIdForPath(path);

  // Learn the file size: from the cache's registry when warm (zero
  // backend opens), from an eager inner open when cold. The eager open
  // is not wasted -- the first Next() is overwhelmingly likely to miss
  // on a cold cache and would open it anyway.
  std::unique_ptr<SequentialStream> inner;
  uint64_t file_size = 0;
  if (auto known = cache->KnownFileSize(resolved.file_id)) {
    file_size = *known;
  } else {
    IoOptions inner_options = resolved;
    inner_options.read.cache = nullptr;
    RODB_ASSIGN_OR_RETURN(inner, inner_->OpenStream(path, inner_options));
    file_size = inner->file_size();
    cache->RecordFileSize(resolved.file_id, file_size);
  }
  return std::unique_ptr<SequentialStream>(new CachingStream(
      inner_, cache, path, resolved, file_size, std::move(inner)));
}

}  // namespace rodb
