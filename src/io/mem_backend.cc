#include "io/mem_backend.h"

#include <algorithm>

namespace rodb {

namespace {

class MemStream final : public SequentialStream {
 public:
  MemStream(std::shared_ptr<std::vector<uint8_t>> file,
            const IoOptions& options)
      : file_(std::move(file)), unit_(options.read.io_unit_bytes),
        stats_(options.read.stats),
        offset_(std::min<size_t>(options.start_offset, file_->size())),
        end_(options.length > file_->size() - offset_
                 ? file_->size()
                 : offset_ + static_cast<size_t>(options.length)) {}

  Result<IoView> Next() override {
    if (offset_ >= end_) {
      return IoView{nullptr, 0, static_cast<uint64_t>(end_)};
    }
    const size_t size = std::min(unit_, end_ - offset_);
    IoView view{file_->data() + offset_, size, static_cast<uint64_t>(offset_)};
    offset_ += size;
    if (stats_ != nullptr) {
      stats_->bytes_read += size;
      stats_->requests += 1;
    }
    return view;
  }

  uint64_t file_size() const override { return file_->size(); }

 private:
  std::shared_ptr<std::vector<uint8_t>> file_;
  size_t unit_;
  IoStats* stats_;
  size_t offset_;
  size_t end_;
};

}  // namespace

void MemBackend::PutFile(const std::string& path,
                         std::vector<uint8_t> contents) {
  files_[path] = std::make_shared<std::vector<uint8_t>>(std::move(contents));
}

std::vector<uint8_t>* MemBackend::MutableFile(const std::string& path) {
  auto& slot = files_[path];
  if (slot == nullptr) slot = std::make_shared<std::vector<uint8_t>>();
  return slot.get();
}

uint64_t MemBackend::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second->size();
}

Result<std::unique_ptr<SequentialStream>> MemBackend::OpenStream(
    const std::string& path, const IoOptions& options) {
  if (options.read.io_unit_bytes == 0) {
    return Status::InvalidArgument("io_unit_bytes must be positive");
  }
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such mem file: " + path);
  if (options.read.stats != nullptr) options.read.stats->files_opened += 1;
  return std::unique_ptr<SequentialStream>(
      new MemStream(it->second, options));
}

}  // namespace rodb
