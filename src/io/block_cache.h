#ifndef RODB_IO_BLOCK_CACHE_H_
#define RODB_IO_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/io.h"

namespace rodb {

/// Sharded, capacity-bounded LRU cache of I/O units, keyed by
/// (file_id, file_offset). The storage-manager-level cache the ROADMAP's
/// repeated-query regime calls for: the paper's I/O layer streams every
/// scan cold from the disk array (Section 2.2.3), but a server answering
/// the same queries over the same hot tables re-reads identical blocks,
/// and those re-reads should be memory traffic, not disk traffic.
///
/// Blocks are immutable byte vectors held by shared_ptr, so a lookup
/// pins the block for as long as the caller holds the handle: eviction
/// only drops the cache's own reference and can never free memory out
/// from under an in-flight reader. Keys are exact offsets -- the cache
/// does not try to stitch overlapping ranges -- but a lookup may be
/// served by a cached block *larger* than the requested size (the caller
/// reads a prefix), which is what happens when scans with different
/// range ends share a table.
///
/// Thread-safe: the key space is sharded by hash, each shard has its own
/// mutex and LRU list, and counters are atomics, so concurrent morsel
/// workers hit different shards most of the time instead of one global
/// lock.
class BlockCache {
 public:
  using BlockHandle = std::shared_ptr<const std::vector<uint8_t>>;

  /// Counter snapshot (all totals since construction or Clear()).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserted_bytes = 0;
    uint64_t bytes_in_use = 0;
    uint64_t entries = 0;
    uint64_t capacity_bytes = 0;

    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// `num_shards` is rounded up to a power of two; capacity is split
  /// evenly across shards, so one shard caps at capacity/shards.
  explicit BlockCache(uint64_t capacity_bytes, int num_shards = 16);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the block at (file_id, offset) if one is cached with at
  /// least `min_size` bytes, moving it to the front of its shard's LRU
  /// list; nullptr otherwise. Counts exactly one hit or miss.
  BlockHandle Lookup(uint64_t file_id, uint64_t offset, size_t min_size);

  /// Caches `block` under (file_id, offset), replacing any existing
  /// entry, then evicts least-recently-used blocks until the shard fits
  /// its capacity share. A block larger than a whole shard is refused
  /// (it would evict everything and still not fit).
  void Insert(uint64_t file_id, uint64_t offset, BlockHandle block);

  /// File-size registry, so a fully warm scan never has to open the
  /// backing file at all just to learn its size. Populated by
  /// CachingBackend on first (cold) open.
  void RecordFileSize(uint64_t file_id, uint64_t size);
  std::optional<uint64_t> KnownFileSize(uint64_t file_id) const;

  /// Drops every cached block and the file-size registry, returning the
  /// cache to cold. Counters reset too. In-flight handles stay valid.
  void Clear();

  Stats stats() const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }

  /// Number of cached blocks currently pinned outside the cache, i.e.
  /// entries whose handle use_count exceeds the cache's own reference.
  /// Zero once every reader has released its handles — the leak-audit
  /// invariant the resilience tests assert after forced mid-scan
  /// failures (a leaked pin means an error path kept a stream or view
  /// alive past Close()). O(entries); diagnostics only.
  uint64_t ExternalPins() const;

 private:
  struct Key {
    uint64_t file_id;
    uint64_t offset;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && offset == o.offset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix64-style mix of the two words; shard selection uses the
      // high bits, bucket selection the low, so they stay independent.
      uint64_t h = k.file_id ^ (k.offset * 0x9e3779b97f4a7c15ULL);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      h *= 0x94d049bb133111ebULL;
      h ^= h >> 31;
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    Key key;
    BlockHandle block;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    uint64_t bytes = 0;
  };

  Shard& ShardFor(uint64_t file_id, uint64_t offset);

  const uint64_t capacity_bytes_;
  uint64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> inserted_bytes_{0};
  std::atomic<uint64_t> bytes_in_use_{0};
  std::atomic<uint64_t> entries_{0};

  mutable std::mutex file_size_mu_;
  std::unordered_map<uint64_t, uint64_t> file_sizes_;
};

/// IoBackend decorator that serves SequentialStream::Next() from a
/// BlockCache on hit and populates it on miss, composing with any inner
/// backend (FileBackend, MemBackend, FaultInjectingBackend,
/// TracingBackend). Typical stack for a fault-tolerance test:
///
///   FileBackend -> FaultInjectingBackend -> CachingBackend -> scanner
///
/// Correctness rules the implementation keeps:
///  - Only fully assembled I/O units are cached. A unit cut short by
///    truncation below the cache is served to the caller (the scanner's
///    cardinality check turns it into Corruption) but never cached, so
///    a later healthy run cannot be served the stale short block.
///  - Errors from the inner stream propagate as Status and cache
///    nothing.
///  - The inner stream is opened lazily and only for misses: a fully
///    warm scan of a known file performs zero backend opens and zero
///    backend reads.
///
/// Stats: cache-served units count IoStats::{bytes_from_cache,
/// cache_hits}; backend-served units are counted by the inner stream
/// itself (bytes_read/requests), so the two columns split total traffic
/// exactly. The cache handle comes from IoOptions::read.cache; when the
/// decorator was constructed with its own cache pointer that one wins.
class CachingBackend : public IoBackend {
 public:
  /// Both pointers are borrowed and must outlive this backend. `cache`
  /// may be nullptr, in which case each stream uses the cache from its
  /// IoOptions::read.cache (and a stream with neither is pass-through).
  CachingBackend(IoBackend* inner, BlockCache* cache)
      : inner_(inner), cache_(cache) {}

  Result<std::unique_ptr<SequentialStream>> OpenStream(
      const std::string& path, const IoOptions& options) override;

 private:
  class CachingStream;

  IoBackend* inner_;
  BlockCache* cache_;
};

}  // namespace rodb

#endif  // RODB_IO_BLOCK_CACHE_H_
