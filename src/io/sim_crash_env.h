#ifndef RODB_IO_SIM_CRASH_ENV_H_
#define RODB_IO_SIM_CRASH_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "io/durable_file.h"
#include "io/fault_injection.h"

namespace rodb {

/// DurableEnv that models power loss with persisted-vs-volatile shadow
/// state, on top of the real filesystem so the read path works
/// unchanged.
///
/// Every tracked file carries two worlds: the *live* content (what the
/// process sees, mirrored onto the real filesystem) and the *persisted*
/// state (what survives a crash). The model is deliberately the
/// conservative POSIX contract:
///
///   - appended bytes become persistent only up to the last successful
///     Sync() on that file (lost-after-crash unsynced writes);
///   - a created/renamed/removed *name* becomes persistent only after
///     SyncDir() on its parent directory — until then a crash restores
///     the directory entry's prior state (rename rolls back, a removed
///     file resurrects, a new file vanishes);
///   - with `torn_tail_on_crash`, a crash leaves a corrupted partial
///     sector of the unsynced tail instead of dropping it cleanly.
///
/// Crash() rewrites the real filesystem to the persisted state and
/// kills the env: every later op fails with IoError, so a still-live
/// store object can be torn down without mutating the "disk" (its
/// cleanup removals are exactly the writes a dead process cannot
/// issue). Recovery then reopens the directory with a fresh env.
///
/// Faults (short writes, failed fsync/rename, crash-at-op-N schedules)
/// come from a DurabilityFaultSpec and are deterministic in
/// (seed, op index). Files already on disk when first touched are
/// assumed persisted as-is.
class SimulatedCrashEnv : public DurableEnv {
 public:
  explicit SimulatedCrashEnv(DurabilityFaultSpec spec = {});
  ~SimulatedCrashEnv() override = default;

  Result<std::unique_ptr<DurableFile>> Create(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status Remove(const std::string& path) override;

  /// Reverts the real filesystem to the persisted shadow state and
  /// kills the env. Idempotent.
  void Crash();
  bool crashed() const;

  /// Durability ops attempted (the crash_at_op / schedule axis).
  uint64_t ops() const;
  /// Successful file syncs / dir syncs (reconciles rodb.durability.*).
  uint64_t file_syncs() const;
  uint64_t dir_syncs() const;
  uint64_t renames() const;
  uint64_t injected_short_writes() const;
  uint64_t injected_sync_failures() const;
  uint64_t injected_rename_failures() const;
  uint64_t torn_tails() const;

 private:
  class SimFile;
  friend class SimFile;

  /// One directory entry's two-world state. Invariant: name_durable
  /// implies exists_live (removing or replacing an entry clears it).
  struct Shadow {
    bool exists_live = false;
    std::string live;          ///< current content (mirrors the real fs)
    size_t synced = 0;         ///< prefix of `live` made durable by Sync
    bool name_durable = false; ///< entry survives a crash
    /// Persisted content while !name_durable (prior file, pre-rename
    /// state, removed-but-resurrectable content); nullopt = absent.
    std::optional<std::string> prior;
  };

  /// Called with mu_ held.
  Shadow& TrackLocked(const std::string& path);
  static std::optional<std::string> CrashState(const Shadow& s);
  /// Advances the op counter, applies crash_at_op, draws `probability`.
  /// Returns {should_fail_op, random_draw}; sets crashed on schedule.
  Status BeginOpLocked(const char* what, const std::string& path);
  uint64_t DrawLocked();
  void CrashLocked();

  Status AppendLocked(const std::string& path, const void* data, size_t size);
  Status SyncFileLocked(const std::string& path);

  mutable std::mutex mu_;
  DurabilityFaultSpec spec_;
  std::map<std::string, Shadow> files_;
  bool crashed_ = false;
  uint64_t ops_ = 0;
  uint64_t draws_ = 0;
  uint64_t file_syncs_ = 0;
  uint64_t dir_syncs_ = 0;
  uint64_t renames_ = 0;
  uint64_t short_writes_ = 0;
  uint64_t sync_failures_ = 0;
  uint64_t rename_failures_ = 0;
  uint64_t torn_tails_ = 0;
};

}  // namespace rodb

#endif  // RODB_IO_SIM_CRASH_ENV_H_
