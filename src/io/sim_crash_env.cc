#include "io/sim_crash_env.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/file_util.h"
#include "common/macros.h"

namespace rodb {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string ParentOf(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

Status WriteReal(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("sim env: cannot open " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::IoError("sim env: cannot write " + path);
  return Status::OK();
}

}  // namespace

/// Handle into the env's shadow map; all state lives in the env so a
/// handle outliving a Crash() fails cleanly instead of resurrecting.
class SimulatedCrashEnv::SimFile : public DurableFile {
 public:
  SimFile(SimulatedCrashEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(const void* data, size_t size) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RODB_RETURN_IF_ERROR(env_->BeginOpLocked("append", path_));
    return env_->AppendLocked(path_, data, size);
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RODB_RETURN_IF_ERROR(env_->BeginOpLocked("sync", path_));
    return env_->SyncFileLocked(path_);
  }

  Status Close() override { return Status::OK(); }

 private:
  SimulatedCrashEnv* env_;
  std::string path_;
};

SimulatedCrashEnv::SimulatedCrashEnv(DurabilityFaultSpec spec)
    : spec_(spec) {}

SimulatedCrashEnv::Shadow& SimulatedCrashEnv::TrackLocked(
    const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) return it->second;
  Shadow s;
  if (FileExists(path)) {
    // First touch of a pre-existing file: assume it was persisted as-is.
    auto content = ReadFileToString(path);
    s.exists_live = true;
    s.live = content.ok() ? *std::move(content) : std::string();
    s.synced = s.live.size();
    s.name_durable = true;
  }
  return files_.emplace(path, std::move(s)).first->second;
}

std::optional<std::string> SimulatedCrashEnv::CrashState(const Shadow& s) {
  if (s.name_durable) return s.live.substr(0, s.synced);
  return s.prior;
}

uint64_t SimulatedCrashEnv::DrawLocked() {
  return SplitMix64(spec_.seed ^ (0xd1b54a32d192ed03ULL * ++draws_));
}

Status SimulatedCrashEnv::BeginOpLocked(const char* what,
                                        const std::string& path) {
  if (crashed_) {
    return Status::IoError(std::string("sim crash env is dead (") + what +
                           " " + path + ")");
  }
  ++ops_;
  if (spec_.crash_at_op != 0 && ops_ >= spec_.crash_at_op) {
    CrashLocked();
    return Status::IoError("simulated crash at op " + std::to_string(ops_));
  }
  return Status::OK();
}

Result<std::unique_ptr<DurableFile>> SimulatedCrashEnv::Create(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  RODB_RETURN_IF_ERROR(BeginOpLocked("create", path));
  Shadow& s = TrackLocked(path);
  // O_TRUNC over an existing entry: until the directory is synced
  // again, a crash restores whatever was persisted before.
  s.prior = CrashState(s);
  s.exists_live = true;
  s.live.clear();
  s.synced = 0;
  s.name_durable = false;
  RODB_RETURN_IF_ERROR(WriteReal(path, s.live));
  return {std::make_unique<SimFile>(this, path)};
}

Status SimulatedCrashEnv::AppendLocked(const std::string& path,
                                       const void* data, size_t size) {
  Shadow& s = TrackLocked(path);
  if (!s.exists_live) return Status::IoError("sim append on removed " + path);
  size_t persisted = size;
  bool short_write = false;
  if (spec_.short_write_probability > 0 && size > 0) {
    uint64_t r = DrawLocked();
    if (static_cast<double>(r % 1000000) / 1e6 <
        spec_.short_write_probability) {
      short_write = true;
      persisted = DrawLocked() % size;  // strict prefix
      ++short_writes_;
    }
  }
  s.live.append(static_cast<const char*>(data), persisted);
  RODB_RETURN_IF_ERROR(WriteReal(path, s.live));
  if (short_write) {
    return Status::IoError("injected short write on " + path);
  }
  return Status::OK();
}

Status SimulatedCrashEnv::SyncFileLocked(const std::string& path) {
  Shadow& s = TrackLocked(path);
  if (!s.exists_live) return Status::IoError("sim sync on removed " + path);
  if (spec_.sync_failure_probability > 0) {
    uint64_t r = DrawLocked();
    if (static_cast<double>(r % 1000000) / 1e6 <
        spec_.sync_failure_probability) {
      ++sync_failures_;
      return Status::IoError("injected fsync failure on " + path);
    }
  }
  s.synced = s.live.size();
  ++file_syncs_;
  DurabilityMetrics::Get().syncs->Increment();
  return Status::OK();
}

Status SimulatedCrashEnv::Rename(const std::string& from,
                                 const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  RODB_RETURN_IF_ERROR(BeginOpLocked("rename", from));
  Shadow& src = TrackLocked(from);
  if (!src.exists_live) return Status::IoError("sim rename missing " + from);
  if (spec_.rename_failure_probability > 0) {
    uint64_t r = DrawLocked();
    if (static_cast<double>(r % 1000000) / 1e6 <
        spec_.rename_failure_probability) {
      ++rename_failures_;
      return Status::IoError("injected rename failure " + from + " -> " + to);
    }
  }
  Shadow& dst = TrackLocked(to);
  dst.prior = CrashState(dst);
  dst.exists_live = true;
  dst.live = src.live;
  dst.synced = src.synced;  // data syncs travel with the inode
  dst.name_durable = false;
  src.prior = CrashState(src);
  src.exists_live = false;
  src.live.clear();
  src.synced = 0;
  src.name_durable = false;
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) return Status::IoError("sim rename: " + ec.message());
  ++renames_;
  DurabilityMetrics::Get().renames->Increment();
  return Status::OK();
}

Status SimulatedCrashEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  RODB_RETURN_IF_ERROR(BeginOpLocked("sync_dir", dir));
  if (spec_.sync_failure_probability > 0) {
    uint64_t r = DrawLocked();
    if (static_cast<double>(r % 1000000) / 1e6 <
        spec_.sync_failure_probability) {
      ++sync_failures_;
      return Status::IoError("injected dir fsync failure on " + dir);
    }
  }
  for (auto& [path, s] : files_) {
    if (ParentOf(path) != dir) continue;
    if (s.exists_live) {
      s.name_durable = true;
    }
    // Entry state (present or absent) is durable now; drop the
    // pre-entry fallback.
    s.prior.reset();
  }
  ++dir_syncs_;
  DurabilityMetrics::Get().dir_syncs->Increment();
  return Status::OK();
}

Status SimulatedCrashEnv::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  RODB_RETURN_IF_ERROR(BeginOpLocked("remove", path));
  Shadow& s = TrackLocked(path);
  s.prior = CrashState(s);
  s.exists_live = false;
  s.live.clear();
  s.synced = 0;
  s.name_durable = false;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return Status::IoError("sim remove: " + ec.message());
  return Status::OK();
}

void SimulatedCrashEnv::CrashLocked() {
  if (crashed_) return;
  crashed_ = true;
  for (auto& [path, s] : files_) {
    std::optional<std::string> state = CrashState(s);
    if (state.has_value() && spec_.torn_tail_on_crash && s.name_durable &&
        s.live.size() > s.synced) {
      // A partial sector of the unsynced tail made it to the platter,
      // with garbage in it.
      const std::string tail = s.live.substr(s.synced);
      size_t keep = 1 + DrawLocked() % std::min<size_t>(512, tail.size());
      std::string torn = tail.substr(0, keep);
      torn[DrawLocked() % torn.size()] =
          static_cast<char>(torn[DrawLocked() % torn.size()] ^ 0xA5);
      state->append(torn);
      ++torn_tails_;
    }
    std::error_code ec;
    if (state.has_value()) {
      WriteReal(path, *state);
    } else {
      std::filesystem::remove(path, ec);
    }
  }
}

void SimulatedCrashEnv::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  CrashLocked();
}

bool SimulatedCrashEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t SimulatedCrashEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}
uint64_t SimulatedCrashEnv::file_syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_syncs_;
}
uint64_t SimulatedCrashEnv::dir_syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_syncs_;
}
uint64_t SimulatedCrashEnv::renames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return renames_;
}
uint64_t SimulatedCrashEnv::injected_short_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return short_writes_;
}
uint64_t SimulatedCrashEnv::injected_sync_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_failures_;
}
uint64_t SimulatedCrashEnv::injected_rename_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rename_failures_;
}
uint64_t SimulatedCrashEnv::torn_tails() const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_tails_;
}

}  // namespace rodb
