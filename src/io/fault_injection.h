#ifndef RODB_IO_FAULT_INJECTION_H_
#define RODB_IO_FAULT_INJECTION_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "io/io.h"

namespace rodb {

/// What a FaultInjectingBackend does to the streams it decorates. All
/// faults are drawn from a PRNG derived from (seed, file name,
/// start_offset) -- the directory part is excluded so fresh temp dirs
/// reproduce --
/// so a given configuration misbehaves identically on every run and on
/// every thread interleaving -- the property the differential fuzzer's
/// reproduce-from-seed contract depends on.
struct FaultSpec {
  uint64_t seed = 1;

  /// Deterministic per-stream failure: the stream's Nth Next() call (0 =
  /// the first) returns IoError. -1 disables. This is the old
  /// failure_injection_test FlakyBackend behaviour.
  int fail_after_units = -1;

  /// Per Next(): probability of a transient IoError (the read itself is
  /// not consumed; a retry would see the same data).
  double error_probability = 0.0;

  /// Per delivered view: probability of splitting it and delivering only
  /// a prefix now (a short read). The remainder is served by the
  /// following Next() calls, so offsets stay consistent -- a correct
  /// consumer must cope or fail cleanly, never misread.
  double short_read_probability = 0.0;

  /// Per stream, decided at open: probability that the stream ends early
  /// (EOF after a random prefix of its byte range), as if the file had
  /// been truncated underneath the reader.
  double truncate_probability = 0.0;

  /// Per delivered view: probability of flipping one random bit of the
  /// payload (silent media corruption; only page checksums can catch it).
  double bit_flip_probability = 0.0;

  /// FlakyBackend-compatible spec: fail the (units+1)-th read.
  static FaultSpec FailAfter(int units) {
    FaultSpec spec;
    spec.fail_after_units = units;
    return spec;
  }
};

/// Write-side counterpart of FaultSpec: faults on the durability path
/// (DurableEnv syscalls), consumed by SimulatedCrashEnv. Deterministic
/// from (seed, op index), so a schedule reproduces exactly.
struct DurabilityFaultSpec {
  uint64_t seed = 1;

  /// Per Append: probability that only a prefix of the buffer reaches
  /// the file before the write fails with IoError (a short write).
  double short_write_probability = 0.0;

  /// Per Sync/SyncDir: probability of a failed fsync (IoError; nothing
  /// is promoted to the persisted state).
  double sync_failure_probability = 0.0;

  /// Per Rename: probability of a failed rename (IoError; both names
  /// keep their prior state).
  double rename_failure_probability = 0.0;

  /// On Crash(): a file with unsynced appended bytes keeps a corrupted
  /// partial sector of that tail instead of losing it cleanly — the
  /// torn-page case that only checksums/size validation can catch.
  bool torn_tail_on_crash = false;

  /// Crash (discard all volatile state, fail every later op with
  /// IoError) when the env executes its Nth durability op (1 = the
  /// first). 0 disables. This is the schedule axis the torture harness
  /// enumerates.
  uint64_t crash_at_op = 0;
};

/// IoBackend decorator that injects the faults described by a FaultSpec
/// into every stream it opens. Thread-safe: concurrent OpenStream calls
/// (morsel workers) are fine, and each stream owns its PRNG and buffers.
///
/// Composable with any inner backend (FileBackend, MemBackend,
/// TracingBackend); the inner backend is borrowed and must outlive this.
class FaultInjectingBackend : public IoBackend {
 public:
  FaultInjectingBackend(IoBackend* inner, FaultSpec spec)
      : inner_(inner), spec_(spec) {}

  Result<std::unique_ptr<SequentialStream>> OpenStream(
      const std::string& path, const IoOptions& options) override;

  /// Totals across all streams, for asserting that faults actually fired.
  uint64_t injected_errors() const { return injected_errors_.load(); }
  uint64_t injected_short_reads() const { return injected_short_reads_.load(); }
  uint64_t injected_truncations() const {
    return injected_truncations_.load();
  }
  uint64_t injected_bit_flips() const { return injected_bit_flips_.load(); }
  uint64_t injected_total() const {
    return injected_errors() + injected_short_reads() +
           injected_truncations() + injected_bit_flips();
  }

 private:
  class FaultStream;

  IoBackend* inner_;
  FaultSpec spec_;
  std::atomic<uint64_t> injected_errors_{0};
  std::atomic<uint64_t> injected_short_reads_{0};
  std::atomic<uint64_t> injected_truncations_{0};
  std::atomic<uint64_t> injected_bit_flips_{0};
};

/// IoBackend decorator that counts, per file path, how the engine reads:
/// stream opens, Next() calls that returned data, and bytes delivered.
/// Lets tests assert I/O behaviour (e.g. a column scan opens exactly the
/// files its pipeline touches) without reaching into scanner internals.
class TracingBackend : public IoBackend {
 public:
  struct PathTrace {
    uint64_t opens = 0;
    uint64_t units = 0;   ///< non-empty views delivered
    uint64_t bytes = 0;   ///< payload bytes delivered
  };

  explicit TracingBackend(IoBackend* inner) : inner_(inner) {}

  Result<std::unique_ptr<SequentialStream>> OpenStream(
      const std::string& path, const IoOptions& options) override;

  /// Counters for one path (zeroes if never opened).
  PathTrace Trace(const std::string& path) const;
  /// Every path opened so far, in lexicographic order.
  std::vector<std::string> Paths() const;
  uint64_t total_opens() const;

  void Reset();

 private:
  class TracingStream;

  void Record(const std::string& path, uint64_t units, uint64_t bytes);

  IoBackend* inner_;
  mutable std::mutex mu_;
  std::map<std::string, PathTrace> traces_;
};

}  // namespace rodb

#endif  // RODB_IO_FAULT_INJECTION_H_
