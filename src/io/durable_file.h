#ifndef RODB_IO_DURABLE_FILE_H_
#define RODB_IO_DURABLE_FILE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace rodb {

/// How aggressively the write path syncs. The commit protocol (write →
/// fsync file → rename → fsync parent dir) only holds at kCommit and
/// above; kNone keeps the pre-durability behaviour (page-cache writes,
/// no syncs) for benchmarks and throwaway datasets.
enum class FsyncLevel : int {
  /// Never fsync. Crash durability is whatever the OS page cache gives.
  kNone = 0,
  /// Sync at commit points: data files once at Finish(), sidecars once
  /// after write, manifests/metas via tmp-fsync-rename-dirsync. Default.
  kCommit = 1,
  /// Additionally sync after every page flush and sync the directory
  /// after every file create. RODB_PARANOID_FSYNC=1 selects this.
  kParanoid = 2,
};

/// Process-wide level. Initialized once from the environment
/// (RODB_FSYNC=off|commit|paranoid, RODB_PARANOID_FSYNC=1/ON), then
/// adjustable by tests/tools.
FsyncLevel GetFsyncLevel();
void SetFsyncLevel(FsyncLevel level);
/// True when the current level is at least `threshold`.
bool FsyncAt(FsyncLevel threshold);

/// rodb.durability.* counters. sync_micros backs the docs'
/// "sync_seconds": divide by 1e6.
struct DurabilityMetrics {
  obs::Counter* syncs;
  obs::Counter* dir_syncs;
  obs::Counter* sync_micros;
  obs::Counter* renames;
  obs::Counter* torn_pages_detected;
  obs::Counter* recovery_sweeps;
  obs::Counter* tmp_files_swept;

  static DurabilityMetrics& Get();
};

/// An append-only file handle on the durability path. Append order is
/// the on-disk order; Sync() makes everything appended so far durable
/// (modulo the env — a simulated-crash env only *promotes* it to the
/// persisted shadow state). Close() does not imply Sync().
class DurableFile {
 public:
  virtual ~DurableFile() = default;
  virtual Status Append(const void* data, size_t size) = 0;
  Status Append(std::string_view data) {
    return Append(data.data(), data.size());
  }
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Factory for the durability syscalls the commit protocol needs. The
/// read path keeps using IoBackend; this is its write-side counterpart.
/// `Default()` is what production writers use; the crash harness swaps
/// in a SimulatedCrashEnv via SetDefault() to model power loss.
class DurableEnv {
 public:
  virtual ~DurableEnv() = default;

  /// Creates (truncating) `path` for appending.
  virtual Result<std::unique_ptr<DurableFile>> Create(
      const std::string& path) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// fsyncs the directory so entry creates/renames/removes are durable.
  virtual Status SyncDir(const std::string& dir) = 0;
  /// Unlinks `path`; OK if it does not exist.
  virtual Status Remove(const std::string& path) = 0;

  /// The real-filesystem implementation (fsync/rename/unlink).
  static DurableEnv* Posix();
  /// Process-wide env used by writers that don't take one explicitly.
  static DurableEnv* Default();
  /// Replaces the default (nullptr restores Posix); returns the
  /// previous env. Not thread-safe against in-flight writers — swap
  /// around a quiesced store, as the crash tests do.
  static DurableEnv* SetDefault(DurableEnv* env);
};

/// write → fsync (at kCommit+) → close. At kParanoid also fsyncs the
/// parent directory so the new name itself is durable. For sidecars
/// whose name durability otherwise rides on a later commit's dir sync.
Status DurableWriteFile(const std::string& path, std::string_view data,
                        DurableEnv* env = nullptr);

/// The atomic-publish commit point: write `path.tmp` → fsync it → rename
/// over `path` → fsync the parent directory (syncs at kCommit+). The
/// rename is the commit; a crash on either side leaves the old complete
/// file or the new complete file, never a torn mix.
Status AtomicPublishFile(const std::string& path, std::string_view data,
                         DurableEnv* env = nullptr);

}  // namespace rodb

#endif  // RODB_IO_DURABLE_FILE_H_
