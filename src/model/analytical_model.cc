#include "model/analytical_model.h"

#include <algorithm>
#include <limits>

namespace rodb {

double AnalyticalModel::OperatorRate(double cycles_per_tuple) const {
  if (cycles_per_tuple <= 0.0) return std::numeric_limits<double>::infinity();
  return hw_.TotalCpuHz() / cycles_per_tuple;
}

double AnalyticalModel::Compose(const std::vector<double>& rates) {
  double inv = 0.0;
  for (double r : rates) {
    if (r <= 0.0) return 0.0;
    if (r == std::numeric_limits<double>::infinity()) continue;
    inv += 1.0 / r;
  }
  if (inv == 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / inv;
}

double AnalyticalModel::ScanRate(const ScanCpuCost& cost) const {
  const double clock = hw_.TotalCpuHz();
  const double sys_rate = OperatorRate(cost.system_cycles_per_tuple);
  const double compute_rate = OperatorRate(cost.user_cycles_per_tuple);
  // Rate at which memory can feed tuples into the L2 (equation 8's
  // clock x MemBytesCycle / TupleWidth term).
  const double mem_rate =
      cost.mem_bytes_per_tuple <= 0.0
          ? std::numeric_limits<double>::infinity()
          : clock * hw_.MemBytesPerCycle() / cost.mem_bytes_per_tuple;
  const double user_rate = std::min(compute_rate, mem_rate);
  return Compose({sys_rate, user_rate});
}

double AnalyticalModel::DiskRate(double disk_bytes_per_tuple) const {
  if (disk_bytes_per_tuple <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return hw_.TotalDiskBandwidth() / disk_bytes_per_tuple;
}

double AnalyticalModel::CpuRate(const SystemInputs& in) const {
  std::vector<double> rates;
  rates.push_back(ScanRate(in.scan));
  for (double cycles : in.operator_cycles_per_tuple) {
    rates.push_back(OperatorRate(cycles));
  }
  return Compose(rates);
}

double AnalyticalModel::Rate(const SystemInputs& in) const {
  return std::min(DiskRate(in.disk_bytes_per_tuple), CpuRate(in));
}

ScanCpuCost AnalyticalModel::CalibrateScanCost(const ExecCounters& counters,
                                               uint64_t tuples,
                                               const HardwareConfig& hw,
                                               const CostModel& costs) {
  ScanCpuCost cost;
  if (tuples == 0) return cost;
  CpuModel cpu(hw, costs);
  const double n = static_cast<double>(tuples);
  // Issue cycles plus the work-proportional stall residue; random misses
  // stall the pipeline outright. The exposed sequential component is NOT
  // folded in here -- equation 8 models it through mem_bytes_per_tuple.
  const double uop_cycles = cpu.UserUops(counters) / hw.uops_per_cycle;
  const double random_cycles =
      static_cast<double>(counters.random_line_accesses) *
      hw.random_miss_cycles;
  cost.user_cycles_per_tuple =
      (uop_cycles * (1.0 + costs.rest_fraction) + random_cycles) / n;
  const double sys_cycles =
      static_cast<double>(counters.io_bytes_read) *
          costs.sys_cycles_per_io_byte +
      static_cast<double>(counters.io_requests) *
          costs.sys_cycles_per_io_request +
      static_cast<double>(counters.files_read) * costs.sys_cycles_per_file;
  cost.system_cycles_per_tuple = sys_cycles / n;
  cost.mem_bytes_per_tuple =
      static_cast<double>(counters.seq_bytes_touched) / n;
  return cost;
}

double IndexScanBreakEvenSelectivity(double seek_seconds,
                                     double disk_bandwidth_bytes,
                                     double tuple_bytes) {
  // Seeking to the next qualifying tuple pays off once the data skipped
  // between two hits takes longer to stream than one seek:
  //   tuple_bytes / (selectivity x bandwidth) > seek_seconds.
  return tuple_bytes / (seek_seconds * disk_bandwidth_bytes);
}

}  // namespace rodb
