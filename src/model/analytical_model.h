#ifndef RODB_MODEL_ANALYTICAL_MODEL_H_
#define RODB_MODEL_ANALYTICAL_MODEL_H_

#include <vector>

#include "hwmodel/cpu_model.h"
#include "hwmodel/hardware_config.h"

namespace rodb {

/// The analytical model of Section 5: predicts the tuples/sec rate of a
/// scan-driven query as R = MIN(R_DISK, R_CPU), where R_DISK follows from
/// sequential disk bandwidth over the bytes each system must read per
/// tuple, and R_CPU composes per-operator rates like parallel resistors
/// (equations 1-8). The single headline parameter of a configuration is
/// cpdb = clock / DiskBW.
///
/// Costs are expressed in CPU cycles per tuple (the paper uses
/// instructions and approximates 1 cycle per instruction; equation 7).
struct ScanCpuCost {
  double user_cycles_per_tuple = 0.0;    ///< I_user
  double system_cycles_per_tuple = 0.0;  ///< I_system
  /// Bytes that must move from memory into the L2 per tuple (drives the
  /// memory-bandwidth bound of equation 8).
  double mem_bytes_per_tuple = 0.0;
};

/// One system's (row or column) inputs for a given query.
struct SystemInputs {
  /// Bytes the disks deliver per input tuple: the full (padded) tuple
  /// width for a row store, only the selected columns' widths for a
  /// column store (equations 3 and 4).
  double disk_bytes_per_tuple = 0.0;
  ScanCpuCost scan;
  /// Cycles/tuple of each downstream relational operator (equation 7);
  /// composed in cascade with the scanner (equation 6).
  std::vector<double> operator_cycles_per_tuple;
};

class AnalyticalModel {
 public:
  explicit AnalyticalModel(const HardwareConfig& hw) : hw_(hw) {}

  /// Equation 7: rate of an operator costing `cycles_per_tuple`.
  double OperatorRate(double cycles_per_tuple) const;

  /// Equations 5/6: cascade composition (parallel-resistor form).
  /// Zero rates (free operators) are ignored; returns +inf for empty.
  static double Compose(const std::vector<double>& rates);

  /// Equation 8: scanner rate = (clock/I_sys) || MIN(clock/I_user,
  /// clock x MemBytesCycle / TupleWidth).
  double ScanRate(const ScanCpuCost& cost) const;

  /// Equations 3/4 specialized to a single-relation scan.
  double DiskRate(double disk_bytes_per_tuple) const;

  /// Full CPU rate of the plan: scanner composed with the operators.
  double CpuRate(const SystemInputs& in) const;

  /// Equation 1: R = MIN(R_DISK, R_CPU).
  double Rate(const SystemInputs& in) const;

  bool IsIoBound(const SystemInputs& in) const {
    return DiskRate(in.disk_bytes_per_tuple) <= CpuRate(in);
  }

  /// The speedup formula: rate of the column system over the row system.
  double Speedup(const SystemInputs& columns, const SystemInputs& rows) const {
    return Rate(columns) / Rate(rows);
  }

  /// Derives a ScanCpuCost from engine counters measured over `tuples`
  /// input tuples -- how Figure 2 gets "actual CPU rates from our
  /// experimental section".
  static ScanCpuCost CalibrateScanCost(const ExecCounters& counters,
                                       uint64_t tuples,
                                       const HardwareConfig& hw,
                                       const CostModel& costs = {});

  const HardwareConfig& hardware() const { return hw_; }

 private:
  HardwareConfig hw_;
};

/// Section 2.1.1's side calculation: the selectivity below which probing
/// an unclustered index (sorted RID list, one seek per qualifying tuple)
/// beats a plain sequential scan. With a 5ms seek, 300MB/s and 128-byte
/// tuples the paper quotes 0.008%.
double IndexScanBreakEvenSelectivity(double seek_seconds,
                                     double disk_bandwidth_bytes,
                                     double tuple_bytes);

}  // namespace rodb

#endif  // RODB_MODEL_ANALYTICAL_MODEL_H_
