#include "model/contour.h"

#include <algorithm>
#include <cmath>

namespace rodb {

namespace {

/// Page/block overheads amortized per tuple (uops).
double AmortizedOverheads(double bytes_per_tuple, double tuples_per_block,
                          const CostModel& costs) {
  const double tuples_per_page =
      std::max(1.0, 4076.0 / std::max(1.0, bytes_per_tuple));
  return costs.uops_page / tuples_per_page +
         costs.uops_block / tuples_per_block;
}

}  // namespace

SystemInputs RowScanInputs(double width, double selectivity,
                           double projection_fraction,
                           const HardwareConfig& hw, const CostModel& costs,
                           double prune_surviving_fraction) {
  SystemInputs in;
  const double surviving = prune_surviving_fraction;
  const double ncols = std::max(1.0, width / 4.0);
  const double selected_cols = std::max(1.0, std::round(
      ncols * projection_fraction));
  const double selected_bytes = selected_cols * 4.0;
  // Rows read everything -- everything the prune plan retained.
  in.disk_bytes_per_tuple = width * surviving;

  // Only tuples in retained pages are examined; qualifying tuples (all in
  // retained pages) are projected and copied regardless of pruning.
  double uops = surviving * (costs.uops_tuple_examined +
                             costs.uops_predicate +
                             AmortizedOverheads(width, 100.0, costs));
  uops += selectivity * (selected_cols * costs.uops_value_copy +
                         selected_bytes * costs.uops_byte_copied);
  in.scan.user_cycles_per_tuple =
      uops / hw.uops_per_cycle * (1.0 + costs.rest_fraction);
  in.scan.system_cycles_per_tuple =
      surviving * (width * costs.sys_cycles_per_io_byte +
                   width / static_cast<double>(hw.io_unit_bytes) *
                       costs.sys_cycles_per_io_request);
  // The row scanner streams the retained pages through the cache.
  in.scan.mem_bytes_per_tuple = width * surviving;
  return in;
}

SystemInputs ColumnScanInputs(double width, double selectivity,
                              double projection_fraction,
                              const HardwareConfig& hw,
                              const CostModel& costs,
                              double column_node_factor, bool vectorized,
                              double prune_surviving_fraction) {
  SystemInputs in;
  const double surviving = prune_surviving_fraction;
  const double ncols = std::max(1.0, width / 4.0);
  const double selected_cols = std::max(1.0, std::round(
      ncols * projection_fraction));
  const double selected_bytes = selected_cols * 4.0;
  in.disk_bytes_per_tuple = selected_bytes * surviving;

  // Deepest node: examines every value of the predicate column's retained
  // pages -- either through the value-at-a-time loop or, vectorized,
  // through one masked kernel pass per page plus a per-survivor emit step.
  double uops;
  if (vectorized) {
    const double tuples_per_page = std::max(1.0, 4076.0 / 4.0);
    uops = surviving * (costs.uops_scan_vectorized +
                        costs.uops_kernel_batch / tuples_per_page +
                        AmortizedOverheads(4.0, 100.0, costs)) +
           selectivity * (costs.uops_value_copy +
                          4.0 * costs.uops_byte_copied);
  } else {
    uops = surviving * (costs.uops_tuple_examined * column_node_factor +
                        costs.uops_predicate +
                        AmortizedOverheads(4.0, 100.0, costs)) +
           selectivity * (costs.uops_value_copy +
                          4.0 * costs.uops_byte_copied);
  }
  // Inner nodes: driven by qualifying positions only (Figure 4), which
  // pruning never removes.
  const double inner_nodes = selected_cols - 1.0;
  uops += inner_nodes * selectivity *
          (costs.uops_position * column_node_factor + costs.uops_value_copy +
           4.0 * costs.uops_byte_copied);
  in.scan.user_cycles_per_tuple =
      uops / hw.uops_per_cycle * (1.0 + costs.rest_fraction);
  // Sparse inner-node accesses miss randomly (no prefetchable pattern at
  // 10% density); the predicate column streams sequentially.
  const double sparse = selectivity < 0.125 ? 1.0 : 0.0;
  in.scan.user_cycles_per_tuple +=
      sparse * inner_nodes * selectivity * hw.random_miss_cycles;
  in.scan.system_cycles_per_tuple =
      surviving * (selected_bytes * costs.sys_cycles_per_io_byte +
                   selected_bytes / static_cast<double>(hw.io_unit_bytes) *
                       costs.sys_cycles_per_io_request);
  in.scan.mem_bytes_per_tuple =
      surviving * (4.0 + (1.0 - sparse) * (selected_bytes - 4.0));
  return in;
}

std::vector<ContourCell> GenerateSpeedupContour(const ContourParams& params) {
  std::vector<ContourCell> cells;
  cells.reserve(params.cpdbs.size() * params.tuple_widths.size());
  for (double cpdb : params.cpdbs) {
    const HardwareConfig hw = HardwareConfig::WithCpdb(cpdb);
    AnalyticalModel model(hw);
    for (double width : params.tuple_widths) {
      ContourCell cell;
      cell.tuple_width = width;
      cell.cpdb = cpdb;
      const SystemInputs rows = RowScanInputs(
          width, params.selectivity, params.projection_fraction, hw,
          params.costs, params.prune_surviving_fraction);
      const SystemInputs cols = ColumnScanInputs(
          width, params.selectivity, params.projection_fraction, hw,
          params.costs, params.column_node_factor, params.vectorized,
          params.prune_surviving_fraction);
      cell.speedup = model.Speedup(cols, rows);
      cell.row_io_bound = model.IsIoBound(rows);
      cell.column_io_bound = model.IsIoBound(cols);
      cells.push_back(cell);
    }
  }
  return cells;
}

}  // namespace rodb
