#ifndef RODB_MODEL_CONTOUR_H_
#define RODB_MODEL_CONTOUR_H_

#include <vector>

#include "model/analytical_model.h"

namespace rodb {

/// Generator for Figure 2: average speedup of a column system over a row
/// system for a simple scan selecting 10% of the tuples and projecting
/// 50% of the attributes, swept over tuple width (x) and cpdb (y).
struct ContourParams {
  double selectivity = 0.10;
  double projection_fraction = 0.50;
  std::vector<double> tuple_widths = {8, 12, 16, 20, 24, 28, 32, 36};
  std::vector<double> cpdbs = {9, 18, 36, 72, 144};
  CostModel costs;
  /// Per-value loop overhead of a pipelined column scan node relative to
  /// the row scanner's per-tuple loop. Calibrated so the model reproduces
  /// Figure 2's row-favorable region (lean tuples, CPU-constrained): the
  /// paper's value-iterator-driven scan nodes cost more per value than
  /// the row scanner costs per narrow tuple.
  double column_node_factor = 1.8;
  /// Cost the column system's deepest node through the batched kernels of
  /// src/kernels/ (selection-mask scan: uops_kernel_batch per page plus
  /// uops_scan_vectorized per value) instead of the value-at-a-time loop.
  /// The row system keeps its scalar loop either way -- this sweeps the
  /// "after" grid of the vectorization before/after comparison.
  bool vectorized = false;
  /// Pruned-I/O mode: fraction of each file's pages a zone-map prune plan
  /// retains (1.0 = pruning off or ineffective). Both systems fetch,
  /// parse and examine only the surviving pages, while per-qualifying-
  /// tuple work is unchanged -- the qualifying tuples all live in
  /// retained pages, so pruning shifts the I/O-bound frontier without
  /// touching the output costs.
  double prune_surviving_fraction = 1.0;
};

struct ContourCell {
  double tuple_width = 0.0;
  double cpdb = 0.0;
  double speedup = 0.0;
  bool row_io_bound = false;
  bool column_io_bound = false;
};

/// Analytical inputs for a row scan of `width`-byte tuples with the given
/// selectivity/projection, derived from the engine's cost constants.
/// `prune_surviving_fraction` scales the fetched/examined pages (see
/// ContourParams).
SystemInputs RowScanInputs(double width, double selectivity,
                           double projection_fraction,
                           const HardwareConfig& hw, const CostModel& costs,
                           double prune_surviving_fraction = 1.0);

/// Analytical inputs for the equivalent pipelined column scan. Attributes
/// are modeled as 4-byte columns (width / 4 of them). `vectorized` costs
/// the deepest node's filtering through the batched scan kernels.
SystemInputs ColumnScanInputs(double width, double selectivity,
                              double projection_fraction,
                              const HardwareConfig& hw,
                              const CostModel& costs,
                              double column_node_factor,
                              bool vectorized = false,
                              double prune_surviving_fraction = 1.0);

/// Sweeps the grid; cells are emitted row-major (cpdb outer, width inner).
std::vector<ContourCell> GenerateSpeedupContour(const ContourParams& params);

}  // namespace rodb

#endif  // RODB_MODEL_CONTOUR_H_
