#ifndef RODB_HWMODEL_TIME_BREAKDOWN_H_
#define RODB_HWMODEL_TIME_BREAKDOWN_H_

namespace rodb {

/// The five-component CPU time breakdown of Figures 6-9 (Section 4.1),
/// all in seconds:
///
///  - sys:      CPU time in kernel mode executing I/O requests.
///  - usr_uop:  minimum time to execute the counted micro-ops (uops / 3
///              per cycle on the paper's Pentium 4).
///  - usr_l2:   stalls waiting for data to arrive in L2, after subtracting
///              overlap of the hardware prefetcher with computation, plus
///              full-penalty random misses.
///  - usr_l1:   maximum possible stall moving lines from L2 to L1.
///  - usr_rest: everything else while active in user mode (branch
///              mispredictions, functional-unit stalls, ...).
struct TimeBreakdown {
  double sys = 0.0;
  double usr_uop = 0.0;
  double usr_l2 = 0.0;
  double usr_l1 = 0.0;
  double usr_rest = 0.0;

  double User() const { return usr_uop + usr_l2 + usr_l1 + usr_rest; }
  double Total() const { return sys + User(); }

  TimeBreakdown& operator+=(const TimeBreakdown& o) {
    sys += o.sys;
    usr_uop += o.usr_uop;
    usr_l2 += o.usr_l2;
    usr_l1 += o.usr_l1;
    usr_rest += o.usr_rest;
    return *this;
  }
};

}  // namespace rodb

#endif  // RODB_HWMODEL_TIME_BREAKDOWN_H_
