#include "hwmodel/disk_model.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace rodb {

namespace {

struct ActiveStream {
  uint64_t remaining = 0;
  uint64_t total = 0;
  double weight = 1.0;
  bool serialized = false;
  bool is_query = false;
  double credit = 0.0;  ///< accumulated scheduling credit
};

}  // namespace

DiskSimResult DiskArrayModel::Simulate(
    const std::vector<StreamSpec>& query_streams,
    const std::vector<StreamSpec>& competing_streams) const {
  DiskSimResult result;
  std::vector<ActiveStream> streams;
  streams.reserve(query_streams.size() + competing_streams.size());
  uint64_t query_total = 0;
  for (const StreamSpec& s : query_streams) {
    if (s.bytes == 0) continue;
    streams.push_back({s.bytes, s.bytes, s.weight, s.serialized, true, 0.0});
    query_total += s.bytes;
  }
  result.query_bytes = query_total;
  if (query_total == 0) return result;
  for (const StreamSpec& s : competing_streams) {
    if (s.bytes == 0) continue;
    streams.push_back({s.bytes, s.bytes, s.weight, s.serialized, false, 0.0});
  }

  const double bw = hw_.TotalDiskBandwidth();
  RODB_CHECK(bw > 0);
  const uint64_t slice = std::max<uint64_t>(SliceBytes(), 1);

  // Fast path: one stream and no competition reads at full sequential
  // bandwidth with no seeks (Section 4.1: "a row store, for a single scan,
  // enjoys a full sequential bandwidth").
  size_t query_active = 0;
  for (const ActiveStream& s : streams) query_active += s.is_query ? 1 : 0;
  if (streams.size() == 1) {
    result.transfer_seconds = SequentialSeconds(streams[0].remaining);
    result.query_seconds = result.transfer_seconds;
    return result;
  }

  double now = 0.0;
  size_t last = streams.size();  // index of the stream served last
  uint64_t remaining_query = query_total;
  // Deficit round-robin over active streams. Each turn serves one slice
  // (scaled by weight via credit accumulation).
  while (remaining_query > 0) {
    // Pick the active stream with the highest credit; replenish if none
    // is ready. Competing streams restart when drained.
    size_t pick = streams.size();
    double best = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < streams.size(); ++i) {
      ActiveStream& s = streams[i];
      if (s.remaining == 0) {
        if (!s.is_query) s.remaining = s.total;  // standing workload
        else continue;
      }
      if (s.credit > best) {
        best = s.credit;
        pick = i;
      }
    }
    RODB_CHECK(pick < streams.size());
    for (size_t i = 0; i < streams.size(); ++i) {
      if (streams[i].remaining > 0 || !streams[i].is_query) {
        streams[i].credit += streams[i].weight;
      }
    }
    ActiveStream& s = streams[pick];
    s.credit -= static_cast<double>(streams.size());

    const uint64_t chunk = std::min<uint64_t>(slice, s.remaining);
    double cost = static_cast<double>(chunk) / bw;
    if (pick != last) {
      // Head movement between files. A serialized stream cannot overlap
      // the seek with an already-queued request, so it pays it twice:
      // once to reach the data and once because the device idles while
      // the scanner digests the previous buffer before submitting.
      cost += hw_.seek_seconds * (s.serialized ? 2.0 : 1.0);
      result.seeks += 1;
      result.seek_seconds += hw_.seek_seconds * (s.serialized ? 2.0 : 1.0);
      last = pick;
    }
    now += cost;
    result.transfer_seconds += static_cast<double>(chunk) / bw;
    s.remaining -= chunk;
    if (s.is_query) {
      remaining_query -= chunk;
      if (remaining_query == 0) result.query_seconds = now;
    }
  }
  return result;
}

}  // namespace rodb
