#ifndef RODB_HWMODEL_DISK_MODEL_H_
#define RODB_HWMODEL_DISK_MODEL_H_

#include <cstdint>
#include <vector>

#include "hwmodel/hardware_config.h"

namespace rodb {

/// One sequential read stream presented to the disk array (a row file or a
/// single column file, striped across all disks).
struct StreamSpec {
  uint64_t bytes = 0;   ///< total bytes this stream must read
  /// Scheduling weight. The pipelined column scanner keeps its next request
  /// queued before the previous one completes, which on the paper's Linux
  /// box made the elevator favor it over a competing process (Section 4.5,
  /// Figure 11); weight > 1 models that aggressiveness.
  double weight = 1.0;
  /// The Figure 11 "slow" variant waits for one column's request to be
  /// served before submitting the next: the head's seek is no longer
  /// overlapped with a pending request, so every slice pays an extra
  /// un-overlapped seek.
  bool serialized = false;
};

/// Result of simulating a set of query streams (optionally against
/// competing traffic) on the disk array.
struct DiskSimResult {
  double query_seconds = 0.0;   ///< time until the query's streams finish
  uint64_t query_bytes = 0;     ///< bytes delivered to the query
  uint64_t seeks = 0;           ///< stream switches that cost a seek
  double seek_seconds = 0.0;    ///< total time spent seeking
  double transfer_seconds = 0.0;
};

/// Analytic simulator for the paper's striped disk array.
///
/// The array is modeled as one aggregate sequential device at
/// `num_disks x disk_bandwidth` with a per-switch seek penalty of
/// `seek_seconds` (heads on all disks seek in parallel). The scheduler
/// round-robins between active streams at the granularity of one prefetch
/// batch (`prefetch_depth x io_unit x num_disks` bytes), which is exactly
/// the mechanism whose depth the paper sweeps in Figure 10: deep prefetch
/// amortizes the inter-file seeks a column store pays, shallow prefetch
/// makes the disks "spend more time seeking than reading".
class DiskArrayModel {
 public:
  DiskArrayModel(const HardwareConfig& hw, int prefetch_depth)
      : hw_(hw), prefetch_depth_(prefetch_depth) {}

  /// Seconds for a single uninterrupted sequential read of `bytes`.
  double SequentialSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / hw_.TotalDiskBandwidth();
  }

  /// Simulates the query's streams running concurrently with the competing
  /// streams. Competing streams are assumed to last at least as long as the
  /// query (they restart if they drain first, modeling a standing workload).
  DiskSimResult Simulate(const std::vector<StreamSpec>& query_streams,
                         const std::vector<StreamSpec>& competing_streams =
                             {}) const;

  /// Bytes delivered per scheduling slice (one prefetch batch across the
  /// whole array).
  uint64_t SliceBytes() const {
    return static_cast<uint64_t>(prefetch_depth_) * hw_.io_unit_bytes *
           static_cast<uint64_t>(hw_.num_disks);
  }

  int prefetch_depth() const { return prefetch_depth_; }
  const HardwareConfig& hardware() const { return hw_; }

 private:
  HardwareConfig hw_;
  int prefetch_depth_;
};

}  // namespace rodb

#endif  // RODB_HWMODEL_DISK_MODEL_H_
