#ifndef RODB_HWMODEL_CPU_MODEL_H_
#define RODB_HWMODEL_CPU_MODEL_H_

#include <cstdint>

#include "hwmodel/hardware_config.h"
#include "hwmodel/time_breakdown.h"

namespace rodb {

/// Semantic event counters produced by the engine while executing a query.
///
/// This is rodb's software substitute for the paper's PAPI hardware
/// counters (Section 3.2): instead of reading uop/L2-miss counters off the
/// chip, scanners and operators count the semantic events they perform and
/// CpuModel converts those counts into the paper's time breakdown using
/// the same per-event cost arithmetic the paper applies to its raw
/// counters.
struct ExecCounters {
  // --- per-tuple engine work (user mode) ---
  uint64_t tuples_examined = 0;     ///< scanner loop iterations
  uint64_t predicate_evals = 0;     ///< SARGable predicate evaluations
  uint64_t values_copied = 0;       ///< attribute values projected/copied
  uint64_t bytes_copied = 0;        ///< bytes moved by those copies
  uint64_t positions_processed = 0; ///< column scan-node position merges
  uint64_t values_decoded_bitpack = 0;
  uint64_t values_decoded_dict = 0;
  /// Dictionary codes read without materialization (compressed eval).
  uint64_t values_code_reads = 0;
  uint64_t values_decoded_for = 0;
  uint64_t values_decoded_fordelta = 0;
  uint64_t pages_parsed = 0;
  uint64_t blocks_emitted = 0;
  uint64_t operator_tuples = 0;     ///< tuples through non-scan operators
  uint64_t hash_ops = 0;            ///< hash-aggregate probe/insert ops
  uint64_t sort_comparisons = 0;
  uint64_t join_comparisons = 0;

  // --- vectorized scan kernels (src/kernels/) ---
  uint64_t kernel_batches = 0;            ///< ScanBatch/DecodeBatch calls
  uint64_t values_scanned_vectorized = 0; ///< values filtered in kernels
  /// Values later predicate passes never touched because the selection
  /// mask was already all-zero for their word.
  uint64_t mask_skipped_values = 0;

  // --- zone-map pruning (engine/zone_pruner.h) ---
  uint64_t prune_plans = 0;     ///< scans that ran with an active plan
  uint64_t prune_declined = 0;  ///< prune requested but declined (no/stale
                                ///< synopsis, kCharPack predicate, ...)
  uint64_t pages_pruned = 0;    ///< pages skipped before their I/O
  uint64_t pages_retained = 0;  ///< pages an active plan kept
  /// Column pipeline positions rejected by an inner node's zone without
  /// fetching that node's page.
  uint64_t prune_zone_rejects = 0;
  /// Synopsis sidecars rejected at open (CRC/staleness failure).
  uint64_t synopsis_corrupt = 0;

  // --- memory access pattern ---
  uint64_t seq_bytes_touched = 0;      ///< sequentially streamed bytes
  uint64_t random_line_accesses = 0;   ///< non-prefetchable line misses
  uint64_t l1_lines_touched = 0;       ///< lines moved L2 -> L1

  // --- I/O issued on behalf of this query (drives system time) ---
  uint64_t io_bytes_read = 0;   ///< bytes actually served by the backend
  uint64_t io_requests = 0;
  uint64_t files_read = 0;
  /// Bytes served by a BlockCache instead of the backend (and the unit
  /// hit/miss split). Cache-served bytes never reach the disk model:
  /// CacheAdjustedStreams() shrinks the stream list by the cached
  /// fraction so warm-cache runs come out CPU-bound.
  uint64_t io_bytes_from_cache = 0;
  uint64_t io_cache_hits = 0;
  uint64_t io_cache_misses = 0;

  ExecCounters& operator+=(const ExecCounters& o);
};

/// Per-event micro-op and system-cycle costs. One calibration point, kept
/// in a single struct so tuning against the paper's measured breakdowns
/// (Figures 6-9) happens in one place.
struct CostModel {
  // User-mode uops per semantic event. Calibrated against the measured
  // breakdowns of Figures 6-8: a row scanner burns ~250-400 uops per
  // LINEITEM tuple (usr-uop bars of 2-3s over 60M tuples at 3 uops/cycle
  // on 3.2GHz), an inner column scan node ~180 uops per driven position,
  // and FOR-delta decode is markedly pricier than FOR (Figure 9's jump).
  double uops_tuple_examined = 200;
  double uops_predicate = 40;
  double uops_value_copy = 30;
  double uops_byte_copied = 1.0;
  double uops_position = 150;
  double uops_decode_bitpack = 30;
  double uops_decode_dict = 45;
  /// Reading a code without the array lookup / value copy.
  double uops_code_read = 12;
  double uops_decode_for = 35;
  double uops_decode_fordelta = 100;
  double uops_page = 400;
  double uops_block = 300;
  double uops_operator_tuple = 100;
  double uops_hash_op = 150;
  double uops_sort_comparison = 80;
  double uops_join_comparison = 50;
  /// Vectorized kernel work: fixed batch setup cost plus a small per-value
  /// cost -- roughly one load+shift+compare per value in the scalar word
  /// kernel, amortized to a fraction of that under AVX2. Compare with
  /// uops_predicate + uops_decode_* to see the modeled speedup.
  double uops_kernel_batch = 40;
  double uops_scan_vectorized = 5;
  // kernel-mode cycles for the I/O path (per byte moved and per request).
  // Calibrated so a full LINEITEM scan (9.5GB, 3 disks) spends ~3.3s in
  // system mode, matching the tall dark bars of Figure 6.
  double sys_cycles_per_io_byte = 1.0;
  double sys_cycles_per_io_request = 35000;
  double sys_cycles_per_file = 2.5e5;
  /// usr-rest as a fraction of usr-uop (branch misses, functional-unit
  /// stalls scale with executed work).
  double rest_fraction = 0.55;

  static CostModel Default() { return CostModel{}; }
};

/// Converts engine event counts into the paper's CPU time breakdown on a
/// given hardware configuration (Section 4.1 methodology):
///
///  - usr_uop = total_uops / uops_per_cycle
///  - sequential L2 transfer time overlaps with computation; the exposed
///    usr_l2 is max(0, seq_transfer - usr_uop) plus 380-cycle random misses
///  - usr_l1 = l1 lines touched x L1-miss latency (upper bound)
///  - sys    = kernel I/O path cycles
class CpuModel {
 public:
  explicit CpuModel(const HardwareConfig& hw,
                    const CostModel& costs = CostModel::Default())
      : hw_(hw), costs_(costs) {}

  /// Total user-mode micro-ops implied by the counters.
  double UserUops(const ExecCounters& c) const;

  /// Full five-component breakdown.
  TimeBreakdown Breakdown(const ExecCounters& c) const;

  /// Convenience: total CPU seconds (sys + user including stalls).
  double CpuSeconds(const ExecCounters& c) const {
    return Breakdown(c).Total();
  }

  const HardwareConfig& hardware() const { return hw_; }
  const CostModel& costs() const { return costs_; }

 private:
  HardwareConfig hw_;
  CostModel costs_;
};

}  // namespace rodb

#endif  // RODB_HWMODEL_CPU_MODEL_H_
