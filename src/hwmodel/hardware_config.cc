#include "hwmodel/hardware_config.h"

#include <cstdio>

namespace rodb {

HardwareConfig HardwareConfig::Paper2006() { return HardwareConfig{}; }

HardwareConfig HardwareConfig::Paper2006OneDisk() {
  HardwareConfig hw;
  hw.num_disks = 1;
  return hw;
}

HardwareConfig HardwareConfig::Desktop2006() {
  HardwareConfig hw;
  hw.num_cpus = 2;
  hw.num_disks = 1;
  return hw;
}

HardwareConfig HardwareConfig::WithCpdb(double cpdb) {
  HardwareConfig hw;
  hw.num_disks = 1;
  hw.disk_bandwidth_bytes = hw.TotalCpuHz() / cpdb;
  return hw;
}

std::string HardwareConfig::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%dx%.1fGHz CPU, %dx%.0fMB/s disks, cpdb=%.1f",
                num_cpus, clock_hz / 1e9, num_disks,
                disk_bandwidth_bytes / 1e6, Cpdb());
  return buf;
}

}  // namespace rodb
