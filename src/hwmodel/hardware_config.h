#ifndef RODB_HWMODEL_HARDWARE_CONFIG_H_
#define RODB_HWMODEL_HARDWARE_CONFIG_H_

#include <cstdint>
#include <string>

namespace rodb {

/// Parameters of the modeled hardware platform.
///
/// The defaults describe the paper's testbed (Section 3.2): a Pentium 4
/// 3.2GHz (1MB L2, 128-byte L2 lines, hardware prefetcher) over a software
/// RAID of three SATA disks delivering 60MB/s each. The paper condenses a
/// configuration into a single headline number, `cpdb` (CPU cycles per
/// sequentially-delivered disk byte); see Cpdb().
struct HardwareConfig {
  // --- CPU ---
  double clock_hz = 3.2e9;       ///< cycles/second of one CPU
  int num_cpus = 1;              ///< CPUs available to the query
  double uops_per_cycle = 3.0;   ///< peak micro-ops per cycle (P4: 3)

  // --- Memory hierarchy ---
  double l2_line_bytes = 128.0;  ///< L2 cache line size
  /// Cycles for the memory bus to deliver one sequential L2 line when the
  /// hardware prefetcher is streaming (Section 4.1: 128 bytes / 128 cycles).
  double seq_line_cycles = 128.0;
  /// Stall cycles for a random (non-prefetched) memory access (measured at
  /// 380 cycles on the paper's machine).
  double random_miss_cycles = 380.0;
  double l1_line_bytes = 64.0;   ///< L1D line size
  /// L1-miss / L2-hit latency in cycles; used for the paper's "maximum
  /// possible L1 stall" component.
  double l1_miss_cycles = 18.0;
  double l1_data_bytes = 16 * 1024.0;  ///< L1 data cache size (16KB)

  // --- Disk subsystem ---
  int num_disks = 3;
  double disk_bandwidth_bytes = 60e6;  ///< sequential bytes/sec per disk
  /// Average cost of breaking the sequential pattern: seek plus rotational
  /// latency (the paper quotes "about 5-10 msec" per seek; 2006-era SATA:
  /// ~5ms seek + ~4ms half-rotation at 7200rpm).
  double seek_seconds = 0.010;
  uint64_t io_unit_bytes = 128 * 1024; ///< granularity of one I/O request

  // --- Derived quantities ---
  double TotalCpuHz() const { return clock_hz * num_cpus; }
  double TotalDiskBandwidth() const {
    return disk_bandwidth_bytes * num_disks;
  }
  /// Sequential memory bandwidth in bytes per CPU cycle.
  double MemBytesPerCycle() const { return l2_line_bytes / seq_line_cycles; }
  /// Sequential memory bandwidth in bytes/second.
  double MemBandwidth() const { return MemBytesPerCycle() * clock_hz; }
  /// CPU cycles that elapse per sequentially-delivered disk byte: the
  /// paper's single-parameter summary of a configuration. The paper's
  /// machine is rated 18 cpdb with 3 disks and 54 with one.
  double Cpdb() const { return TotalCpuHz() / TotalDiskBandwidth(); }

  /// Seconds to execute `uops` micro-operations at peak issue rate (the
  /// paper's usr-uop lower bound: uops / 3 cycles).
  double UopSeconds(double uops) const {
    return uops / uops_per_cycle / TotalCpuHz();
  }
  double CyclesToSeconds(double cycles) const { return cycles / TotalCpuHz(); }

  // --- Named configurations ---
  /// The paper's testbed: 1x P4 3.2GHz, 3x60MB/s disks -> cpdb 17.8.
  static HardwareConfig Paper2006();
  /// Same CPU over a single disk -> cpdb 53.3 ("jumps to 54").
  static HardwareConfig Paper2006OneDisk();
  /// "Modern single-disk, dual-processor desktop": cpdb ~107.
  static HardwareConfig Desktop2006();
  /// Construct a configuration with an exact cpdb rating by scaling disk
  /// bandwidth; used for the Figure 2 contour sweep.
  static HardwareConfig WithCpdb(double cpdb);

  std::string ToString() const;
};

}  // namespace rodb

#endif  // RODB_HWMODEL_HARDWARE_CONFIG_H_
