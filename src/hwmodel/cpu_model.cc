#include "hwmodel/cpu_model.h"

#include <algorithm>

namespace rodb {

ExecCounters& ExecCounters::operator+=(const ExecCounters& o) {
  tuples_examined += o.tuples_examined;
  predicate_evals += o.predicate_evals;
  values_copied += o.values_copied;
  bytes_copied += o.bytes_copied;
  positions_processed += o.positions_processed;
  values_decoded_bitpack += o.values_decoded_bitpack;
  values_decoded_dict += o.values_decoded_dict;
  values_code_reads += o.values_code_reads;
  values_decoded_for += o.values_decoded_for;
  values_decoded_fordelta += o.values_decoded_fordelta;
  pages_parsed += o.pages_parsed;
  blocks_emitted += o.blocks_emitted;
  operator_tuples += o.operator_tuples;
  hash_ops += o.hash_ops;
  sort_comparisons += o.sort_comparisons;
  join_comparisons += o.join_comparisons;
  kernel_batches += o.kernel_batches;
  values_scanned_vectorized += o.values_scanned_vectorized;
  mask_skipped_values += o.mask_skipped_values;
  prune_plans += o.prune_plans;
  prune_declined += o.prune_declined;
  pages_pruned += o.pages_pruned;
  pages_retained += o.pages_retained;
  prune_zone_rejects += o.prune_zone_rejects;
  synopsis_corrupt += o.synopsis_corrupt;
  seq_bytes_touched += o.seq_bytes_touched;
  random_line_accesses += o.random_line_accesses;
  l1_lines_touched += o.l1_lines_touched;
  io_bytes_read += o.io_bytes_read;
  io_requests += o.io_requests;
  files_read += o.files_read;
  io_bytes_from_cache += o.io_bytes_from_cache;
  io_cache_hits += o.io_cache_hits;
  io_cache_misses += o.io_cache_misses;
  return *this;
}

double CpuModel::UserUops(const ExecCounters& c) const {
  const CostModel& m = costs_;
  double uops = 0.0;
  uops += static_cast<double>(c.tuples_examined) * m.uops_tuple_examined;
  uops += static_cast<double>(c.predicate_evals) * m.uops_predicate;
  uops += static_cast<double>(c.values_copied) * m.uops_value_copy;
  uops += static_cast<double>(c.bytes_copied) * m.uops_byte_copied;
  uops += static_cast<double>(c.positions_processed) * m.uops_position;
  uops += static_cast<double>(c.values_decoded_bitpack) * m.uops_decode_bitpack;
  uops += static_cast<double>(c.values_decoded_dict) * m.uops_decode_dict;
  uops += static_cast<double>(c.values_code_reads) * m.uops_code_read;
  uops += static_cast<double>(c.values_decoded_for) * m.uops_decode_for;
  uops +=
      static_cast<double>(c.values_decoded_fordelta) * m.uops_decode_fordelta;
  uops += static_cast<double>(c.pages_parsed) * m.uops_page;
  uops += static_cast<double>(c.blocks_emitted) * m.uops_block;
  uops += static_cast<double>(c.operator_tuples) * m.uops_operator_tuple;
  uops += static_cast<double>(c.hash_ops) * m.uops_hash_op;
  uops += static_cast<double>(c.sort_comparisons) * m.uops_sort_comparison;
  uops += static_cast<double>(c.join_comparisons) * m.uops_join_comparison;
  uops += static_cast<double>(c.kernel_batches) * m.uops_kernel_batch;
  uops += static_cast<double>(c.values_scanned_vectorized) *
          m.uops_scan_vectorized;
  return uops;
}

TimeBreakdown CpuModel::Breakdown(const ExecCounters& c) const {
  TimeBreakdown t;
  const double hz = hw_.TotalCpuHz();

  // System mode: the kernel-side I/O path (request submission, completion
  // handling, page management). The paper does not break this down further.
  double sys_cycles =
      static_cast<double>(c.io_bytes_read) * costs_.sys_cycles_per_io_byte +
      static_cast<double>(c.io_requests) * costs_.sys_cycles_per_io_request +
      static_cast<double>(c.files_read) * costs_.sys_cycles_per_file;
  t.sys = sys_cycles / hz;

  // usr-uop: uops at the peak issue rate -- "the minimum time the CPU could
  // have possibly spent executing our code".
  const double uops = UserUops(c);
  t.usr_uop = hw_.UopSeconds(uops);

  // usr-L2: sequential transfers are pipelined by the hardware prefetcher
  // and overlap with computation; only the non-overlapped part stalls.
  // Random accesses pay the full measured miss latency.
  const double seq_cycles = static_cast<double>(c.seq_bytes_touched) /
                            hw_.MemBytesPerCycle();
  const double uop_cycles = uops / hw_.uops_per_cycle;
  const double exposed_seq = std::max(0.0, seq_cycles - uop_cycles);
  const double random_cycles =
      static_cast<double>(c.random_line_accesses) * hw_.random_miss_cycles;
  t.usr_l2 = (exposed_seq + random_cycles) / hz;

  // usr-L1: upper bound on L2->L1 transfer stalls.
  t.usr_l1 = static_cast<double>(c.l1_lines_touched) * hw_.l1_miss_cycles / hz;

  // usr-rest: stalls proportional to issued work.
  t.usr_rest = t.usr_uop * costs_.rest_fraction;
  return t;
}

}  // namespace rodb
