#include "obs/span.h"

#include <algorithm>
#include <cstdio>

namespace rodb::obs {

const char* PhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kQuery:     return "query";
    case TracePhase::kOpen:      return "open";
    case TracePhase::kScan:      return "scan";
    case TracePhase::kIo:        return "io";
    case TracePhase::kDecode:    return "decode";
    case TracePhase::kFilter:    return "filter";
    case TracePhase::kProject:   return "project";
    case TracePhase::kAggregate: return "aggregate";
    case TracePhase::kSort:      return "sort";
    case TracePhase::kMerge:     return "merge";
    case TracePhase::kMorsel:    return "morsel";
    case TracePhase::kIoRetry:   return "io.retry";
  }
  return "?";
}

void QueryTrace::AddPhaseNanos(TracePhase phase, uint64_t nanos) {
  const size_t i = Index(phase);
  nanos_[i].fetch_add(nanos, std::memory_order_relaxed);
  calls_[i].fetch_add(1, std::memory_order_relaxed);
  if (order_[i].load(std::memory_order_relaxed) == 0) {
    uint32_t expected = 0;
    const uint32_t seq = next_order_.fetch_add(1, std::memory_order_relaxed);
    // Lost races leave the earlier claimant's stamp in place, which is
    // exactly the "first activation" we want.
    order_[i].compare_exchange_strong(expected, seq,
                                      std::memory_order_relaxed);
  }
}

namespace {

/// Appends (name, value) only when the event actually happened, so spans
/// don't render rows of zeros.
void Put(std::vector<std::pair<std::string, uint64_t>>* list,
         const char* name, uint64_t value) {
  if (value > 0) list->emplace_back(name, value);
}

}  // namespace

void QueryTrace::FinalizeFromCounters(const ExecCounters& c) {
  for (auto& list : counters_) list.clear();

  auto* scan = &counters_[Index(TracePhase::kScan)];
  Put(scan, "rows", c.tuples_examined);
  Put(scan, "pages", c.pages_parsed);
  Put(scan, "blocks", c.blocks_emitted);
  Put(scan, "seq_bytes", c.seq_bytes_touched);
  Put(scan, "prune_plans", c.prune_plans);
  Put(scan, "prune_declined", c.prune_declined);
  Put(scan, "pages_pruned", c.pages_pruned);
  Put(scan, "pages_retained", c.pages_retained);
  Put(scan, "prune_zone_rejects", c.prune_zone_rejects);
  Put(scan, "synopsis_corrupt", c.synopsis_corrupt);

  auto* decode = &counters_[Index(TracePhase::kDecode)];
  Put(decode, "bitpack", c.values_decoded_bitpack);
  Put(decode, "dict", c.values_decoded_dict);
  Put(decode, "code_reads", c.values_code_reads);
  Put(decode, "for", c.values_decoded_for);
  Put(decode, "fordelta", c.values_decoded_fordelta);
  Put(decode, "positions", c.positions_processed);

  auto* filter = &counters_[Index(TracePhase::kFilter)];
  Put(filter, "predicate_evals", c.predicate_evals);
  Put(filter, "vectorized_batches", c.kernel_batches);
  Put(filter, "vectorized_values", c.values_scanned_vectorized);
  Put(filter, "mask_skipped_values", c.mask_skipped_values);

  auto* project = &counters_[Index(TracePhase::kProject)];
  Put(project, "values_copied", c.values_copied);
  Put(project, "bytes_copied", c.bytes_copied);

  auto* agg = &counters_[Index(TracePhase::kAggregate)];
  Put(agg, "hash_ops", c.hash_ops);
  Put(agg, "operator_tuples", c.operator_tuples);

  Put(&counters_[Index(TracePhase::kSort)], "sort_comparisons",
      c.sort_comparisons);

  auto* io = &counters_[Index(TracePhase::kIo)];
  Put(io, "backend_bytes", c.io_bytes_read);
  Put(io, "requests", c.io_requests);
  Put(io, "files", c.files_read);
  Put(io, "cache_bytes", c.io_bytes_from_cache);
  Put(io, "cache_hits", c.io_cache_hits);
  Put(io, "cache_misses", c.io_cache_misses);

  finalized_ = true;
}

bool QueryTrace::Present(TracePhase phase) const {
  const size_t i = Index(phase);
  return calls_[i].load(std::memory_order_relaxed) > 0 ||
         !counters_[i].empty();
}

std::vector<TracePhase> QueryTrace::ActivationSequence() const {
  std::vector<TracePhase> seq;
  for (size_t i = 0; i < kNumTracePhases; ++i) {
    if (order_[i].load(std::memory_order_relaxed) > 0) {
      seq.push_back(static_cast<TracePhase>(i));
    }
  }
  std::sort(seq.begin(), seq.end(), [this](TracePhase a, TracePhase b) {
    return ActivationOrder(a) < ActivationOrder(b);
  });
  return seq;
}

std::vector<SpanNode> QueryTrace::Spans() const {
  const auto timed = [this](TracePhase p) {
    return calls_[Index(p)].load(std::memory_order_relaxed) > 0;
  };

  // Parent of each present phase. The operator chain nests timed phases
  // by pull order (outer operators include their children's time);
  // counter-only phases hang off the span that did the work on their
  // behalf: decode/filter/project work happens inside scanners, the rest
  // directly under the query.
  TracePhase parent[kNumTracePhases];
  for (size_t i = 0; i < kNumTracePhases; ++i) {
    parent[i] = TracePhase::kQuery;
  }
  TracePhase chain_parent = TracePhase::kQuery;
  for (TracePhase p :
       {TracePhase::kMerge, TracePhase::kAggregate, TracePhase::kSort,
        TracePhase::kProject, TracePhase::kFilter, TracePhase::kScan}) {
    if (!timed(p)) continue;
    parent[Index(p)] = chain_parent;
    chain_parent = p;
  }
  const TracePhase scan_or_query =
      timed(TracePhase::kScan) ? TracePhase::kScan : TracePhase::kQuery;
  // I/O time is measured inside the scanner's Next, so the io span nests
  // under scan whether or not it recorded wall time; that also makes
  // scan's self time subtract the blocking I/O it contains. Open is
  // timed at the executor around the whole pipeline's Open() and stays a
  // direct child of the query.
  parent[Index(TracePhase::kIo)] = scan_or_query;
  // Retry time is spent inside the io span's blocking Next() calls. When
  // a stream is driven outside any scanner (no io span), fall back to the
  // same anchor the io span itself would use so the node is not orphaned.
  parent[Index(TracePhase::kIoRetry)] =
      Present(TracePhase::kIo) ? TracePhase::kIo : scan_or_query;
  for (TracePhase p :
       {TracePhase::kOpen, TracePhase::kDecode, TracePhase::kFilter,
        TracePhase::kProject}) {
    if (!timed(p)) parent[Index(p)] = scan_or_query;
  }

  // Emit depth-first from the query root, children in enum order (which
  // is canonical pipeline order within a level).
  std::vector<SpanNode> out;
  struct Frame {
    TracePhase phase;
    int depth;
  };
  std::vector<Frame> stack = {{TracePhase::kQuery, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    SpanNode node;
    node.phase = f.phase;
    node.depth = f.depth;
    node.inclusive_nanos = PhaseNanos(f.phase);
    node.calls = PhaseCalls(f.phase);
    node.first_activation = ActivationOrder(f.phase);
    node.counters = counters_[Index(f.phase)];
    uint64_t timed_children = 0;
    // Push children in reverse enum order so they pop in enum order.
    for (size_t i = kNumTracePhases; i-- > 1;) {
      const auto child = static_cast<TracePhase>(i);
      if (child == f.phase || parent[i] != f.phase || !Present(child)) {
        continue;
      }
      stack.push_back({child, f.depth + 1});
      timed_children += PhaseNanos(child);
    }
    node.self_nanos = node.inclusive_nanos > timed_children
                          ? node.inclusive_nanos - timed_children
                          : 0;
    out.push_back(std::move(node));
  }
  return out;
}

std::string QueryTrace::ToText() const {
  std::string out;
  char buf[160];
  for (const SpanNode& n : Spans()) {
    std::snprintf(buf, sizeof(buf), "%*s%-*s %10.3f ms  self %10.3f ms  x%llu",
                  n.depth * 2, "", 12 - std::min(n.depth * 2, 10),
                  PhaseName(n.phase),
                  static_cast<double>(n.inclusive_nanos) / 1e6,
                  static_cast<double>(n.self_nanos) / 1e6,
                  static_cast<unsigned long long>(n.calls));
    out += buf;
    for (const auto& [name, value] : n.counters) {
      std::snprintf(buf, sizeof(buf), "  %s=%llu", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string QueryTrace::ToJson() const {
  const std::vector<SpanNode> spans = Spans();
  std::string out;
  char buf[160];
  // Spans() lists parents immediately before their subtree, so the nested
  // JSON falls out of depth transitions.
  int prev_depth = -1;
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanNode& n = spans[i];
    if (n.depth > prev_depth) {
      // First child of the previous node: its "children" array is open.
    } else {
      // Close everything deeper than this node plus its previous
      // sibling, then separate.
      for (int d = prev_depth; d >= n.depth; --d) out += "]}";
      out += ",";
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"phase\":\"%s\",\"inclusive_nanos\":%llu,"
                  "\"self_nanos\":%llu,\"calls\":%llu,"
                  "\"first_activation\":%u,\"counters\":{",
                  PhaseName(n.phase),
                  static_cast<unsigned long long>(n.inclusive_nanos),
                  static_cast<unsigned long long>(n.self_nanos),
                  static_cast<unsigned long long>(n.calls),
                  n.first_activation);
    out += buf;
    for (size_t k = 0; k < n.counters.size(); ++k) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", k == 0 ? "" : ",",
                    n.counters[k].first.c_str(),
                    static_cast<unsigned long long>(n.counters[k].second));
      out += buf;
    }
    out += "},\"children\":[";
    prev_depth = n.depth;
  }
  for (int d = prev_depth; d >= 0; --d) out += "]}";
  return out;
}

}  // namespace rodb::obs
