#ifndef RODB_OBS_SPAN_H_
#define RODB_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hwmodel/cpu_model.h"

namespace rodb::obs {

/// Per-query trace spans (DESIGN.md "Observability").
///
/// A query trace is a fixed-shape span tree over the read path's phases:
/// the engine does not allocate span objects per block or per I/O unit;
/// each phase owns one inclusive-nanoseconds accumulator that scoped
/// SpanTimer instances add into. The canonical tree (parent/child
/// nesting) is a property of the pipeline shape and is assembled once at
/// export time, so the hot path stays at two clock reads and one relaxed
/// fetch_add per timed section.

/// The span taxonomy. Order here is the canonical outer-to-inner pipeline
/// order used for nesting and for the model-vs-measured phase-ordering
/// check (open -> scan -> decode -> filter -> project -> aggregate ->
/// merge).
enum class TracePhase : uint8_t {
  kQuery = 0,    ///< whole Execute()/ParallelExecute() call
  kOpen,         ///< operator/stream Open()
  kScan,         ///< scanner Next() (page parse + qualify + emit)
  kIo,           ///< blocking SequentialStream::Next() calls
  kDecode,       ///< per-codec value decode (counter-only, no wall time)
  kFilter,       ///< FilterOperator::Next
  kProject,      ///< ProjectOperator::Next
  kAggregate,    ///< hash/sort aggregate Next
  kSort,         ///< sort / top-n Next
  kMerge,        ///< parallel executor's merge of worker partials
  kMorsel,       ///< summed per-worker wall time (parallel runs)
  kIoRetry,      ///< backoff + re-issue of transient I/O failures
};
inline constexpr size_t kNumTracePhases =
    static_cast<size_t>(TracePhase::kIoRetry) + 1;

/// Stable lowercase name ("scan", "io", ...).
const char* PhaseName(TracePhase phase);

/// One exported span: phase, nesting depth, timings and counters. The
/// vector returned by QueryTrace::Spans() lists parents before children.
struct SpanNode {
  TracePhase phase = TracePhase::kQuery;
  int depth = 0;
  uint64_t inclusive_nanos = 0;
  uint64_t self_nanos = 0;   ///< inclusive minus timed children
  uint64_t calls = 0;        ///< SpanTimer activations
  uint32_t first_activation = 0;  ///< 1-based order; 0 = counters only
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// Accumulates one query's span tree. Writes (AddPhaseNanos via
/// SpanTimer) are wait-free and safe from any thread; reads
/// (Finalize/Spans/export) must happen after the query quiesced.
class QueryTrace {
 public:
  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Adds inclusive time to a phase; the first call stamps the phase's
  /// activation order.
  void AddPhaseNanos(TracePhase phase, uint64_t nanos);

  /// Attaches the canonical per-span counters from the query's folded
  /// ExecCounters (scan rows/pages, decode events, filter/project work,
  /// backend-vs-cache I/O). Call once after execution.
  void FinalizeFromCounters(const ExecCounters& c);

  uint64_t PhaseNanos(TracePhase phase) const {
    return nanos_[Index(phase)].load(std::memory_order_relaxed);
  }
  uint64_t PhaseCalls(TracePhase phase) const {
    return calls_[Index(phase)].load(std::memory_order_relaxed);
  }
  /// 1-based order in which the phase first recorded time; 0 if never.
  uint32_t ActivationOrder(TracePhase phase) const {
    return order_[Index(phase)].load(std::memory_order_relaxed);
  }
  /// True if the phase recorded time or carries finalized counters.
  bool Present(TracePhase phase) const;

  /// Timed phases sorted by first activation. Spans report on
  /// completion, so the sequence runs deterministically inner-to-outer
  /// through the pull pipeline (open, then io before scan before
  /// filter/project/aggregate, query last) — the measured ordering the
  /// model-accuracy suite compares against the pipeline ordering.
  std::vector<TracePhase> ActivationSequence() const;

  /// The assembled span tree, parents before children, children in
  /// canonical pipeline order.
  std::vector<SpanNode> Spans() const;

  /// Indented two-column rendering of Spans().
  std::string ToText() const;
  /// Nested JSON rendering of Spans() ({"phase":...,"children":[...]}).
  std::string ToJson() const;

 private:
  static size_t Index(TracePhase phase) {
    return static_cast<size_t>(phase);
  }

  std::atomic<uint64_t> nanos_[kNumTracePhases] = {};
  std::atomic<uint64_t> calls_[kNumTracePhases] = {};
  std::atomic<uint32_t> order_[kNumTracePhases] = {};
  std::atomic<uint32_t> next_order_{1};
  bool finalized_ = false;
  std::vector<std::pair<std::string, uint64_t>>
      counters_[kNumTracePhases];
};

/// Scoped RAII timer adding its lifetime to one phase of a trace. A null
/// trace disables it entirely (no clock reads), which is how untraced
/// queries keep the instrumented hot paths free.
class SpanTimer {
 public:
  SpanTimer(QueryTrace* trace, TracePhase phase)
      : trace_(trace), phase_(phase) {
    if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~SpanTimer() {
    if (trace_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      trace_->AddPhaseNanos(
          phase_, static_cast<uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          elapsed)
                          .count()));
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  QueryTrace* trace_;
  TracePhase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rodb::obs

#endif  // RODB_OBS_SPAN_H_
