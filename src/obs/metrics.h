#ifndef RODB_OBS_METRICS_H_
#define RODB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rodb::obs {

/// Process-wide metric primitives (DESIGN.md "Observability").
///
/// Counters and histograms sit on the scan hot path (every I/O unit, every
/// folded stats delta), so the write side must never take a lock and must
/// not bounce a single cache line between the parallel executor's workers:
/// Counter shards its value over cache-line-aligned atomics indexed by a
/// thread-local slot. Reads (Value/Snapshot/export) sum the shards; they
/// are monotonic but not a point-in-time cut, which is all a monitoring
/// export needs.

/// Number of independent atomic shards per counter. Sixteen covers the
/// morsel scheduler's worker cap without two hot threads mapping to the
/// same line in the common case.
inline constexpr size_t kCounterShards = 16;

/// Index of the calling thread's counter shard, stable for the thread's
/// lifetime.
size_t ThisThreadShard();

/// Monotonic counter. Add() is wait-free; Value() sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    shards_[ThisThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kCounterShards];
};

/// Last-value gauge (signed so it can track levels that shrink, e.g.
/// cache bytes in use).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are fixed at
/// construction so Record() is a branchless-ish scan over a small array
/// plus one relaxed fetch_add — no locks, safe from any thread.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t sample);

  /// Upper bounds, ascending; the overflow bucket is not included.
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  uint64_t BucketCount(size_t i) const;
  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Exponential bounds {first, first*factor, ...} with `count` entries.
  static std::vector<uint64_t> ExponentialBounds(uint64_t first,
                                                 double factor, size_t count);

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Point-in-time copy of one metric, used by the exporters and tests.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  std::vector<uint64_t> histogram_bounds;
  std::vector<uint64_t> histogram_counts;  // bounds.size() + 1 (overflow)
  uint64_t histogram_sum = 0;
  uint64_t histogram_count = 0;
};

/// Name -> metric registry. Registration takes a mutex (cold path, once
/// per call site thanks to cached handles); returned pointers are stable
/// for the registry's lifetime, so hot paths touch only the atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation reports to.
  static MetricsRegistry& Default();

  /// Returns the counter registered under `name`, creating it on first
  /// use. Aborts if `name` is already a different metric kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` are used only on first creation; later lookups ignore them.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> bounds);

  /// Snapshot of every registered metric, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus-style text exposition of Snapshot().
  std::string ExportText() const;
  /// One JSON object {"name": {...}, ...} of Snapshot().
  std::string ExportJson() const;

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace rodb::obs

#endif  // RODB_OBS_METRICS_H_
