#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "common/macros.h"

namespace rodb::obs {

size_t ThisThreadShard() {
  // Hash the thread id once per thread; the cached slot keeps Add() at a
  // single relaxed fetch_add with no hashing on the hot path.
  thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kCounterShards;
  return shard;
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  RODB_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(uint64_t sample) {
  size_t i = 0;
  while (i < bounds_.size() && sample > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::BucketCount(size_t i) const {
  RODB_CHECK(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::ExponentialBounds(uint64_t first,
                                                   double factor,
                                                   size_t count) {
  RODB_CHECK(first > 0 && factor > 1.0);
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  double b = static_cast<double>(first);
  for (size_t i = 0; i < count; ++i) {
    const auto v = static_cast<uint64_t>(b);
    if (bounds.empty() || v > bounds.back()) bounds.push_back(v);
    b *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter == nullptr) {
    RODB_CHECK(e.gauge == nullptr && e.histogram == nullptr);
    e.kind = MetricSample::Kind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.gauge == nullptr) {
    RODB_CHECK(e.counter == nullptr && e.histogram == nullptr);
    e.kind = MetricSample::Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.histogram == nullptr) {
    RODB_CHECK(e.counter == nullptr && e.gauge == nullptr);
    e.kind = MetricSample::Kind::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return e.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        s.counter_value = e.counter->Value();
        break;
      case MetricSample::Kind::kGauge:
        s.gauge_value = e.gauge->Value();
        break;
      case MetricSample::Kind::kHistogram: {
        s.histogram_bounds = e.histogram->bounds();
        s.histogram_counts.reserve(s.histogram_bounds.size() + 1);
        for (size_t i = 0; i <= s.histogram_bounds.size(); ++i) {
          s.histogram_counts.push_back(e.histogram->BucketCount(i));
        }
        s.histogram_sum = e.histogram->Sum();
        s.histogram_count = e.histogram->TotalCount();
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

void AppendHistogramText(const MetricSample& s, std::string* out) {
  char buf[128];
  uint64_t cumulative = 0;
  for (size_t i = 0; i < s.histogram_counts.size(); ++i) {
    cumulative += s.histogram_counts[i];
    if (i < s.histogram_bounds.size()) {
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%llu\"} %llu\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.histogram_bounds[i]),
                    static_cast<unsigned long long>(cumulative));
    } else {
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %llu\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(cumulative));
    }
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%s_sum %llu\n%s_count %llu\n",
                s.name.c_str(),
                static_cast<unsigned long long>(s.histogram_sum),
                s.name.c_str(),
                static_cast<unsigned long long>(s.histogram_count));
  *out += buf;
}

}  // namespace

std::string MetricsRegistry::ExportText() const {
  std::string out;
  char buf[128];
  for (const MetricSample& s : Snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%s %llu\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.counter_value));
        out += buf;
        break;
      case MetricSample::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%s %lld\n", s.name.c_str(),
                      static_cast<long long>(s.gauge_value));
        out += buf;
        break;
      case MetricSample::Kind::kHistogram:
        AppendHistogramText(s, &out);
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::string out = "{";
  char buf[128];
  bool first = true;
  for (const MetricSample& s : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + s.name + "\":";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(s.counter_value));
        out += buf;
        break;
      case MetricSample::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(s.gauge_value));
        out += buf;
        break;
      case MetricSample::Kind::kHistogram: {
        out += "{\"bounds\":[";
        for (size_t i = 0; i < s.histogram_bounds.size(); ++i) {
          std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ",",
                        static_cast<unsigned long long>(
                            s.histogram_bounds[i]));
          out += buf;
        }
        out += "],\"counts\":[";
        for (size_t i = 0; i < s.histogram_counts.size(); ++i) {
          std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ",",
                        static_cast<unsigned long long>(
                            s.histogram_counts[i]));
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "],\"sum\":%llu,\"count\":%llu}",
                      static_cast<unsigned long long>(s.histogram_sum),
                      static_cast<unsigned long long>(s.histogram_count));
        out += buf;
        break;
      }
    }
  }
  out += "}";
  return out;
}

}  // namespace rodb::obs
