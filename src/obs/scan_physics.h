#ifndef RODB_OBS_SCAN_PHYSICS_H_
#define RODB_OBS_SCAN_PHYSICS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/open_scanner.h"
#include "engine/scan_spec.h"
#include "engine/zone_pruner.h"
#include "hwmodel/hardware_config.h"
#include "storage/catalog.h"

namespace rodb::obs {

/// Exact prediction of a full-table scan's I/O and parse physics
/// (DESIGN.md "Observability").
///
/// Cycle timings vary run to run, but the *counts* a scan produces —
/// bytes pulled from the backend, I/O units delivered, files opened,
/// pages parsed, tuples examined — are fully determined by the catalog
/// metadata, the scan spec, and (for pipelined column scans) how deep
/// into each inner file the qualifying positions reach. Predicting them
/// exactly is what lets the model-accuracy suite assert equality against
/// the measured registry counters instead of a tolerance band.

/// Physics of one physical file touched by the scan.
struct FilePhysics {
  size_t attr = 0;        ///< table attribute (0 for row/PAX single file)
  uint64_t bytes = 0;     ///< backend bytes delivered for this file
  uint64_t io_units = 0;  ///< delivered SequentialStream::Next() views
  uint64_t pages = 0;     ///< pages parsed out of those units
};

/// Expected IoStats for one run configuration (uncached / cache-cold /
/// cache-warm), field-compatible with the ExecCounters io_* block.
struct IoPhysics {
  uint64_t bytes_read = 0;
  uint64_t requests = 0;
  uint64_t files_opened = 0;
  uint64_t bytes_from_cache = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// The full prediction.
struct ScanPhysics {
  std::vector<FilePhysics> files;
  uint64_t bytes_read = 0;
  uint64_t io_units = 0;
  uint64_t files_opened = 0;
  uint64_t pages_parsed = 0;
  uint64_t tuples_examined = 0;

  /// Expected I/O counters without a cache.
  IoPhysics Uncached() const;
  /// First run against an empty BlockCache: backend traffic identical to
  /// Uncached(), every unit a miss.
  IoPhysics Cold() const;
  /// Re-run with every unit resident: all bytes from cache, zero backend
  /// traffic, zero opens (the cache's file-size registry avoids the
  /// probe open).
  IoPhysics Warm() const;
};

/// Per-inner-node reach hints for pipelined column scans: entry i is the
/// last tuple position pipeline node i is asked to fetch (i.e. the last
/// position qualifying under the predicates of nodes 0..i-1), or -1 if
/// it is never asked. Parallel to ScanPipelineAttrs(spec); entry 0 (the
/// driving node, which always reads its whole file) is ignored. An empty
/// vector means every node reaches the last tuple — correct for scans
/// whose predicates never go false, and for all of row/PAX/early-mat.
struct ScanPhysicsHints {
  std::vector<int64_t> last_position;
};

/// Predicts the physics of scanning `table` with `spec` under scanner
/// implementation `impl`. Only full-table ranges are supported
/// (NotSupported otherwise); column predictions additionally require
/// uniform PageValues for files whose reach is bounded by a hint.
///
/// `prune` is the scan's zone-map plan (engine/zone_pruner.h); the caller
/// builds it so this layer stays link-independent of the pruner. An
/// active plan switches the prediction to pruned-I/O mode: each file
/// streams only the plan's retained page runs, one backend stream (and
/// so one open) per contiguous byte run, and tuples_examined counts just
/// the positions the driving file's fetched pages span. Null or inactive
/// plans predict the full scan. Pruned early-materialized scans stream
/// per-cursor runs this model does not cover (NotSupported).
Result<ScanPhysics> PredictScanPhysics(
    const OpenTable& table, const ScanSpec& spec,
    ScannerImpl impl = ScannerImpl::kAuto,
    const ScanPhysicsHints& hints = ScanPhysicsHints{},
    const PrunePlan* prune = nullptr);

/// How predicate evaluation is costed by PredictFilterCpuSeconds:
/// value-at-a-time (one uops_predicate per examined value) or through the
/// batched kernels of src/kernels/ (one uops_kernel_batch per page pass
/// plus uops_scan_vectorized per value).
enum class ScanCostMode { kScalar, kVectorized };

/// Modeled user-CPU seconds the scan's *filtering* work costs under
/// `mode`, derived from the predicted physics: tuples_examined values
/// flow through `num_predicates` conjunctive passes. Decode and I/O costs
/// are unchanged by the mode and deliberately excluded -- this isolates
/// the term the vectorized kernels actually change, so benches can print
/// a modeled before/after next to the measured one.
double PredictFilterCpuSeconds(const ScanPhysics& physics,
                               size_t num_predicates,
                               const HardwareConfig& hw, ScanCostMode mode);

}  // namespace rodb::obs

#endif  // RODB_OBS_SCAN_PHYSICS_H_
