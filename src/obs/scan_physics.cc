#include "obs/scan_physics.h"

#include <algorithm>

#include "hwmodel/cpu_model.h"

namespace rodb::obs {

namespace {

/// Units delivered for reading the first `bytes` bytes of a file in
/// `unit`-sized views (the trailing EOF Next() delivers no view and
/// counts nothing).
uint64_t UnitsFor(uint64_t bytes, uint64_t unit) {
  return bytes == 0 ? 0 : (bytes + unit - 1) / unit;
}

/// A stream delivers full `unit`-sized views except for the file's final
/// tail, so pulling `units` views off a `file_bytes`-long file moves
/// min(units * unit, file_bytes) bytes.
uint64_t BytesFor(uint64_t units, uint64_t unit, uint64_t file_bytes) {
  return std::min(units * unit, file_bytes);
}

FilePhysics FullFile(const TableMeta& meta, size_t attr, size_t file,
                     uint64_t unit) {
  FilePhysics f;
  f.attr = attr;
  f.bytes = meta.file_bytes[file];
  f.io_units = UnitsFor(f.bytes, unit);
  f.pages = meta.file_pages[file];
  return f;
}

/// Physics of one file restricted to its prune plan's page runs. The
/// pruned stream opens one backend stream per contiguous byte run, and
/// each run delivers its own unit-aligned views, so opens and units are
/// per-run, not per-file.
FilePhysics PrunedFile(const TableMeta& meta, const NodePrunePlan& node,
                       uint64_t unit, uint64_t* opens) {
  FilePhysics f;
  f.attr = node.attr;
  f.pages = node.pages;
  const uint64_t file_bytes = meta.file_bytes[node.file];
  for (const Run& r : node.page_runs) {
    const uint64_t offset = r.begin * meta.page_size;
    if (offset >= file_bytes) continue;
    const uint64_t length =
        std::min((r.end - r.begin) * meta.page_size, file_bytes - offset);
    f.bytes += length;
    f.io_units += UnitsFor(length, unit);
    *opens += 1;
  }
  return f;
}

}  // namespace

IoPhysics ScanPhysics::Uncached() const {
  IoPhysics io;
  io.bytes_read = bytes_read;
  io.requests = io_units;
  io.files_opened = files_opened;
  return io;
}

IoPhysics ScanPhysics::Cold() const {
  // A cold CachingStream forwards every miss to the backend in the same
  // unit-aligned views, so backend traffic matches the uncached run and
  // every delivered unit is one miss.
  IoPhysics io = Uncached();
  io.cache_misses = io_units;
  return io;
}

IoPhysics ScanPhysics::Warm() const {
  // Every unit (including the short file tail, which is cached because
  // the assembled block equals the requested size) is served from cache;
  // the file-size registry lets warm opens skip the backend probe, so no
  // file opens are counted either.
  IoPhysics io;
  io.bytes_from_cache = bytes_read;
  io.cache_hits = io_units;
  return io;
}

Result<ScanPhysics> PredictScanPhysics(const OpenTable& table,
                                       const ScanSpec& spec,
                                       ScannerImpl impl,
                                       const ScanPhysicsHints& hints,
                                       const PrunePlan* prune) {
  if (!spec.range.is_all()) {
    return Status::NotSupported(
        "PredictScanPhysics: only full-table ranges are modeled");
  }
  const TableMeta& meta = table.meta();
  const uint64_t unit = spec.read.io_unit_bytes;
  if (unit == 0) {
    return Status::InvalidArgument("PredictScanPhysics: io_unit_bytes == 0");
  }

  ScanPhysics physics;
  physics.tuples_examined = meta.num_tuples;

  if (prune != nullptr && prune->active) {
    if (impl == ScannerImpl::kEarlyMat) {
      return Status::NotSupported(
          "PredictScanPhysics: pruned early-materialized scans stream "
          "per-cursor runs this model does not cover");
    }
    // Pruned-I/O mode: every scanner fetches exactly its node's retained
    // page runs, and the driving file's fetched pages bound the scanner
    // loop, so every count stays exact.
    uint64_t opens = 0;
    for (const NodePrunePlan& node : prune->nodes) {
      physics.files.push_back(PrunedFile(meta, node, unit, &opens));
    }
    const NodePrunePlan& base = prune->nodes.front();
    physics.tuples_examined = 0;
    for (const Run& r : base.page_runs) {
      const uint64_t begin = r.begin * base.vpp;
      const uint64_t end =
          std::min(r.end * static_cast<uint64_t>(base.vpp), meta.num_tuples);
      if (end > begin) physics.tuples_examined += end - begin;
    }
    physics.files_opened = opens;
    for (const FilePhysics& f : physics.files) {
      physics.bytes_read += f.bytes;
      physics.io_units += f.io_units;
      physics.pages_parsed += f.pages;
    }
    return physics;
  }

  if (meta.layout != Layout::kColumn) {
    if (impl == ScannerImpl::kEarlyMat) {
      return Status::NotSupported(
          "PredictScanPhysics: early materialization is column-only");
    }
    // Row and PAX scan the single physical file front to back and parse
    // every page regardless of predicate selectivity (PAX evaluates the
    // deepest predicate over every minipage).
    physics.files.push_back(FullFile(meta, 0, 0, unit));
  } else {
    const std::vector<size_t> attrs = ScanPipelineAttrs(spec);
    if (!hints.last_position.empty() &&
        hints.last_position.size() != attrs.size()) {
      return Status::InvalidArgument(
          "PredictScanPhysics: hints must parallel ScanPipelineAttrs");
    }
    for (size_t node = 0; node < attrs.size(); ++node) {
      const size_t attr = attrs[node];
      if (node == 0 || impl == ScannerImpl::kEarlyMat ||
          hints.last_position.empty()) {
        // The driving node streams its whole file to EOF; early
        // materialization decodes every column for every row; and with
        // no hints we assume every node's reach extends to the last
        // tuple (exact whenever predicates qualify the final tuple).
        physics.files.push_back(FullFile(meta, attr, attr, unit));
        continue;
      }
      const int64_t last = hints.last_position[node];
      FilePhysics f;
      f.attr = attr;
      if (last >= 0) {
        // Inner nodes parse pages lazily up to the one holding the last
        // position they are asked for, pulling only the units that span
        // those pages.
        const uint32_t vpp = meta.PageValues(attr);
        if (vpp == 0) {
          return Status::NotSupported(
              "PredictScanPhysics: bounded inner reach needs uniform "
              "PageValues");
        }
        f.pages = static_cast<uint64_t>(last) / vpp + 1;
        f.pages = std::min(f.pages, meta.file_pages[attr]);
        const uint64_t spanned =
            std::min(f.pages * meta.page_size, meta.file_bytes[attr]);
        f.io_units = UnitsFor(spanned, unit);
        f.bytes = BytesFor(f.io_units, unit, meta.file_bytes[attr]);
      }
      physics.files.push_back(f);
    }
  }

  // Every pipeline stream is opened up front (column scans open all node
  // files before the first position qualifies), so opens count files,
  // not files-with-traffic.
  physics.files_opened = physics.files.size();
  for (const FilePhysics& f : physics.files) {
    physics.bytes_read += f.bytes;
    physics.io_units += f.io_units;
    physics.pages_parsed += f.pages;
  }
  return physics;
}

double PredictFilterCpuSeconds(const ScanPhysics& physics,
                               size_t num_predicates,
                               const HardwareConfig& hw, ScanCostMode mode) {
  const CostModel costs = CostModel::Default();
  const double passes =
      static_cast<double>(physics.tuples_examined) *
      static_cast<double>(num_predicates);
  double uops;
  if (mode == ScanCostMode::kScalar) {
    uops = passes * costs.uops_predicate;
  } else {
    // One kernel batch per page per predicate pass; the per-value cost is
    // the word-at-a-time compare instead of a full predicate call.
    const double batches =
        static_cast<double>(physics.pages_parsed) *
        static_cast<double>(num_predicates);
    uops = batches * costs.uops_kernel_batch +
           passes * costs.uops_scan_vectorized;
  }
  return hw.UopSeconds(uops) * (1.0 + costs.rest_fraction);
}

}  // namespace rodb::obs
