#include "obs/model_comparison.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace rodb::obs {

namespace {

CounterComparison Compare(const char* name, uint64_t predicted,
                          uint64_t measured) {
  CounterComparison c;
  c.name = name;
  c.predicted = predicted;
  c.measured = measured;
  const uint64_t diff =
      predicted > measured ? predicted - measured : measured - predicted;
  c.rel_error = static_cast<double>(diff) /
                static_cast<double>(std::max<uint64_t>(measured, 1));
  return c;
}

/// Seconds the cost model attributes to `uops` of user-mode work,
/// including the usr-rest surcharge that scales with executed uops.
double UopSeconds(const HardwareConfig& hw, const CostModel& costs,
                  double uops) {
  return hw.UopSeconds(uops) * (1.0 + costs.rest_fraction);
}

}  // namespace

double ModelComparison::MaxCountError() const {
  double max_err = 0.0;
  for (const CounterComparison& c : counts) {
    max_err = std::max(max_err, c.rel_error);
  }
  return max_err;
}

ModelComparison BuildModelComparison(const ScanPhysics& physics,
                                     const ExecCounters& c,
                                     const QueryTrace& trace,
                                     const ModeledTiming& timing,
                                     double measured_wall_seconds,
                                     const HardwareConfig& hw) {
  ModelComparison out;

  // Pick which cache projection of the physics the run corresponds to:
  // no hit/miss traffic means no cache, zero backend bytes means fully
  // warm, otherwise cold. (A partially warm cache matches none of the
  // three; the rel_error columns surface that honestly.)
  IoPhysics io;
  if (c.io_cache_hits + c.io_cache_misses == 0) {
    io = physics.Uncached();
  } else if (c.io_bytes_read == 0) {
    io = physics.Warm();
  } else {
    io = physics.Cold();
  }
  out.counts.push_back(Compare("tuples_examined", physics.tuples_examined,
                               c.tuples_examined));
  out.counts.push_back(
      Compare("pages_parsed", physics.pages_parsed, c.pages_parsed));
  out.counts.push_back(Compare("backend_bytes", io.bytes_read,
                               c.io_bytes_read));
  out.counts.push_back(Compare("io_requests", io.requests, c.io_requests));
  out.counts.push_back(
      Compare("files_opened", io.files_opened, c.files_read));
  out.counts.push_back(Compare("cache_bytes", io.bytes_from_cache,
                               c.io_bytes_from_cache));
  out.counts.push_back(Compare("cache_hits", io.cache_hits,
                               c.io_cache_hits));
  out.counts.push_back(Compare("cache_misses", io.cache_misses,
                               c.io_cache_misses));

  // Per-phase attribution of the cost model's cycles, against the span
  // tree's measured self times.
  const CostModel costs = CostModel::Default();
  std::vector<SpanNode> spans = trace.Spans();
  const auto measured_self = [&spans](TracePhase p) {
    for (const SpanNode& n : spans) {
      if (n.phase == p) return static_cast<double>(n.self_nanos) / 1e9;
    }
    return 0.0;
  };
  const auto phase = [&out, &measured_self](TracePhase p, double predicted) {
    PhaseComparison pc;
    pc.phase = p;
    pc.predicted_seconds = predicted;
    pc.measured_seconds = measured_self(p);
    out.phases.push_back(pc);
  };
  phase(TracePhase::kOpen,
        hw.CyclesToSeconds(static_cast<double>(c.files_read) *
                           costs.sys_cycles_per_file));
  phase(TracePhase::kScan,
        UopSeconds(hw, costs,
                   static_cast<double>(c.tuples_examined) *
                           costs.uops_tuple_examined +
                       static_cast<double>(c.pages_parsed) * costs.uops_page +
                       static_cast<double>(c.blocks_emitted) *
                           costs.uops_block));
  phase(TracePhase::kIo,
        hw.CyclesToSeconds(static_cast<double>(c.io_bytes_read) *
                               costs.sys_cycles_per_io_byte +
                           static_cast<double>(c.io_requests) *
                               costs.sys_cycles_per_io_request));
  phase(TracePhase::kDecode,
        UopSeconds(
            hw, costs,
            static_cast<double>(c.values_decoded_bitpack) *
                    costs.uops_decode_bitpack +
                static_cast<double>(c.values_decoded_dict) *
                    costs.uops_decode_dict +
                static_cast<double>(c.values_code_reads) *
                    costs.uops_code_read +
                static_cast<double>(c.values_decoded_for) *
                    costs.uops_decode_for +
                static_cast<double>(c.values_decoded_fordelta) *
                    costs.uops_decode_fordelta +
                static_cast<double>(c.positions_processed) *
                    costs.uops_position));
  phase(TracePhase::kFilter,
        UopSeconds(hw, costs,
                   static_cast<double>(c.predicate_evals) *
                           costs.uops_predicate +
                       static_cast<double>(c.kernel_batches) *
                           costs.uops_kernel_batch +
                       static_cast<double>(c.values_scanned_vectorized) *
                           costs.uops_scan_vectorized));
  // Scalar-vs-vectorized attribution of the kernel passes that actually
  // ran: the vectorized charge next to what value-at-a-time evaluation of
  // the same values would have cost.
  out.filter_vectorized_seconds =
      UopSeconds(hw, costs,
                 static_cast<double>(c.kernel_batches) *
                         costs.uops_kernel_batch +
                     static_cast<double>(c.values_scanned_vectorized) *
                         costs.uops_scan_vectorized);
  out.filter_scalar_equiv_seconds =
      UopSeconds(hw, costs,
                 static_cast<double>(c.values_scanned_vectorized) *
                     costs.uops_predicate);
  phase(TracePhase::kProject,
        UopSeconds(hw, costs,
                   static_cast<double>(c.values_copied) *
                           costs.uops_value_copy +
                       static_cast<double>(c.bytes_copied) *
                           costs.uops_byte_copied));
  phase(TracePhase::kAggregate,
        UopSeconds(hw, costs,
                   static_cast<double>(c.hash_ops) * costs.uops_hash_op +
                       static_cast<double>(c.operator_tuples) *
                           costs.uops_operator_tuple));
  phase(TracePhase::kSort,
        UopSeconds(hw, costs,
                   static_cast<double>(c.sort_comparisons) *
                       costs.uops_sort_comparison));

  out.predicted_elapsed_seconds = timing.elapsed_seconds;
  out.predicted_io_bound = timing.io_bound;
  out.measured_wall_seconds = measured_wall_seconds;
  return out;
}

std::string ModelComparison::ToText() const {
  std::string out;
  char buf[160];
  out += "  counter            predicted       measured    rel.err\n";
  for (const CounterComparison& c : counts) {
    std::snprintf(buf, sizeof(buf), "  %-16s %12llu %14llu %10.4f\n",
                  c.name.c_str(),
                  static_cast<unsigned long long>(c.predicted),
                  static_cast<unsigned long long>(c.measured), c.rel_error);
    out += buf;
  }
  out += "  phase            predicted_ms    measured_ms\n";
  for (const PhaseComparison& p : phases) {
    if (p.predicted_seconds == 0.0 && p.measured_seconds == 0.0) continue;
    std::snprintf(buf, sizeof(buf), "  %-16s %12.3f %14.3f\n",
                  PhaseName(p.phase), p.predicted_seconds * 1e3,
                  p.measured_seconds * 1e3);
    out += buf;
  }
  if (filter_vectorized_seconds > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "  filter (modeled): vectorized %.3f ms vs scalar-equiv "
                  "%.3f ms (%.1fx)\n",
                  filter_vectorized_seconds * 1e3,
                  filter_scalar_equiv_seconds * 1e3,
                  filter_scalar_equiv_seconds / filter_vectorized_seconds);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  modeled elapsed %.3f ms (%s-bound), measured wall "
                "%.3f ms\n",
                predicted_elapsed_seconds * 1e3,
                predicted_io_bound ? "io" : "cpu",
                measured_wall_seconds * 1e3);
  out += buf;
  return out;
}

std::string ModelComparison::ToJson() const {
  std::string out = "{\"counts\":[";
  char buf[200];
  for (size_t i = 0; i < counts.size(); ++i) {
    const CounterComparison& c = counts[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"predicted\":%llu,"
                  "\"measured\":%llu,\"rel_error\":%.6f}",
                  i == 0 ? "" : ",", c.name.c_str(),
                  static_cast<unsigned long long>(c.predicted),
                  static_cast<unsigned long long>(c.measured), c.rel_error);
    out += buf;
  }
  out += "],\"phases\":[";
  bool first = true;
  for (const PhaseComparison& p : phases) {
    if (p.predicted_seconds == 0.0 && p.measured_seconds == 0.0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%s{\"phase\":\"%s\",\"predicted_seconds\":%.9f,"
                  "\"measured_seconds\":%.9f}",
                  first ? "" : ",", PhaseName(p.phase), p.predicted_seconds,
                  p.measured_seconds);
    first = false;
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"predicted_elapsed_seconds\":%.9f,"
                "\"predicted_io_bound\":%s,"
                "\"measured_wall_seconds\":%.9f,"
                "\"filter_vectorized_seconds\":%.9f,"
                "\"filter_scalar_equiv_seconds\":%.9f}",
                predicted_elapsed_seconds,
                predicted_io_bound ? "true" : "false",
                measured_wall_seconds, filter_vectorized_seconds,
                filter_scalar_equiv_seconds);
  out += buf;
  return out;
}

Result<ModelComparisonRun> RunModelComparison(const OpenTable& table,
                                              const ScanSpec& spec,
                                              IoBackend* backend,
                                              const HardwareConfig& hw,
                                              ScannerImpl impl,
                                              const ScanPhysicsHints& hints) {
  RODB_ASSIGN_OR_RETURN(ScanPhysics physics,
                        PredictScanPhysics(table, spec, impl, hints));

  ExecStats stats;
  QueryTrace trace;
  stats.set_trace(&trace);
  RODB_ASSIGN_OR_RETURN(OperatorPtr root,
                        OpenScanner(table, spec, backend, &stats, impl));

  ModelComparisonRun run;
  RODB_ASSIGN_OR_RETURN(run.exec, Execute(root.get(), &stats));
  run.counters = stats.counters();

  const ModeledTiming timing = ModelQueryTiming(
      run.counters, hw, spec.read.prefetch_depth,
      CacheAdjustedStreams(ScanStreams(table, spec), run.counters));
  run.comparison =
      BuildModelComparison(physics, run.counters, trace, timing,
                           run.exec.measured.wall_seconds, hw);
  run.trace_text = trace.ToText();
  run.trace_json = trace.ToJson();
  return run;
}

}  // namespace rodb::obs
