#ifndef RODB_OBS_MODEL_COMPARISON_H_
#define RODB_OBS_MODEL_COMPARISON_H_

#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/open_scanner.h"
#include "hwmodel/hardware_config.h"
#include "obs/scan_physics.h"
#include "obs/span.h"

namespace rodb::obs {

/// Side-by-side predicted-vs-measured report (DESIGN.md "Observability").
///
/// Two tiers of comparison, matching what is actually deterministic:
///  - counts (bytes, I/O units, files, pages, tuples) are physics — the
///    ScanPhysics prediction must match the measured counters exactly;
///  - per-phase times pit the Section 5 cost model's cycle attribution
///    against the measured span tree — indicative, not exact, since wall
///    time varies run to run.

/// One predicted-vs-measured count.
struct CounterComparison {
  std::string name;
  uint64_t predicted = 0;
  uint64_t measured = 0;
  double rel_error = 0.0;  ///< |p - m| / max(m, 1) (0 when both zero)
};

/// One phase of the modeled CPU/I-O attribution vs the measured span
/// self time.
struct PhaseComparison {
  TracePhase phase = TracePhase::kQuery;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;
};

struct ModelComparison {
  std::vector<CounterComparison> counts;
  std::vector<PhaseComparison> phases;
  double predicted_elapsed_seconds = 0.0;
  double measured_wall_seconds = 0.0;
  bool predicted_io_bound = false;
  /// Modeled cost of the run's filtering work both ways (src/kernels/):
  /// what the kernel passes were charged vs what the same values would
  /// have cost value-at-a-time. Both zero when nothing ran vectorized.
  double filter_vectorized_seconds = 0.0;
  double filter_scalar_equiv_seconds = 0.0;

  /// Largest counter rel_error — zero when the physics matched exactly.
  double MaxCountError() const;

  std::string ToText() const;
  std::string ToJson() const;
};

/// Assembles the report from already-collected pieces (used by benches
/// and by RunModelComparison below). Cache-aware: picks the Uncached,
/// Cold or Warm projection of `physics` to compare against based on the
/// measured hit/miss counters.
ModelComparison BuildModelComparison(const ScanPhysics& physics,
                                     const ExecCounters& measured,
                                     const QueryTrace& trace,
                                     const ModeledTiming& timing,
                                     double measured_wall_seconds,
                                     const HardwareConfig& hw);

/// What RunModelComparison hands back.
struct ModelComparisonRun {
  ExecutionResult exec;
  ExecCounters counters;
  ModelComparison comparison;
  std::string trace_text;  ///< rendered span tree of the traced run
  std::string trace_json;
};

/// Runs `spec` over `table` once with tracing on, predicts the same scan
/// with PredictScanPhysics and the Section 5 timing model, and returns
/// the merged report. Full-table ranges only (the physics predictor's
/// restriction).
Result<ModelComparisonRun> RunModelComparison(
    const OpenTable& table, const ScanSpec& spec, IoBackend* backend,
    const HardwareConfig& hw, ScannerImpl impl = ScannerImpl::kAuto,
    const ScanPhysicsHints& hints = ScanPhysicsHints{});

}  // namespace rodb::obs

#endif  // RODB_OBS_MODEL_COMPARISON_H_
