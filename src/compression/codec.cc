#include "compression/codec.h"

#include "common/macros.h"
#include "compression/codecs_internal.h"
#include "compression/dictionary.h"

namespace rodb {

uint32_t AttributeCodec::DecodeCode(BitReader* reader) {
  (void)reader;
  // A codec claiming SupportsCodeDecoding() must override this; silently
  // skipping bits and returning code 0 would feed garbage codes into
  // compressed evaluation.
  RODB_CHECK(false && "DecodeCode called on a codec without code support");
  return 0;
}

uint32_t AttributeCodec::DecodeScanKey(BitReader* reader) {
  (void)reader;
  // Reachable only if a codec returns true from BindPredicate without
  // overriding the scan-key decode: a codec bug, not a data error.
  RODB_CHECK(false && "DecodeScanKey called on a codec without kernels");
  return 0;
}

void AttributeCodec::DecodeBatch(BitReader* reader, size_t n, uint8_t* out) {
  const size_t width = static_cast<size_t>(raw_width());
  for (size_t i = 0; i < n; ++i) DecodeValue(reader, out + i * width);
}

bool AttributeCodec::BindPredicate(CompareOp op, const uint8_t* operand,
                                   size_t operand_len, bool is_text,
                                   kernels::PackedPredicate* out) const {
  (void)op;
  (void)operand;
  (void)operand_len;
  (void)is_text;
  (void)out;
  return false;
}

void AttributeCodec::ScanBatch(BitReader* reader, size_t n,
                               const kernels::PackedPredicate& pred,
                               kernels::BitVector* sel, size_t base) {
  // Scalar reference: one key at a time through the scalar oracle. The
  // concrete codecs override this with the word-at-a-time kernels; this
  // default is what the equivalence tests diff them against.
  uint64_t* words = sel->words() + base / 64;
  for (size_t done = 0; done < n; done += 64) {
    const size_t count = n - done < 64 ? n - done : 64;
    uint64_t word = 0;
    for (size_t i = 0; i < count; ++i) {
      word |= static_cast<uint64_t>(pred.Matches(DecodeScanKey(reader))) << i;
    }
    words[done / 64] = word;
  }
}

std::string_view CompressionKindName(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kBitPack:
      return "pack";
    case CompressionKind::kDict:
      return "dict";
    case CompressionKind::kFor:
      return "for";
    case CompressionKind::kForDelta:
      return "delta";
    case CompressionKind::kCharPack:
      return "charpack";
  }
  return "unknown";
}

Result<std::unique_ptr<AttributeCodec>> MakeCodec(const CodecSpec& spec,
                                                  int raw_width,
                                                  Dictionary* dict) {
  using namespace rodb::internal;  // NOLINT(build/namespaces)
  if (raw_width <= 0) {
    return Status::InvalidArgument("codec raw_width must be positive");
  }
  switch (spec.kind) {
    case CompressionKind::kNone:
      return std::unique_ptr<AttributeCodec>(new NoneCodec(raw_width));
    case CompressionKind::kBitPack:
      if (raw_width != 4) {
        return Status::InvalidArgument("bit packing applies to int32 only");
      }
      if (spec.bits < 1 || spec.bits > 32) {
        return Status::InvalidArgument("bit pack width must be in [1,32]");
      }
      return std::unique_ptr<AttributeCodec>(new BitPackCodec(spec.bits));
    case CompressionKind::kDict:
      if (dict == nullptr) {
        return Status::InvalidArgument("dictionary codec requires a dict");
      }
      if (dict->value_width() != raw_width) {
        return Status::InvalidArgument("dictionary width mismatch");
      }
      if (spec.bits < 1 || spec.bits > 32) {
        return Status::InvalidArgument("dict code width must be in [1,32]");
      }
      return std::unique_ptr<AttributeCodec>(
          new DictCodec(spec.bits, raw_width, dict));
    case CompressionKind::kFor:
      if (raw_width != 4) {
        return Status::InvalidArgument("FOR applies to int32 only");
      }
      if (spec.bits < 1 || spec.bits > 32) {
        return Status::InvalidArgument("FOR width must be in [1,32]");
      }
      return std::unique_ptr<AttributeCodec>(new ForCodec(spec.bits));
    case CompressionKind::kForDelta:
      if (raw_width != 4) {
        return Status::InvalidArgument("FOR-delta applies to int32 only");
      }
      if (spec.bits < 1 || spec.bits > 32) {
        return Status::InvalidArgument("FOR-delta width must be in [1,32]");
      }
      return std::unique_ptr<AttributeCodec>(new ForDeltaCodec(spec.bits));
    case CompressionKind::kCharPack: {
      if (spec.bits < 1 || spec.bits > 8) {
        return Status::InvalidArgument("charpack bits must be in [1,8]");
      }
      if (spec.char_count < 1 || spec.char_count > raw_width) {
        return Status::InvalidArgument(
            "charpack char_count must be in [1, raw_width]");
      }
      return std::unique_ptr<AttributeCodec>(
          new CharPackCodec(spec.bits, spec.char_count, raw_width));
    }
  }
  return Status::InvalidArgument("unknown compression kind");
}

}  // namespace rodb
