#include "compression/codec.h"

#include "compression/codecs_internal.h"
#include "compression/dictionary.h"

namespace rodb {

std::string_view CompressionKindName(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kBitPack:
      return "pack";
    case CompressionKind::kDict:
      return "dict";
    case CompressionKind::kFor:
      return "for";
    case CompressionKind::kForDelta:
      return "delta";
    case CompressionKind::kCharPack:
      return "charpack";
  }
  return "unknown";
}

Result<std::unique_ptr<AttributeCodec>> MakeCodec(const CodecSpec& spec,
                                                  int raw_width,
                                                  Dictionary* dict) {
  using namespace rodb::internal;  // NOLINT(build/namespaces)
  if (raw_width <= 0) {
    return Status::InvalidArgument("codec raw_width must be positive");
  }
  switch (spec.kind) {
    case CompressionKind::kNone:
      return std::unique_ptr<AttributeCodec>(new NoneCodec(raw_width));
    case CompressionKind::kBitPack:
      if (raw_width != 4) {
        return Status::InvalidArgument("bit packing applies to int32 only");
      }
      if (spec.bits < 1 || spec.bits > 32) {
        return Status::InvalidArgument("bit pack width must be in [1,32]");
      }
      return std::unique_ptr<AttributeCodec>(new BitPackCodec(spec.bits));
    case CompressionKind::kDict:
      if (dict == nullptr) {
        return Status::InvalidArgument("dictionary codec requires a dict");
      }
      if (dict->value_width() != raw_width) {
        return Status::InvalidArgument("dictionary width mismatch");
      }
      if (spec.bits < 1 || spec.bits > 32) {
        return Status::InvalidArgument("dict code width must be in [1,32]");
      }
      return std::unique_ptr<AttributeCodec>(
          new DictCodec(spec.bits, raw_width, dict));
    case CompressionKind::kFor:
      if (raw_width != 4) {
        return Status::InvalidArgument("FOR applies to int32 only");
      }
      if (spec.bits < 1 || spec.bits > 32) {
        return Status::InvalidArgument("FOR width must be in [1,32]");
      }
      return std::unique_ptr<AttributeCodec>(new ForCodec(spec.bits));
    case CompressionKind::kForDelta:
      if (raw_width != 4) {
        return Status::InvalidArgument("FOR-delta applies to int32 only");
      }
      if (spec.bits < 1 || spec.bits > 32) {
        return Status::InvalidArgument("FOR-delta width must be in [1,32]");
      }
      return std::unique_ptr<AttributeCodec>(new ForDeltaCodec(spec.bits));
    case CompressionKind::kCharPack: {
      if (spec.bits < 1 || spec.bits > 8) {
        return Status::InvalidArgument("charpack bits must be in [1,8]");
      }
      if (spec.char_count < 1 || spec.char_count > raw_width) {
        return Status::InvalidArgument(
            "charpack char_count must be in [1, raw_width]");
      }
      return std::unique_ptr<AttributeCodec>(
          new CharPackCodec(spec.bits, spec.char_count, raw_width));
    }
  }
  return Status::InvalidArgument("unknown compression kind");
}

}  // namespace rodb
