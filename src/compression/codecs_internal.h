#ifndef RODB_COMPRESSION_CODECS_INTERNAL_H_
#define RODB_COMPRESSION_CODECS_INTERNAL_H_

// Concrete codec implementations. Internal to the compression library;
// clients construct codecs through MakeCodec() in codec.h.

#include <string>

#include "compression/codec.h"
#include "compression/dictionary.h"

namespace rodb::internal {

/// Predicate::Eval's comparison table, replicated for code-domain bitmap
/// building (the compression layer cannot depend on engine/Predicate, but
/// the bitmap must reproduce its semantics bit-for-bit).
inline bool EvalCompare(CompareOp op, bool lt, bool eq) {
  switch (op) {
    case CompareOp::kEq: return eq;
    case CompareOp::kNe: return !eq;
    case CompareOp::kLt: return lt;
    case CompareOp::kLe: return lt || eq;
    case CompareOp::kGt: return !lt && !eq;
    case CompareOp::kGe: return !lt;
  }
  return false;
}

/// Largest key representable in `bits` packed bits.
inline uint32_t CodeDomainMax(int bits) {
  return bits >= 32 ? 0xFFFFFFFFu : (uint32_t{1} << bits) - 1;
}

/// Identity codec: raw fixed-width bytes.
class NoneCodec final : public AttributeCodec {
 public:
  explicit NoneCodec(int raw_width) : raw_width_(raw_width) {}
  CompressionKind kind() const override { return CompressionKind::kNone; }
  int encoded_bits() const override { return raw_width_ * 8; }
  int raw_width() const override { return raw_width_; }
  bool EncodeValue(const uint8_t* raw, BitWriter* writer) override;
  void DecodeValue(BitReader* reader, uint8_t* out) override;
  void DecodeBatch(BitReader* reader, size_t n, uint8_t* out) override;
  /// int32 attributes only: key = raw little-endian word, sign-flipped by
  /// the predicate's xor_mask to order signed values.
  bool BindPredicate(CompareOp op, const uint8_t* operand, size_t operand_len,
                     bool is_text,
                     kernels::PackedPredicate* out) const override;
  void ScanBatch(BitReader* reader, size_t n,
                 const kernels::PackedPredicate& pred,
                 kernels::BitVector* sel, size_t base) override;

 protected:
  uint32_t DecodeScanKey(BitReader* reader) override;

 private:
  int raw_width_;
};

/// Null suppression: stores each int32 in `bits` bits (values must fit).
class BitPackCodec final : public AttributeCodec {
 public:
  explicit BitPackCodec(int bits) : bits_(bits) {}
  CompressionKind kind() const override { return CompressionKind::kBitPack; }
  int encoded_bits() const override { return bits_; }
  int raw_width() const override { return 4; }
  bool EncodeValue(const uint8_t* raw, BitWriter* writer) override;
  void DecodeValue(BitReader* reader, uint8_t* out) override;
  void DecodeBatch(BitReader* reader, size_t n, uint8_t* out) override;
  /// Key = the packed code itself (encoded values are non-negative).
  bool BindPredicate(CompareOp op, const uint8_t* operand, size_t operand_len,
                     bool is_text,
                     kernels::PackedPredicate* out) const override;
  void ScanBatch(BitReader* reader, size_t n,
                 const kernels::PackedPredicate& pred,
                 kernels::BitVector* sel, size_t base) override;

 protected:
  uint32_t DecodeScanKey(BitReader* reader) override;

 private:
  int bits_;
};

/// Dictionary codes bit-packed on top (the paper applies Bit packing on
/// top of Dictionary). Encoding inserts unseen values while loading.
class DictCodec final : public AttributeCodec {
 public:
  DictCodec(int bits, int raw_width, Dictionary* dict)
      : bits_(bits), raw_width_(raw_width), dict_(dict) {}
  CompressionKind kind() const override { return CompressionKind::kDict; }
  int encoded_bits() const override { return bits_; }
  int raw_width() const override { return raw_width_; }
  bool EncodeValue(const uint8_t* raw, BitWriter* writer) override;
  void DecodeValue(BitReader* reader, uint8_t* out) override;
  bool SupportsCodeDecoding() const override { return true; }
  uint32_t DecodeCode(BitReader* reader) override {
    return static_cast<uint32_t>(reader->Get(bits_));
  }
  void DecodeBatch(BitReader* reader, size_t n, uint8_t* out) override;
  /// Rewrites ANY comparison -- ordered and prefix included -- into a
  /// per-code match bitmap by evaluating the predicate once per
  /// dictionary entry, so filtering never materializes values.
  bool BindPredicate(CompareOp op, const uint8_t* operand, size_t operand_len,
                     bool is_text,
                     kernels::PackedPredicate* out) const override;
  void ScanBatch(BitReader* reader, size_t n,
                 const kernels::PackedPredicate& pred,
                 kernels::BitVector* sel, size_t base) override;

 protected:
  uint32_t DecodeScanKey(BitReader* reader) override;

 private:
  int bits_;
  int raw_width_;
  Dictionary* dict_;
};

/// Frame-of-reference: per-page base (the first value of the page),
/// non-negative differences from the base in `bits` bits.
class ForCodec final : public AttributeCodec {
 public:
  explicit ForCodec(int bits) : bits_(bits) {}
  CompressionKind kind() const override { return CompressionKind::kFor; }
  int encoded_bits() const override { return bits_; }
  int raw_width() const override { return 4; }
  void BeginPage() override;
  bool EncodeValue(const uint8_t* raw, BitWriter* writer) override;
  void FinishPage(CodecPageMeta* meta) override;
  void BeginDecode(const CodecPageMeta& meta) override;
  void DecodeValue(BitReader* reader, uint8_t* out) override;
  void DecodeBatch(BitReader* reader, size_t n, uint8_t* out) override;
  /// Key = the stored diff; the operand shifts by the page base, so the
  /// binding is per page (re-bind after BeginDecode).
  bool BindPredicate(CompareOp op, const uint8_t* operand, size_t operand_len,
                     bool is_text,
                     kernels::PackedPredicate* out) const override;
  void ScanBatch(BitReader* reader, size_t n,
                 const kernels::PackedPredicate& pred,
                 kernels::BitVector* sel, size_t base) override;

 protected:
  uint32_t DecodeScanKey(BitReader* reader) override;

 private:
  int bits_;
  bool have_base_ = false;
  int64_t base_ = 0;
};

/// FOR-delta: per-page base, zig-zag difference from the *previous* value.
/// Random access requires decoding the page prefix, which is why SkipValue
/// still performs the arithmetic.
class ForDeltaCodec final : public AttributeCodec {
 public:
  explicit ForDeltaCodec(int bits) : bits_(bits) {}
  CompressionKind kind() const override { return CompressionKind::kForDelta; }
  int encoded_bits() const override { return bits_; }
  int raw_width() const override { return 4; }
  void BeginPage() override;
  bool EncodeValue(const uint8_t* raw, BitWriter* writer) override;
  void FinishPage(CodecPageMeta* meta) override;
  void BeginDecode(const CodecPageMeta& meta) override;
  void DecodeValue(BitReader* reader, uint8_t* out) override;
  void SkipValue(BitReader* reader) override;
  /// Batch-unpacks the zig-zag codes word-at-a-time, then runs the
  /// (inherently sequential) prefix sum over plain integers.
  void DecodeBatch(BitReader* reader, size_t n, uint8_t* out) override;
  /// Key = the decoded int32 value (sign-flipped via xor_mask): FOR-delta
  /// cannot compare without decoding, but the compare itself vectorizes
  /// over the decoded batch.
  bool BindPredicate(CompareOp op, const uint8_t* operand, size_t operand_len,
                     bool is_text,
                     kernels::PackedPredicate* out) const override;
  void ScanBatch(BitReader* reader, size_t n,
                 const kernels::PackedPredicate& pred,
                 kernels::BitVector* sel, size_t base) override;

 protected:
  uint32_t DecodeScanKey(BitReader* reader) override;

 private:
  int bits_;
  bool have_base_ = false;
  int64_t base_ = 0;
  int64_t prev_encode_ = 0;
  int64_t prev_decode_ = 0;
};

/// Packs text drawn from a small alphabet at `bits`-per-character,
/// `char_count` characters per value (LINEITEM's "L_COMMENT pack, 28
/// bytes": 56 characters x 4 bits). Characters beyond char_count must be
/// padding (kPadChar) and are restored on decode.
class CharPackCodec final : public AttributeCodec {
 public:
  static constexpr char kPadChar = ' ';
  /// 16-symbol alphabet; index 0 is the pad character.
  static const std::string& Alphabet();

  CharPackCodec(int bits_per_char, int char_count, int raw_width)
      : bits_(bits_per_char), char_count_(char_count), raw_width_(raw_width) {}
  CompressionKind kind() const override { return CompressionKind::kCharPack; }
  int encoded_bits() const override { return bits_ * char_count_; }
  int raw_width() const override { return raw_width_; }
  bool EncodeValue(const uint8_t* raw, BitWriter* writer) override;
  void DecodeValue(BitReader* reader, uint8_t* out) override;

 private:
  int bits_;
  int char_count_;
  int raw_width_;
};

}  // namespace rodb::internal

#endif  // RODB_COMPRESSION_CODECS_INTERNAL_H_
