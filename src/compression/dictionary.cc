#include "compression/dictionary.h"

#include <cstring>

#include "common/bytes.h"

namespace rodb {

Result<uint32_t> Dictionary::EncodeOrInsert(const uint8_t* value,
                                            int max_bits) {
  std::string key(reinterpret_cast<const char*>(value),
                  static_cast<size_t>(value_width_));
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const uint64_t capacity = max_bits >= 32 ? UINT32_MAX
                                           : (uint64_t{1} << max_bits);
  if (size() >= capacity) {
    return Status::ResourceExhausted(
        "dictionary overflow: more distinct values than fit in " +
        std::to_string(max_bits) + " bits");
  }
  uint32_t code = size();
  entries_.insert(entries_.end(), value, value + value_width_);
  index_.emplace(std::move(key), code);
  return code;
}

Result<uint32_t> Dictionary::Encode(const uint8_t* value) const {
  std::string key(reinterpret_cast<const char*>(value),
                  static_cast<size_t>(value_width_));
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("value not in dictionary");
  return it->second;
}

void Dictionary::AppendTo(std::string* out) const {
  char header[8];
  StoreLE32(header, static_cast<uint32_t>(value_width_));
  StoreLE32(header + 4, size());
  out->append(header, sizeof(header));
  out->append(reinterpret_cast<const char*>(entries_.data()), entries_.size());
}

Result<Dictionary> Dictionary::ParseFrom(std::string_view data,
                                         size_t* offset) {
  if (*offset + 8 > data.size()) {
    return Status::Corruption("dictionary header truncated");
  }
  const uint32_t width = LoadLE32(data.data() + *offset);
  const uint32_t count = LoadLE32(data.data() + *offset + 4);
  *offset += 8;
  if (width == 0 || width > 1 << 20) {
    return Status::Corruption("bad dictionary value width");
  }
  const size_t bytes = static_cast<size_t>(width) * count;
  if (*offset + bytes > data.size()) {
    return Status::Corruption("dictionary entries truncated");
  }
  Dictionary dict(static_cast<int>(width));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data()) + *offset;
  for (uint32_t i = 0; i < count; ++i) {
    auto code = dict.EncodeOrInsert(p + static_cast<size_t>(i) * width, 32);
    if (!code.ok()) return code.status();
  }
  *offset += bytes;
  return dict;
}

}  // namespace rodb
