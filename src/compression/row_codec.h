#ifndef RODB_COMPRESSION_ROW_CODEC_H_
#define RODB_COMPRESSION_ROW_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/bitio.h"
#include "compression/codec.h"

namespace rodb {

/// Encodes/decodes whole row tuples as the bit-concatenation of their
/// attributes' compressed fields (Section 2.2.1: "we use bit-shifting
/// instructions to pack compressed values inside a page").
///
/// Every tuple occupies a fixed number of bytes: the summed bit widths
/// rounded up to a whole byte, then padded to 2-byte alignment. This is
/// how the paper arrives at LINEITEM-Z = 52 bytes (408 bits -> 51 -> 52)
/// and ORDERS-Z = 12 bytes (92 bits -> 12).
class RowCodec {
 public:
  /// `codecs` are per-attribute codecs in schema order; not owned and must
  /// outlive the RowCodec.
  explicit RowCodec(std::vector<AttributeCodec*> codecs);

  /// Sum of attribute bit widths (before per-tuple alignment).
  int tuple_bits() const { return tuple_bits_; }
  /// Fixed on-page bytes per encoded tuple.
  int encoded_tuple_bytes() const { return encoded_tuple_bytes_; }
  /// Bytes per decoded (raw, unpadded) tuple.
  int raw_tuple_bytes() const { return raw_tuple_bytes_; }
  size_t num_attributes() const { return codecs_.size(); }
  /// Number of per-page base values this schema stores in page trailers.
  int page_meta_count() const { return page_meta_count_; }

  /// Resets all per-page codec state. Call before the first tuple of each
  /// page (both when encoding and when decoding).
  void BeginPage();

  /// Appends one tuple (raw attribute bytes laid out back to back at their
  /// raw widths). Returns false on overflow or unencodable value; the
  /// writer position is unspecified afterwards, so callers must retry on a
  /// fresh page or fail the load.
  bool EncodeTuple(const uint8_t* raw_tuple, BitWriter* writer);

  /// Collects per-page codec state (FOR / FOR-delta bases), in attribute
  /// order, one entry per meta-carrying attribute.
  void FinishPage(std::vector<CodecPageMeta>* metas);

  /// Primes decoders with the page's metas (same order as FinishPage).
  void BeginDecode(const std::vector<CodecPageMeta>& metas);

  /// Decodes the next tuple into `out` (raw_tuple_bytes() bytes).
  void DecodeTuple(BitReader* reader, uint8_t* out);

  /// Byte offset of attribute `i` within a decoded raw tuple.
  int raw_offset(size_t i) const { return raw_offsets_[i]; }

 private:
  std::vector<AttributeCodec*> codecs_;
  std::vector<int> raw_offsets_;
  int tuple_bits_;
  int encoded_tuple_bytes_;
  int raw_tuple_bytes_;
  int page_meta_count_;
};

}  // namespace rodb

#endif  // RODB_COMPRESSION_ROW_CODEC_H_
