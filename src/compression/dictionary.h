#ifndef RODB_COMPRESSION_DICTIONARY_H_
#define RODB_COMPRESSION_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rodb {

/// Per-column dictionary for the Dictionary compression scheme: an array
/// of the column's distinct fixed-width values; each stored attribute is
/// the bit-packed index into this array (Section 2.2.1).
///
/// Built while loading data ("when loading data we first create an array
/// with all the distinct values"); at read time decoding is a bounds-
/// checked array lookup.
class Dictionary {
 public:
  explicit Dictionary(int value_width) : value_width_(value_width) {}

  /// Returns the code for `value` (value_width bytes), inserting it if new.
  /// Fails with ResourceExhausted once codes no longer fit `max_bits`.
  Result<uint32_t> EncodeOrInsert(const uint8_t* value, int max_bits);

  /// Returns the code for an existing value, or NotFound.
  Result<uint32_t> Encode(const uint8_t* value) const;

  /// Pointer to the value_width-byte entry for `code` (nullptr if out of
  /// range).
  const uint8_t* Decode(uint32_t code) const {
    if (code >= size()) return nullptr;
    return entries_.data() + static_cast<size_t>(code) * value_width_;
  }

  uint32_t size() const {
    return static_cast<uint32_t>(entries_.size() /
                                 static_cast<size_t>(value_width_));
  }
  int value_width() const { return value_width_; }

  /// Serialization for the table's dictionary sidecar file.
  void AppendTo(std::string* out) const;
  static Result<Dictionary> ParseFrom(std::string_view data, size_t* offset);

 private:
  int value_width_;
  std::vector<uint8_t> entries_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace rodb

#endif  // RODB_COMPRESSION_DICTIONARY_H_
