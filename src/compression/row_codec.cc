#include "compression/row_codec.h"

#include "common/bytes.h"
#include "common/macros.h"

namespace rodb {

RowCodec::RowCodec(std::vector<AttributeCodec*> codecs)
    : codecs_(std::move(codecs)) {
  tuple_bits_ = 0;
  raw_tuple_bytes_ = 0;
  page_meta_count_ = 0;
  raw_offsets_.reserve(codecs_.size());
  for (AttributeCodec* codec : codecs_) {
    RODB_CHECK(codec != nullptr);
    raw_offsets_.push_back(raw_tuple_bytes_);
    tuple_bits_ += codec->encoded_bits();
    raw_tuple_bytes_ += codec->raw_width();
    if (CodecNeedsPageMeta(codec->kind())) ++page_meta_count_;
  }
  // Whole bytes, then 2-byte alignment (see class comment).
  encoded_tuple_bytes_ =
      static_cast<int>(RoundUp(RoundUp(tuple_bits_, 8) / 8, 2));
}

void RowCodec::BeginPage() {
  for (AttributeCodec* codec : codecs_) codec->BeginPage();
}

bool RowCodec::EncodeTuple(const uint8_t* raw_tuple, BitWriter* writer) {
  const size_t start = writer->bit_pos();
  const size_t end = start + static_cast<size_t>(encoded_tuple_bytes_) * 8;
  if (end > writer->capacity_bits()) return false;
  for (size_t i = 0; i < codecs_.size(); ++i) {
    if (!codecs_[i]->EncodeValue(raw_tuple + raw_offsets_[i], writer)) {
      return false;
    }
  }
  // Pad to the fixed per-tuple byte width.
  while (writer->bit_pos() < end) {
    const size_t gap = end - writer->bit_pos();
    if (!writer->Put(0, static_cast<int>(gap > 64 ? 64 : gap))) return false;
  }
  return true;
}

void RowCodec::FinishPage(std::vector<CodecPageMeta>* metas) {
  metas->clear();
  for (AttributeCodec* codec : codecs_) {
    if (CodecNeedsPageMeta(codec->kind())) {
      CodecPageMeta meta;
      codec->FinishPage(&meta);
      metas->push_back(meta);
    }
  }
}

void RowCodec::BeginDecode(const std::vector<CodecPageMeta>& metas) {
  RODB_CHECK(metas.size() == static_cast<size_t>(page_meta_count_));
  size_t mi = 0;
  for (AttributeCodec* codec : codecs_) {
    if (CodecNeedsPageMeta(codec->kind())) {
      codec->BeginDecode(metas[mi++]);
    } else {
      codec->BeginDecode(CodecPageMeta{});
    }
  }
}

void RowCodec::DecodeTuple(BitReader* reader, uint8_t* out) {
  const size_t start = reader->bit_pos();
  for (size_t i = 0; i < codecs_.size(); ++i) {
    codecs_[i]->DecodeValue(reader, out + raw_offsets_[i]);
  }
  reader->SeekToBit(start + static_cast<size_t>(encoded_tuple_bytes_) * 8);
}

}  // namespace rodb
