#include "common/bytes.h"
#include "compression/codecs_internal.h"

namespace rodb::internal {

// --- ForCodec ---

void ForCodec::BeginPage() {
  have_base_ = false;
  base_ = 0;
}

bool ForCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  const int64_t v = LoadLE32s(raw);
  if (!have_base_) {
    // The first value of the page becomes the base; it is stored as a
    // zero difference plus the trailer meta.
    base_ = v;
    have_base_ = true;
  }
  const int64_t diff = v - base_;
  if (diff < 0) return false;
  if (bits_ < 63 && diff >= (int64_t{1} << bits_)) return false;
  return writer->Put(static_cast<uint64_t>(diff), bits_);
}

void ForCodec::FinishPage(CodecPageMeta* meta) { meta->base = base_; }

void ForCodec::BeginDecode(const CodecPageMeta& meta) { base_ = meta.base; }

void ForCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  const int64_t diff = static_cast<int64_t>(reader->Get(bits_));
  StoreLE32s(out, static_cast<int32_t>(base_ + diff));
}

// --- ForDeltaCodec ---

void ForDeltaCodec::BeginPage() {
  have_base_ = false;
  base_ = 0;
  prev_encode_ = 0;
}

bool ForDeltaCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  const int64_t v = LoadLE32s(raw);
  if (!have_base_) {
    base_ = v;
    have_base_ = true;
    prev_encode_ = v;
    // First value is the base itself: stored as zig-zag(0) = 0.
    return writer->Put(0, bits_);
  }
  const uint64_t zz = ZigZagEncode(v - prev_encode_);
  if (bits_ < 64 && zz >= (uint64_t{1} << bits_)) return false;
  if (!writer->Put(zz, bits_)) return false;
  prev_encode_ = v;
  return true;
}

void ForDeltaCodec::FinishPage(CodecPageMeta* meta) { meta->base = base_; }

void ForDeltaCodec::BeginDecode(const CodecPageMeta& meta) {
  base_ = meta.base;
  prev_decode_ = meta.base;
}

void ForDeltaCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  const int64_t delta = ZigZagDecode(reader->Get(bits_));
  prev_decode_ += delta;
  StoreLE32s(out, static_cast<int32_t>(prev_decode_));
}

void ForDeltaCodec::SkipValue(BitReader* reader) {
  // Cannot skip: the running value must be maintained (Section 4.4).
  const int64_t delta = ZigZagDecode(reader->Get(bits_));
  prev_decode_ += delta;
}

}  // namespace rodb::internal
