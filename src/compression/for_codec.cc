#include "common/bytes.h"
#include "compression/codecs_internal.h"

namespace rodb::internal {

// --- ForCodec ---

void ForCodec::BeginPage() {
  have_base_ = false;
  base_ = 0;
}

bool ForCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  const int64_t v = LoadLE32s(raw);
  if (!have_base_) {
    // The first value of the page becomes the base; it is stored as a
    // zero difference plus the trailer meta.
    base_ = v;
    have_base_ = true;
  }
  const int64_t diff = v - base_;
  if (diff < 0) return false;
  if (bits_ < 63 && diff >= (int64_t{1} << bits_)) return false;
  return writer->Put(static_cast<uint64_t>(diff), bits_);
}

void ForCodec::FinishPage(CodecPageMeta* meta) { meta->base = base_; }

void ForCodec::BeginDecode(const CodecPageMeta& meta) { base_ = meta.base; }

void ForCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  const int64_t diff = static_cast<int64_t>(reader->Get(bits_));
  StoreLE32s(out, static_cast<int32_t>(base_ + diff));
}

void ForCodec::DecodeBatch(BitReader* reader, size_t n, uint8_t* out) {
  uint32_t diffs[256];
  size_t done = 0;
  while (done < n) {
    const size_t chunk = n - done < 256 ? n - done : 256;
    kernels::UnpackBits(reader->data(), reader->size_bits(),
                        reader->bit_pos(), bits_, chunk, diffs);
    reader->Skip(chunk * static_cast<size_t>(bits_));
    for (size_t i = 0; i < chunk; ++i) {
      StoreLE32s(out + (done + i) * 4,
                 static_cast<int32_t>(base_ + static_cast<int64_t>(diffs[i])));
    }
    done += chunk;
  }
}

bool ForCodec::BindPredicate(CompareOp op, const uint8_t* operand,
                             size_t operand_len, bool is_text,
                             kernels::PackedPredicate* out) const {
  if (is_text || operand_len != 4) return false;
  // Key = the stored non-negative diff; value order equals diff order
  // within a page, so the operand shifts by the page base. Values below
  // the base (key < 0) or past the diff domain clamp inside Range().
  const int64_t key = static_cast<int64_t>(LoadLE32s(operand)) - base_;
  *out = kernels::PackedPredicate::Range(op, key, CodeDomainMax(bits_), 0);
  return true;
}

void ForCodec::ScanBatch(BitReader* reader, size_t n,
                         const kernels::PackedPredicate& pred,
                         kernels::BitVector* sel, size_t base) {
  kernels::ScanPacked(reader->data(), reader->size_bits(), reader->bit_pos(),
                      bits_, n, pred, sel, base);
  reader->Skip(n * static_cast<size_t>(bits_));
}

uint32_t ForCodec::DecodeScanKey(BitReader* reader) {
  return static_cast<uint32_t>(reader->Get(bits_));
}

// --- ForDeltaCodec ---

void ForDeltaCodec::BeginPage() {
  have_base_ = false;
  base_ = 0;
  prev_encode_ = 0;
}

bool ForDeltaCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  const int64_t v = LoadLE32s(raw);
  if (!have_base_) {
    base_ = v;
    have_base_ = true;
    prev_encode_ = v;
    // First value is the base itself: stored as zig-zag(0) = 0.
    return writer->Put(0, bits_);
  }
  const uint64_t zz = ZigZagEncode(v - prev_encode_);
  if (bits_ < 64 && zz >= (uint64_t{1} << bits_)) return false;
  if (!writer->Put(zz, bits_)) return false;
  prev_encode_ = v;
  return true;
}

void ForDeltaCodec::FinishPage(CodecPageMeta* meta) { meta->base = base_; }

void ForDeltaCodec::BeginDecode(const CodecPageMeta& meta) {
  base_ = meta.base;
  prev_decode_ = meta.base;
}

void ForDeltaCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  const int64_t delta = ZigZagDecode(reader->Get(bits_));
  prev_decode_ += delta;
  StoreLE32s(out, static_cast<int32_t>(prev_decode_));
}

void ForDeltaCodec::SkipValue(BitReader* reader) {
  // Cannot skip: the running value must be maintained (Section 4.4).
  const int64_t delta = ZigZagDecode(reader->Get(bits_));
  prev_decode_ += delta;
}

void ForDeltaCodec::DecodeBatch(BitReader* reader, size_t n, uint8_t* out) {
  uint32_t zz[256];
  size_t done = 0;
  while (done < n) {
    const size_t chunk = n - done < 256 ? n - done : 256;
    kernels::UnpackBits(reader->data(), reader->size_bits(),
                        reader->bit_pos(), bits_, chunk, zz);
    reader->Skip(chunk * static_cast<size_t>(bits_));
    for (size_t i = 0; i < chunk; ++i) {
      prev_decode_ += ZigZagDecode(zz[i]);
      StoreLE32s(out + (done + i) * 4, static_cast<int32_t>(prev_decode_));
    }
    done += chunk;
  }
}

bool ForDeltaCodec::BindPredicate(CompareOp op, const uint8_t* operand,
                                  size_t operand_len, bool is_text,
                                  kernels::PackedPredicate* out) const {
  if (is_text || operand_len != 4) return false;
  // Key = the decoded int32 value, sign-flipped into unsigned order.
  const uint32_t key =
      static_cast<uint32_t>(LoadLE32s(operand)) ^ 0x80000000u;
  *out = kernels::PackedPredicate::Range(op, static_cast<int64_t>(key),
                                         0xFFFFFFFFu, 0x80000000u);
  return true;
}

void ForDeltaCodec::ScanBatch(BitReader* reader, size_t n,
                              const kernels::PackedPredicate& pred,
                              kernels::BitVector* sel, size_t base) {
  // Decode is mandatory (prefix sum), but the compare over the decoded
  // keys still vectorizes.
  uint32_t zz[256];
  uint32_t keys[256];
  size_t done = 0;
  while (done < n) {
    const size_t chunk = n - done < 256 ? n - done : 256;
    kernels::UnpackBits(reader->data(), reader->size_bits(),
                        reader->bit_pos(), bits_, chunk, zz);
    reader->Skip(chunk * static_cast<size_t>(bits_));
    for (size_t i = 0; i < chunk; ++i) {
      prev_decode_ += ZigZagDecode(zz[i]);
      keys[i] = static_cast<uint32_t>(static_cast<int32_t>(prev_decode_));
    }
    kernels::ScanKeys(keys, chunk, pred, sel, base + done);
    done += chunk;
  }
}

uint32_t ForDeltaCodec::DecodeScanKey(BitReader* reader) {
  prev_decode_ += ZigZagDecode(reader->Get(bits_));
  return static_cast<uint32_t>(static_cast<int32_t>(prev_decode_));
}

}  // namespace rodb::internal
