#include <cstring>

#include "common/bytes.h"
#include "compression/codecs_internal.h"

namespace rodb::internal {

// --- NoneCodec ---

bool NoneCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  if ((writer->bit_pos() & 7) == 0) {
    return writer->PutBytes(raw, static_cast<size_t>(raw_width_));
  }
  // Bit-misaligned inside a compressed row tuple: emit byte by byte.
  for (int i = 0; i < raw_width_; ++i) {
    if (!writer->Put(raw[i], 8)) return false;
  }
  return true;
}

void NoneCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  if ((reader->bit_pos() & 7) == 0) {
    reader->GetBytes(out, static_cast<size_t>(raw_width_));
    return;
  }
  for (int i = 0; i < raw_width_; ++i) {
    out[i] = static_cast<uint8_t>(reader->Get(8));
  }
}

// --- BitPackCodec ---

bool BitPackCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  const int32_t v = LoadLE32s(raw);
  if (v < 0) return false;
  if (bits_ < 32 && static_cast<uint32_t>(v) >= (uint32_t{1} << bits_)) {
    return false;
  }
  return writer->Put(static_cast<uint64_t>(v), bits_);
}

void BitPackCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  StoreLE32s(out, static_cast<int32_t>(reader->Get(bits_)));
}

// --- DictCodec ---

bool DictCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  auto code = dict_->EncodeOrInsert(raw, bits_);
  if (!code.ok()) return false;
  return writer->Put(*code, bits_);
}

void DictCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  const uint32_t code = static_cast<uint32_t>(reader->Get(bits_));
  const uint8_t* entry = dict_->Decode(code);
  if (entry == nullptr) {
    // Corrupt page or truncated dictionary; surface as zeroed value rather
    // than undefined behaviour (validated layers report Corruption before
    // scan time).
    std::memset(out, 0, static_cast<size_t>(raw_width_));
    return;
  }
  std::memcpy(out, entry, static_cast<size_t>(raw_width_));
}

// --- CharPackCodec ---

const std::string& CharPackCodec::Alphabet() {
  // 16 symbols, pad first. The workload generator draws comment text from
  // exactly this alphabet so packing is lossless.
  static const std::string* alphabet = new std::string(" abcdefghijklmno");
  return *alphabet;
}

bool CharPackCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  const std::string& alphabet = Alphabet();
  for (int i = 0; i < char_count_; ++i) {
    const char c = static_cast<char>(raw[i]);
    const size_t idx = alphabet.find(c);
    if (idx == std::string::npos) return false;
    if (!writer->Put(idx, bits_)) return false;
  }
  // Characters past char_count_ must be padding; otherwise the value is
  // not representable under this codec.
  for (int i = char_count_; i < raw_width_; ++i) {
    if (static_cast<char>(raw[i]) != kPadChar) return false;
  }
  return true;
}

void CharPackCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  const std::string& alphabet = Alphabet();
  for (int i = 0; i < char_count_; ++i) {
    const uint64_t idx = reader->Get(bits_);
    out[i] = static_cast<uint8_t>(
        idx < alphabet.size() ? alphabet[static_cast<size_t>(idx)] : kPadChar);
  }
  std::memset(out + char_count_, kPadChar,
              static_cast<size_t>(raw_width_ - char_count_));
}

}  // namespace rodb::internal
