#include <cstring>

#include "common/bytes.h"
#include "compression/codecs_internal.h"

namespace rodb::internal {

// --- NoneCodec ---

bool NoneCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  if ((writer->bit_pos() & 7) == 0) {
    return writer->PutBytes(raw, static_cast<size_t>(raw_width_));
  }
  // Bit-misaligned inside a compressed row tuple: emit byte by byte.
  for (int i = 0; i < raw_width_; ++i) {
    if (!writer->Put(raw[i], 8)) return false;
  }
  return true;
}

void NoneCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  if ((reader->bit_pos() & 7) == 0) {
    reader->GetBytes(out, static_cast<size_t>(raw_width_));
    return;
  }
  for (int i = 0; i < raw_width_; ++i) {
    out[i] = static_cast<uint8_t>(reader->Get(8));
  }
}

void NoneCodec::DecodeBatch(BitReader* reader, size_t n, uint8_t* out) {
  if ((reader->bit_pos() & 7) == 0) {
    reader->GetBytes(out, n * static_cast<size_t>(raw_width_));
    return;
  }
  AttributeCodec::DecodeBatch(reader, n, out);
}

bool NoneCodec::BindPredicate(CompareOp op, const uint8_t* operand,
                              size_t operand_len, bool is_text,
                              kernels::PackedPredicate* out) const {
  if (is_text || raw_width_ != 4 || operand_len != 4) return false;
  // Signed int32 order over the raw stored word: flip the sign bit.
  const uint32_t key = LoadLE32(operand) ^ 0x80000000u;
  *out = kernels::PackedPredicate::Range(op, static_cast<int64_t>(key),
                                         0xFFFFFFFFu, 0x80000000u);
  return true;
}

void NoneCodec::ScanBatch(BitReader* reader, size_t n,
                          const kernels::PackedPredicate& pred,
                          kernels::BitVector* sel, size_t base) {
  kernels::ScanPacked(reader->data(), reader->size_bits(), reader->bit_pos(),
                      32, n, pred, sel, base);
  reader->Skip(n * 32);
}

uint32_t NoneCodec::DecodeScanKey(BitReader* reader) {
  return static_cast<uint32_t>(reader->Get(32));
}

// --- BitPackCodec ---

bool BitPackCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  const int32_t v = LoadLE32s(raw);
  if (v < 0) return false;
  if (bits_ < 32 && static_cast<uint32_t>(v) >= (uint32_t{1} << bits_)) {
    return false;
  }
  return writer->Put(static_cast<uint64_t>(v), bits_);
}

void BitPackCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  StoreLE32s(out, static_cast<int32_t>(reader->Get(bits_)));
}

void BitPackCodec::DecodeBatch(BitReader* reader, size_t n, uint8_t* out) {
  uint32_t tmp[256];
  size_t done = 0;
  while (done < n) {
    const size_t chunk = n - done < 256 ? n - done : 256;
    kernels::UnpackBits(reader->data(), reader->size_bits(),
                        reader->bit_pos(), bits_, chunk, tmp);
    reader->Skip(chunk * static_cast<size_t>(bits_));
    for (size_t i = 0; i < chunk; ++i) {
      StoreLE32s(out + (done + i) * 4, static_cast<int32_t>(tmp[i]));
    }
    done += chunk;
  }
}

bool BitPackCodec::BindPredicate(CompareOp op, const uint8_t* operand,
                                 size_t operand_len, bool is_text,
                                 kernels::PackedPredicate* out) const {
  if (is_text || operand_len != 4) return false;
  // Stored values are non-negative, so the packed code IS the value and
  // unsigned code order matches signed value order.
  *out = kernels::PackedPredicate::Range(
      op, static_cast<int64_t>(LoadLE32s(operand)), CodeDomainMax(bits_), 0);
  return true;
}

void BitPackCodec::ScanBatch(BitReader* reader, size_t n,
                             const kernels::PackedPredicate& pred,
                             kernels::BitVector* sel, size_t base) {
  kernels::ScanPacked(reader->data(), reader->size_bits(), reader->bit_pos(),
                      bits_, n, pred, sel, base);
  reader->Skip(n * static_cast<size_t>(bits_));
}

uint32_t BitPackCodec::DecodeScanKey(BitReader* reader) {
  return static_cast<uint32_t>(reader->Get(bits_));
}

// --- DictCodec ---

bool DictCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  auto code = dict_->EncodeOrInsert(raw, bits_);
  if (!code.ok()) return false;
  return writer->Put(*code, bits_);
}

void DictCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  const uint32_t code = static_cast<uint32_t>(reader->Get(bits_));
  const uint8_t* entry = dict_->Decode(code);
  if (entry == nullptr) {
    // Corrupt page or truncated dictionary; surface as zeroed value rather
    // than undefined behaviour (validated layers report Corruption before
    // scan time).
    std::memset(out, 0, static_cast<size_t>(raw_width_));
    return;
  }
  std::memcpy(out, entry, static_cast<size_t>(raw_width_));
}

void DictCodec::DecodeBatch(BitReader* reader, size_t n, uint8_t* out) {
  const size_t width = static_cast<size_t>(raw_width_);
  uint32_t codes[256];
  size_t done = 0;
  while (done < n) {
    const size_t chunk = n - done < 256 ? n - done : 256;
    kernels::UnpackBits(reader->data(), reader->size_bits(),
                        reader->bit_pos(), bits_, chunk, codes);
    reader->Skip(chunk * static_cast<size_t>(bits_));
    for (size_t i = 0; i < chunk; ++i) {
      uint8_t* dst = out + (done + i) * width;
      const uint8_t* entry = dict_->Decode(codes[i]);
      if (entry == nullptr) {
        std::memset(dst, 0, width);
      } else {
        std::memcpy(dst, entry, width);
      }
    }
    done += chunk;
  }
}

bool DictCodec::BindPredicate(CompareOp op, const uint8_t* operand,
                              size_t operand_len, bool is_text,
                              kernels::PackedPredicate* out) const {
  // A bitmap over the full code domain; cap the bitmap at 64Ki entries.
  if (bits_ > 16) return false;
  if (is_text) {
    if (operand_len > static_cast<size_t>(raw_width_)) return false;
  } else {
    if (operand_len != 4 || raw_width_ != 4) return false;
  }
  const uint32_t domain = CodeDomainMax(bits_) + 1;
  out->mode = kernels::PackedPredicate::Mode::kBitmap;
  out->negate = false;
  out->empty = false;
  out->bitmap_bits = domain;
  out->bitmap.assign((domain + 63) / 64, 0);
  // Codes past the dictionary decode to a zeroed value (see DecodeValue);
  // evaluating the predicate against zeros keeps the kernel bit-for-bit
  // equal to the scalar path even on corrupt pages.
  const std::vector<uint8_t> zeros(static_cast<size_t>(raw_width_), 0);
  for (uint32_t code = 0; code < domain; ++code) {
    const uint8_t* entry = dict_->Decode(code);
    if (entry == nullptr) entry = zeros.data();
    bool match;
    if (is_text) {
      const int c = std::memcmp(entry, operand, operand_len);
      match = EvalCompare(op, c < 0, c == 0);
    } else {
      const int32_t v = LoadLE32s(entry);
      const int32_t o = LoadLE32s(operand);
      match = EvalCompare(op, v < o, v == o);
    }
    if (match) out->bitmap[code / 64] |= uint64_t{1} << (code % 64);
  }
  return true;
}

void DictCodec::ScanBatch(BitReader* reader, size_t n,
                          const kernels::PackedPredicate& pred,
                          kernels::BitVector* sel, size_t base) {
  kernels::ScanPacked(reader->data(), reader->size_bits(), reader->bit_pos(),
                      bits_, n, pred, sel, base);
  reader->Skip(n * static_cast<size_t>(bits_));
}

uint32_t DictCodec::DecodeScanKey(BitReader* reader) {
  return static_cast<uint32_t>(reader->Get(bits_));
}

// --- CharPackCodec ---

const std::string& CharPackCodec::Alphabet() {
  // 16 symbols, pad first. The workload generator draws comment text from
  // exactly this alphabet so packing is lossless.
  static const std::string* alphabet = new std::string(" abcdefghijklmno");
  return *alphabet;
}

bool CharPackCodec::EncodeValue(const uint8_t* raw, BitWriter* writer) {
  const std::string& alphabet = Alphabet();
  for (int i = 0; i < char_count_; ++i) {
    const char c = static_cast<char>(raw[i]);
    const size_t idx = alphabet.find(c);
    if (idx == std::string::npos) return false;
    if (!writer->Put(idx, bits_)) return false;
  }
  // Characters past char_count_ must be padding; otherwise the value is
  // not representable under this codec.
  for (int i = char_count_; i < raw_width_; ++i) {
    if (static_cast<char>(raw[i]) != kPadChar) return false;
  }
  return true;
}

void CharPackCodec::DecodeValue(BitReader* reader, uint8_t* out) {
  const std::string& alphabet = Alphabet();
  for (int i = 0; i < char_count_; ++i) {
    const uint64_t idx = reader->Get(bits_);
    out[i] = static_cast<uint8_t>(
        idx < alphabet.size() ? alphabet[static_cast<size_t>(idx)] : kPadChar);
  }
  std::memset(out + char_count_, kPadChar,
              static_cast<size_t>(raw_width_ - char_count_));
}

}  // namespace rodb::internal
