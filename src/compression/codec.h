#ifndef RODB_COMPRESSION_CODEC_H_
#define RODB_COMPRESSION_CODEC_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/bitio.h"
#include "common/compare.h"
#include "common/result.h"
#include "common/status.h"
#include "kernels/scan_kernels.h"

namespace rodb {

class Dictionary;

/// The light-weight compression schemes of Section 2.2.1. All produce
/// fixed-length compressed values and the same compression ratio for row
/// and column data (the paper deliberately avoids column-only schemes such
/// as RLE to keep the study unbiased).
enum class CompressionKind : uint8_t {
  kNone = 0,      ///< raw fixed-width value
  kBitPack = 1,   ///< null suppression: ceil(log2(max)) bits per value
  kDict = 2,      ///< dictionary code, bit-packed on top
  kFor = 3,       ///< frame-of-reference: difference from a per-page base
  kForDelta = 4,  ///< difference from the previous value (zig-zag encoded)
  kCharPack = 5,  ///< text from a small alphabet packed at k bits/char
};

std::string_view CompressionKindName(CompressionKind kind);

/// True for schemes that store a per-page base value in the page trailer.
inline bool CodecNeedsPageMeta(CompressionKind kind) {
  return kind == CompressionKind::kFor || kind == CompressionKind::kForDelta;
}

/// Per-page codec state persisted in the page trailer (the "compression-
/// specific data" of Figure 3): the FOR / FOR-delta base value.
struct CodecPageMeta {
  int64_t base = 0;
};

/// How an attribute is compressed: the scheme plus its fixed bit width.
/// `bits` is the encoded width of one value (e.g. "dict, 3 bits",
/// "pack, 14 bits"); for kCharPack it is bits-per-character and
/// `char_count` characters are stored.
struct CodecSpec {
  CompressionKind kind = CompressionKind::kNone;
  int bits = 0;
  int char_count = 0;  ///< kCharPack only: characters stored per value

  static CodecSpec None() { return {}; }
  static CodecSpec BitPack(int bits) {
    return {CompressionKind::kBitPack, bits, 0};
  }
  static CodecSpec Dict(int bits) { return {CompressionKind::kDict, bits, 0}; }
  static CodecSpec For(int bits) { return {CompressionKind::kFor, bits, 0}; }
  static CodecSpec ForDelta(int bits) {
    return {CompressionKind::kForDelta, bits, 0};
  }
  static CodecSpec CharPack(int bits_per_char, int char_count) {
    return {CompressionKind::kCharPack, bits_per_char, char_count};
  }
};

/// Encoder/decoder for one attribute. Stateful per page (FOR bases,
/// FOR-delta running value); the engine is single-threaded per scan node,
/// exactly as in the paper's implementation.
///
/// Raw values are fixed-width byte strings (`raw_width` bytes): int32
/// attributes are 4 little-endian bytes, text attributes are space-padded.
class AttributeCodec {
 public:
  virtual ~AttributeCodec() = default;

  virtual CompressionKind kind() const = 0;
  /// Fixed number of encoded bits per value.
  virtual int encoded_bits() const = 0;
  /// Width of one decoded (raw) value in bytes.
  virtual int raw_width() const = 0;

  /// Resets per-page encoder state. Must be called before the first
  /// EncodeValue of each page.
  virtual void BeginPage() {}
  /// Appends one encoded value. Returns false if the value cannot be
  /// represented in this page (FOR overflow, dictionary overflow, value
  /// out of bit range) -- the caller finishes the page or fails the load.
  virtual bool EncodeValue(const uint8_t* raw, BitWriter* writer) = 0;
  /// Captures per-page state into the trailer meta.
  virtual void FinishPage(CodecPageMeta* meta) { (void)meta; }

  /// Resets per-page decoder state from the trailer meta.
  virtual void BeginDecode(const CodecPageMeta& meta) { (void)meta; }
  /// Decodes the next value into `out` (raw_width() bytes).
  virtual void DecodeValue(BitReader* reader, uint8_t* out) = 0;
  /// Decodes and discards the next value. FOR-delta still has to do the
  /// arithmetic (Section 4.4: "FOR-delta requires reading all values in
  /// the page to perform decompression"); others can skip bits.
  virtual void SkipValue(BitReader* reader) {
    reader->Skip(static_cast<size_t>(encoded_bits()));
  }

  /// Dictionary-style codecs expose their integer codes so equality
  /// predicates can run directly on compressed data -- the optimization
  /// the paper's conclusion attributes to column stores "operating
  /// directly on compressed data" (Abadi et al.). Returns false when the
  /// codec has no code representation.
  virtual bool SupportsCodeDecoding() const { return false; }
  /// Reads the next value's code without materializing it. Only valid
  /// when SupportsCodeDecoding(); the base implementation aborts so a
  /// codec claiming code support can never fall through to garbage codes.
  virtual uint32_t DecodeCode(BitReader* reader);

  // --- Batched kernels (src/kernels/) ------------------------------------
  // The scan hot path works in batches instead of one virtual call per
  // value: DecodeBatch materializes n values, BindPredicate canonicalizes
  // a SARGable predicate into the codec's packed key domain, and ScanBatch
  // evaluates the bound predicate over n packed values into a selection
  // mask without materializing anything.

  /// Decodes `n` values into out (n * raw_width() bytes). The default
  /// loops DecodeValue; codecs override with word-at-a-time unpacking.
  virtual void DecodeBatch(BitReader* reader, size_t n, uint8_t* out);

  /// Binds (op, operand) for direct evaluation on this codec's packed
  /// representation. Returns false when the combination cannot run packed
  /// (the caller falls back to decode-then-filter). `is_text` selects
  /// Predicate's text semantics: byte-wise comparison over the operand's
  /// `operand_len` bytes (prefix compare when shorter than the value).
  /// Page-meta codecs (FOR) bind relative to the current page: call after
  /// BeginDecode and re-bind per page.
  virtual bool BindPredicate(CompareOp op, const uint8_t* operand,
                             size_t operand_len, bool is_text,
                             kernels::PackedPredicate* out) const;

  /// Evaluates a bound predicate over the next `n` packed values,
  /// overwriting bits [base, base + n) of `sel` (base % 64 == 0, whole
  /// words are written) and advancing the reader past the n values. Only
  /// valid after BindPredicate returned true. The default decodes scan
  /// keys one by one and applies the scalar oracle; codecs override with
  /// the kernels in src/kernels/.
  virtual void ScanBatch(BitReader* reader, size_t n,
                         const kernels::PackedPredicate& pred,
                         kernels::BitVector* sel, size_t base);

 protected:
  /// Reads the next value's packed comparison key -- the domain
  /// BindPredicate's output lives in. Backs the default ScanBatch; only
  /// codecs that can bind predicates need it.
  virtual uint32_t DecodeScanKey(BitReader* reader);
};

/// Creates the codec for an attribute. `raw_width` is the decoded value
/// width in bytes. kDict requires a Dictionary (not owned).
Result<std::unique_ptr<AttributeCodec>> MakeCodec(const CodecSpec& spec,
                                                  int raw_width,
                                                  Dictionary* dict);

}  // namespace rodb

#endif  // RODB_COMPRESSION_CODEC_H_
