#include "advisor/selectivity.h"

#include <algorithm>

namespace rodb {

double EstimateSelectivity(const Predicate& pred, const ColumnStats& stats) {
  if (pred.is_text() || !stats.valid) return 1.0;
  const double lo = stats.min;
  const double hi = stats.max;
  const double width = hi - lo + 1.0;
  const double v = pred.int_operand();
  const double eq = stats.ndv > 0 ? 1.0 / static_cast<double>(stats.ndv)
                                  : 1.0 / width;
  auto clamp = [](double x) { return std::min(1.0, std::max(0.0, x)); };
  switch (pred.op()) {
    case CompareOp::kEq:
      if (v < lo || v > hi) return 0.0;
      return clamp(eq);
    case CompareOp::kNe:
      if (v < lo || v > hi) return 1.0;
      return clamp(1.0 - eq);
    case CompareOp::kLt:
      return clamp((v - lo) / width);
    case CompareOp::kLe:
      return clamp((v - lo + 1.0) / width);
    case CompareOp::kGt:
      return clamp((hi - v) / width);
    case CompareOp::kGe:
      return clamp((hi - v + 1.0) / width);
  }
  return 1.0;
}

double EstimateSelectivity(const std::vector<Predicate>& preds,
                           const TableMeta& meta) {
  double selectivity = 1.0;
  for (const Predicate& pred : preds) {
    const size_t attr = static_cast<size_t>(pred.attr_index());
    const ColumnStats stats = attr < meta.column_stats.size()
                                  ? meta.column_stats[attr]
                                  : ColumnStats{};
    selectivity *= EstimateSelectivity(pred, stats);
  }
  return selectivity;
}

}  // namespace rodb
