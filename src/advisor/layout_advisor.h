#ifndef RODB_ADVISOR_LAYOUT_ADVISOR_H_
#define RODB_ADVISOR_LAYOUT_ADVISOR_H_

#include <string>
#include <vector>

#include "model/contour.h"
#include "storage/schema.h"

namespace rodb {

/// One query class of a workload, in the paper's parameterization: how
/// much of the tuple it projects, what fraction of tuples qualify, and
/// how often it runs.
struct WorkloadQuery {
  std::string name;
  double projection_fraction = 0.5;
  double selectivity = 0.1;
  double weight = 1.0;  ///< relative frequency
};

struct QueryAssessment {
  std::string name;
  double speedup_columns_over_rows = 0.0;
  bool row_io_bound = false;
  bool column_io_bound = false;
};

struct LayoutAdvice {
  Layout layout = Layout::kColumn;
  /// Weighted geometric-mean speedup of columns over rows across the
  /// workload; > 1 favors the column layout.
  double workload_speedup = 1.0;
  std::vector<QueryAssessment> per_query;
};

/// The materialized-view / layout advisor of Figure 1, driven by the
/// Section 5 analytical model: given the table's tuple width, the
/// hardware's cpdb rating and a query mix, predicts which physical layout
/// wins.
class LayoutAdvisor {
 public:
  explicit LayoutAdvisor(const HardwareConfig& hw,
                         const CostModel& costs = CostModel::Default())
      : hw_(hw), costs_(costs) {}

  LayoutAdvice Advise(double tuple_width_bytes,
                      const std::vector<WorkloadQuery>& workload) const;

 private:
  HardwareConfig hw_;
  CostModel costs_;
};

}  // namespace rodb

#endif  // RODB_ADVISOR_LAYOUT_ADVISOR_H_
