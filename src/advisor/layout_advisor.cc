#include "advisor/layout_advisor.h"

#include <cmath>

#include "model/analytical_model.h"

namespace rodb {

LayoutAdvice LayoutAdvisor::Advise(
    double tuple_width_bytes,
    const std::vector<WorkloadQuery>& workload) const {
  LayoutAdvice advice;
  AnalyticalModel model(hw_);
  double log_speedup = 0.0;
  double total_weight = 0.0;
  for (const WorkloadQuery& q : workload) {
    const SystemInputs rows = RowScanInputs(
        tuple_width_bytes, q.selectivity, q.projection_fraction, hw_, costs_);
    const SystemInputs cols =
        ColumnScanInputs(tuple_width_bytes, q.selectivity,
                         q.projection_fraction, hw_, costs_,
                         /*column_node_factor=*/1.8);
    QueryAssessment a;
    a.name = q.name;
    a.speedup_columns_over_rows = model.Speedup(cols, rows);
    a.row_io_bound = model.IsIoBound(rows);
    a.column_io_bound = model.IsIoBound(cols);
    advice.per_query.push_back(a);
    if (q.weight > 0.0 && a.speedup_columns_over_rows > 0.0) {
      log_speedup += q.weight * std::log(a.speedup_columns_over_rows);
      total_weight += q.weight;
    }
  }
  advice.workload_speedup =
      total_weight > 0.0 ? std::exp(log_speedup / total_weight) : 1.0;
  advice.layout =
      advice.workload_speedup >= 1.0 ? Layout::kColumn : Layout::kRow;
  return advice;
}

}  // namespace rodb
