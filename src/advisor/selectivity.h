#ifndef RODB_ADVISOR_SELECTIVITY_H_
#define RODB_ADVISOR_SELECTIVITY_H_

#include "engine/predicate.h"
#include "storage/catalog.h"

namespace rodb {

/// Estimates the fraction of tuples satisfying `pred` from the column's
/// load-time statistics, under the uniform-distribution assumption the
/// paper's workload satisfies by construction. Returns 1.0 (the safe
/// upper bound) when the statistics cannot answer (text predicates,
/// missing stats).
///
/// This is the missing input when using the Section 5 model for physical
/// design: predicted rates need the scan's selectivity, and the catalog
/// can now provide it without sampling the data again.
double EstimateSelectivity(const Predicate& pred, const ColumnStats& stats);

/// Conjunction of predicates against one table (independence assumed).
double EstimateSelectivity(const std::vector<Predicate>& preds,
                           const TableMeta& meta);

}  // namespace rodb

#endif  // RODB_ADVISOR_SELECTIVITY_H_
