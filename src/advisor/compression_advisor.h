#ifndef RODB_ADVISOR_COMPRESSION_ADVISOR_H_
#define RODB_ADVISOR_COMPRESSION_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"

namespace rodb {

/// The compression advisor of Figure 1: inspects a sample of a column's
/// values and picks the light-weight scheme (Section 2.2.1) with the
/// smallest fixed per-value bit width, breaking ties toward cheaper
/// decode. Schemes considered: none, bit packing, dictionary(+pack),
/// FOR, FOR-delta for integers; none, dictionary, char-pack for text.
struct CodecAdvice {
  CodecSpec spec;
  double bits_per_value = 0.0;
  /// Why the codecs that lost were rejected, for explain-style output.
  std::string rationale;
};

class CompressionAdvisor {
 public:
  /// `sample` holds consecutive raw values (attr.width bytes each), in
  /// table order -- order matters for FOR-delta.
  CodecAdvice Advise(const AttributeDesc& attr,
                     const std::vector<std::vector<uint8_t>>& sample) const;

  /// Applies Advise() to every attribute using a sample of whole tuples.
  Result<Schema> AdviseSchema(
      const Schema& schema,
      const std::vector<std::vector<uint8_t>>& sample_tuples) const;
};

}  // namespace rodb

#endif  // RODB_ADVISOR_COMPRESSION_ADVISOR_H_
