#include "advisor/compression_advisor.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "common/bitio.h"
#include "common/bytes.h"
#include "common/macros.h"
#include "compression/codecs_internal.h"

namespace rodb {

namespace {

struct Candidate {
  CodecSpec spec;
  double bits = 0.0;
  /// Relative decode cost used to break near-ties (lower is cheaper);
  /// ordered per the CostModel decode constants.
  double decode_cost = 0.0;
};

void ConsiderIntCandidates(const std::vector<int32_t>& values,
                           std::vector<Candidate>* out) {
  int32_t min_v = values[0], max_v = values[0];
  int64_t max_abs_delta = 0;
  std::set<int32_t> distinct;
  for (size_t i = 0; i < values.size(); ++i) {
    min_v = std::min(min_v, values[i]);
    max_v = std::max(max_v, values[i]);
    if (i > 0) {
      max_abs_delta = std::max<int64_t>(
          max_abs_delta, std::llabs(static_cast<int64_t>(values[i]) -
                                    values[i - 1]));
    }
    if (distinct.size() <= 4096) distinct.insert(values[i]);
  }
  if (min_v >= 0) {
    const int bits = BitsForMaxValue(static_cast<uint64_t>(max_v));
    if (bits < 32) {
      out->push_back({CodecSpec::BitPack(bits),
                      static_cast<double>(bits), 1.0});
    }
  }
  // FOR: non-negative differences from a per-page base. Conservatively
  // size for the full sampled range (pages only shrink it).
  {
    const uint64_t range =
        static_cast<uint64_t>(static_cast<int64_t>(max_v) - min_v);
    const int bits = BitsForMaxValue(range);
    if (bits < 32) {
      out->push_back({CodecSpec::For(bits), static_cast<double>(bits), 1.2});
    }
  }
  // FOR-delta: zig-zag of consecutive differences.
  {
    const int bits =
        BitsForMaxValue(ZigZagEncode(max_abs_delta));
    if (bits < 32) {
      out->push_back(
          {CodecSpec::ForDelta(bits), static_cast<double>(bits), 2.5});
    }
  }
  // Dictionary is only trustworthy when the distinct count has clearly
  // plateaued inside the sample; otherwise unseen values would overflow
  // the code space at load time.
  const size_t plateau =
      std::max<size_t>(16, values.size() / 4);
  if (distinct.size() <= 4096 && distinct.size() <= plateau) {
    const int bits =
        BitsForMaxValue(distinct.empty() ? 0 : distinct.size() - 1);
    if (bits < 32) {
      out->push_back({CodecSpec::Dict(bits), static_cast<double>(bits), 1.5});
    }
  }
}

void ConsiderTextCandidates(const std::vector<std::vector<uint8_t>>& sample,
                            int width, std::vector<Candidate>* out) {
  std::set<std::string> distinct;
  bool dict_viable = true;
  for (const auto& v : sample) {
    distinct.insert(std::string(v.begin(), v.end()));
    if (distinct.size() > 4096) {
      dict_viable = false;
      break;
    }
  }
  // Same plateau rule as for integers: the sampled alphabet must have
  // saturated or the dictionary will overflow on unseen strings.
  const size_t plateau = std::max<size_t>(16, sample.size() / 4);
  if (dict_viable && distinct.size() <= plateau) {
    const int bits =
        BitsForMaxValue(distinct.empty() ? 0 : distinct.size() - 1);
    out->push_back({CodecSpec::Dict(bits), static_cast<double>(bits), 1.5});
  }
  // Char-pack: content must come from the 16-symbol alphabet with only
  // trailing padding; find the longest real prefix.
  const std::string& alphabet = internal::CharPackCodec::Alphabet();
  int max_content = 0;
  bool packable = true;
  for (const auto& v : sample) {
    int content = width;
    while (content > 0 &&
           static_cast<char>(v[static_cast<size_t>(content - 1)]) ==
               internal::CharPackCodec::kPadChar) {
      --content;
    }
    max_content = std::max(max_content, content);
    for (int i = 0; i < content; ++i) {
      if (alphabet.find(static_cast<char>(v[static_cast<size_t>(i)])) ==
          std::string::npos) {
        packable = false;
        break;
      }
    }
    if (!packable) break;
  }
  if (packable && max_content > 0) {
    out->push_back({CodecSpec::CharPack(4, max_content),
                    4.0 * max_content, 2.0});
  }
}

}  // namespace

CodecAdvice CompressionAdvisor::Advise(
    const AttributeDesc& attr,
    const std::vector<std::vector<uint8_t>>& sample) const {
  CodecAdvice advice;
  advice.spec = CodecSpec::None();
  advice.bits_per_value = attr.width * 8.0;
  if (sample.empty()) {
    advice.rationale = "empty sample: keeping raw encoding";
    return advice;
  }
  std::vector<Candidate> candidates;
  candidates.push_back(
      {CodecSpec::None(), static_cast<double>(attr.width) * 8.0, 0.5});
  if (attr.type == AttrType::kInt32) {
    std::vector<int32_t> values;
    values.reserve(sample.size());
    for (const auto& v : sample) values.push_back(LoadLE32s(v.data()));
    ConsiderIntCandidates(values, &candidates);
  } else {
    ConsiderTextCandidates(sample, attr.width, &candidates);
  }
  // Pick the fewest bits; within 10% prefer the cheaper decode ("light-
  // weight": bandwidth savings must not be eaten by decompression).
  const Candidate* best = &candidates[0];
  for (const Candidate& c : candidates) {
    const bool much_smaller = c.bits < best->bits * 0.9;
    const bool similar_but_cheaper =
        c.bits <= best->bits * 1.1 && c.decode_cost < best->decode_cost &&
        c.bits <= best->bits;
    if (much_smaller || similar_but_cheaper) best = &c;
  }
  advice.spec = best->spec;
  advice.bits_per_value = best->bits;
  advice.rationale =
      "chose " + std::string(CompressionKindName(best->spec.kind)) + " at " +
      std::to_string(best->bits) + " bits/value over " +
      std::to_string(candidates.size() - 1) + " alternatives";
  return advice;
}

Result<Schema> CompressionAdvisor::AdviseSchema(
    const Schema& schema,
    const std::vector<std::vector<uint8_t>>& sample_tuples) const {
  std::vector<AttributeDesc> attrs;
  attrs.reserve(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttributeDesc& attr = schema.attribute(a);
    std::vector<std::vector<uint8_t>> sample;
    sample.reserve(sample_tuples.size());
    for (const auto& tuple : sample_tuples) {
      if (tuple.size() != static_cast<size_t>(schema.raw_tuple_width())) {
        return Status::InvalidArgument("sample tuple width mismatch");
      }
      const uint8_t* field = tuple.data() + schema.attr_offset(a);
      sample.emplace_back(field, field + attr.width);
    }
    AttributeDesc advised = attr;
    advised.codec = Advise(attr, sample).spec;
    attrs.push_back(std::move(advised));
  }
  return Schema::Make(std::move(attrs));
}

}  // namespace rodb
