#ifndef RODB_WOS_MANIFEST_H_
#define RODB_WOS_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace rodb {

/// Durable record of one ingest table's segment lifecycle: which ROS
/// generation is current, which frozen segments have not been merged
/// into it yet, and the next segment/generation ids to hand out. The
/// active (in-memory) segment is deliberately absent — like the paper's
/// WOS it is volatile, and a crash replays from the last manifest.
///
/// The manifest is the single commit point of the lifecycle: freeze and
/// merge both build their table files first, then publish them with one
/// atomic manifest swap (write temp file + rename). A crash on either
/// side of the swap leaves the previous generation fully intact, which
/// is what the recover-to-last-good-generation tests pin.
struct IngestManifest {
  /// Logical table this manifest describes (segment tables are named
  /// `<table>__seg<N>` / `<table>__gen<N>` in the same directory).
  std::string table;
  /// Monotone commit counter; every successful freeze or merge bumps it.
  uint64_t epoch = 0;
  /// ROS generation number backing `ros_table` (0 = no ROS yet).
  uint64_t generation = 0;
  /// Catalog name of the current read-optimized store ("" before the
  /// first merge commits).
  std::string ros_table;
  /// Frozen, immutable segment tables awaiting merge, oldest first.
  /// Order matters: it is ingest order, and readers (and the merge's
  /// tie-break) rely on it.
  std::vector<std::string> frozen;
  /// Next frozen-segment id to allocate.
  uint64_t next_segment_id = 1;
};

/// `<dir>/<table>.ingest`, next to the catalog's `.meta` files.
std::string IngestManifestPath(const std::string& dir,
                               const std::string& table);

/// True if `dir` holds a manifest for `table`.
bool IngestManifestExists(const std::string& dir, const std::string& table);

/// Atomically replaces the manifest: writes `<path>.tmp`, fsyncs via
/// stream flush, then renames over the old file. The rename is the
/// commit — readers either see the previous state or the new one,
/// never a torn mix.
Status SaveIngestManifest(const std::string& dir, const IngestManifest& m);

Result<IngestManifest> LoadIngestManifest(const std::string& dir,
                                          const std::string& table);

/// Removes the manifest file (used by tests tearing a store down).
Status RemoveIngestManifest(const std::string& dir, const std::string& table);

}  // namespace rodb

#endif  // RODB_WOS_MANIFEST_H_
