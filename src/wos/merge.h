#ifndef RODB_WOS_MERGE_H_
#define RODB_WOS_MERGE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/query_context.h"
#include "storage/catalog.h"
#include "storage/page.h"
#include "wos/write_store.h"

namespace rodb {

/// Options for merging a WriteStore into the read-optimized store.
struct MergeOptions {
  /// int32 attribute both sides are clustered on.
  int sort_attr = 0;
  Layout layout = Layout::kRow;
  size_t page_size = kDefaultPageSize;
  /// Optional lifecycle context (borrowed): the merge checks it at page
  /// boundaries while re-reading the old store and every few thousand
  /// appended tuples, so a long merge can be cancelled or deadlined
  /// instead of holding the store hostage. Null = run to completion.
  const QueryContext* context = nullptr;
  /// Fault-injection hook, called at "merge.finish" (before the new
  /// table's files are finalized) and "merge.commit" (after the table
  /// is durable, before the WOS is cleared). A non-OK return fails the
  /// merge at that point with the WOS contents intact -- the regression
  /// test for the clear-before-durable bug drives this. Null = no-op.
  std::function<Status(std::string_view point)> fail_point;
};

/// Materializes every tuple of a stored table back into raw form (used by
/// the merge to re-write the read store; tables are read page by page,
/// column files in lockstep). A non-null `context` is checked at page
/// boundaries.
Result<std::vector<std::vector<uint8_t>>> ReadAllTuples(
    const OpenTable& table, const QueryContext* context = nullptr);

/// The "merge" arrow of Figure 1: combines the existing read store table
/// `old_name` (may be empty for a first load) with the sorted contents of
/// `wos` into a brand-new table `new_name`, written densely in one
/// sequential pass. The WOS is cleared on success.
Result<TableMeta> MergeIntoReadStore(const std::string& dir,
                                     const std::string& old_name,
                                     const std::string& new_name,
                                     WriteStore* wos,
                                     const MergeOptions& options);

}  // namespace rodb

#endif  // RODB_WOS_MERGE_H_
