#ifndef RODB_WOS_SEGMENT_SOURCE_H_
#define RODB_WOS_SEGMENT_SOURCE_H_

#include <memory>

#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "wos/segment.h"

namespace rodb {

/// Scan operator over an ActiveView -- the in-memory leg of a snapshot
/// read. Applies the spec's predicate conjunction against raw tuple
/// bytes and emits the projected attributes, block by block, exactly
/// like the on-disk scanners so UnionAllOperator can splice it after
/// ROS and frozen-segment scans (the layouts match by construction).
///
/// The view is captured by value: the operator stays valid even after
/// the segment it came from is frozen and reset.
class ActiveScanOperator final : public Operator {
 public:
  /// Validates the spec (projection/predicate indices against the
  /// schema) like OpenScanner does for tables.
  static Result<OperatorPtr> Make(const Schema& schema, ActiveView view,
                                  const ScanSpec& spec, ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  const BlockLayout& output_layout() const override { return layout_; }

 private:
  ActiveScanOperator(const Schema& schema, ActiveView view, ScanSpec spec,
                     BlockLayout layout, ExecStats* stats);

  const Schema schema_;
  const ActiveView view_;
  const ScanSpec spec_;
  const BlockLayout layout_;
  ExecStats* stats_;
  std::unique_ptr<TupleBlock> block_;
  uint64_t next_row_ = 0;
};

}  // namespace rodb

#endif  // RODB_WOS_SEGMENT_SOURCE_H_
