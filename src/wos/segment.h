#ifndef RODB_WOS_SEGMENT_H_
#define RODB_WOS_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/schema.h"

namespace rodb {

/// Immutable snapshot of an ActiveSegment's contents at acquisition
/// time: the chunk list plus a tuple-count watermark. Tuples in
/// [0, count) were fully written before the view was taken (the segment
/// publishes the watermark under the same mutex appends hold, which
/// gives the happens-before edge), so a view can be read without any
/// further synchronization while the writer keeps appending past the
/// watermark into the very same chunks.
class ActiveView {
 public:
  ActiveView() = default;

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t tuple_width() const { return tuple_width_; }

  /// Raw tuple `i` (attribute bytes back to back); i < count().
  const uint8_t* tuple(uint64_t i) const {
    return chunks_[i / chunk_tuples_]->data() +
           (i % chunk_tuples_) * tuple_width_;
  }

 private:
  friend class ActiveSegment;
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> chunks_;
  uint64_t count_ = 0;
  size_t tuple_width_ = 0;
  size_t chunk_tuples_ = 1;
};

/// The in-memory head of the segment lifecycle: an append-only tuple
/// buffer that hands out consistent ActiveViews to concurrent readers.
///
/// Storage is a list of fixed-capacity chunks allocated up front at
/// their full size, so a chunk's bytes never move once created --
/// readers holding a view keep valid pointers no matter how many
/// appends (or a Reset() starting the next active segment) happen after
/// them. The writer only ever touches bytes at or past every published
/// watermark, readers only below theirs; the watermark itself is
/// published under the mutex.
class ActiveSegment {
 public:
  explicit ActiveSegment(Schema schema, size_t chunk_tuples = 4096);

  const Schema& schema() const { return schema_; }

  /// Appends one raw tuple and returns the new tuple count.
  uint64_t Append(const uint8_t* raw_tuple);

  /// Snapshot of everything appended so far.
  ActiveView View() const;

  /// Drops all tuples and starts a fresh chunk list (after a freeze).
  /// Views taken earlier keep reading the old chunks.
  void Reset();

  uint64_t size() const;
  uint64_t memory_bytes() const;

 private:
  const Schema schema_;
  const size_t tuple_width_;
  const size_t chunk_tuples_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<std::vector<uint8_t>>> chunks_;
  uint64_t count_ = 0;
};

}  // namespace rodb

#endif  // RODB_WOS_SEGMENT_H_
