#include "wos/manifest.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/file_util.h"
#include "common/macros.h"
#include "io/durable_file.h"

namespace rodb {

std::string IngestManifestPath(const std::string& dir,
                               const std::string& table) {
  return dir + "/" + table + ".ingest";
}

bool IngestManifestExists(const std::string& dir, const std::string& table) {
  return FileExists(IngestManifestPath(dir, table));
}

Status SaveIngestManifest(const std::string& dir, const IngestManifest& m) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "table %s\n", m.table.c_str());
  out += line;
  std::snprintf(line, sizeof(line), "epoch %llu\n",
                static_cast<unsigned long long>(m.epoch));
  out += line;
  std::snprintf(line, sizeof(line), "generation %llu\n",
                static_cast<unsigned long long>(m.generation));
  out += line;
  std::snprintf(line, sizeof(line), "ros %s\n",
                m.ros_table.empty() ? "-" : m.ros_table.c_str());
  out += line;
  std::snprintf(line, sizeof(line), "next_segment_id %llu\n",
                static_cast<unsigned long long>(m.next_segment_id));
  out += line;
  std::snprintf(line, sizeof(line), "frozen %zu\n", m.frozen.size());
  out += line;
  for (const std::string& seg : m.frozen) {
    out += "segment ";
    out += seg;
    out += "\n";
  }
  // The rename inside AtomicPublishFile is the lifecycle's only commit
  // point: fsync the tmp before it, fsync the directory after it.
  return AtomicPublishFile(IngestManifestPath(dir, m.table), out);
}

Result<IngestManifest> LoadIngestManifest(const std::string& dir,
                                          const std::string& table) {
  RODB_ASSIGN_OR_RETURN(std::string text,
                        ReadFileToString(IngestManifestPath(dir, table)));
  std::istringstream in(text);
  IngestManifest m;
  std::string key;
  if (!(in >> key >> m.table) || key != "table" || m.table != table) {
    return Status::Corruption("ingest manifest: bad table line");
  }
  if (!(in >> key >> m.epoch) || key != "epoch") {
    return Status::Corruption("ingest manifest: bad epoch line");
  }
  if (!(in >> key >> m.generation) || key != "generation") {
    return Status::Corruption("ingest manifest: bad generation line");
  }
  if (!(in >> key >> m.ros_table) || key != "ros") {
    return Status::Corruption("ingest manifest: bad ros line");
  }
  if (m.ros_table == "-") m.ros_table.clear();
  if (!(in >> key >> m.next_segment_id) || key != "next_segment_id") {
    return Status::Corruption("ingest manifest: bad next_segment_id line");
  }
  size_t n_frozen = 0;
  if (!(in >> key >> n_frozen) || key != "frozen") {
    return Status::Corruption("ingest manifest: bad frozen line");
  }
  for (size_t i = 0; i < n_frozen; ++i) {
    std::string seg;
    if (!(in >> key >> seg) || key != "segment") {
      return Status::Corruption("ingest manifest: truncated segment list");
    }
    m.frozen.push_back(std::move(seg));
  }
  return m;
}

Status RemoveIngestManifest(const std::string& dir, const std::string& table) {
  return DurableEnv::Default()->Remove(IngestManifestPath(dir, table));
}

}  // namespace rodb
