#include "wos/segment_source.h"

#include <cstring>
#include <utility>

#include "common/macros.h"

namespace rodb {

Result<OperatorPtr> ActiveScanOperator::Make(const Schema& schema,
                                             ActiveView view,
                                             const ScanSpec& spec,
                                             ExecStats* stats) {
  if (spec.projection.empty()) {
    return Status::InvalidArgument("active scan needs a projection");
  }
  for (int attr : spec.projection) {
    if (attr < 0 || static_cast<size_t>(attr) >= schema.num_attributes()) {
      return Status::InvalidArgument("projection attribute out of range");
    }
  }
  for (const Predicate& pred : spec.predicates) {
    const int attr = pred.attr_index();
    if (attr < 0 || static_cast<size_t>(attr) >= schema.num_attributes()) {
      return Status::InvalidArgument("predicate attribute out of range");
    }
    const bool text = schema.attribute(static_cast<size_t>(attr)).type ==
                      AttrType::kFixedText;
    if (text != pred.is_text()) {
      return Status::InvalidArgument("predicate type does not match attribute");
    }
  }
  BlockLayout layout = BlockLayout::FromSchema(schema, spec.projection);
  return OperatorPtr(new ActiveScanOperator(schema, std::move(view), spec,
                                            std::move(layout), stats));
}

ActiveScanOperator::ActiveScanOperator(const Schema& schema, ActiveView view,
                                       ScanSpec spec, BlockLayout layout,
                                       ExecStats* stats)
    : schema_(schema),
      view_(std::move(view)),
      spec_(std::move(spec)),
      layout_(std::move(layout)),
      stats_(stats) {}

Status ActiveScanOperator::Open() {
  block_ = std::make_unique<TupleBlock>(layout_, spec_.block_tuples);
  next_row_ = 0;
  return Status::OK();
}

Result<TupleBlock*> ActiveScanOperator::Next() {
  if (block_ == nullptr) return Status::Internal("active scan not opened");
  block_->Clear();
  while (next_row_ < view_.count() && !block_->full()) {
    if ((next_row_ & 0x3FF) == 0 && stats_ != nullptr) {
      RODB_RETURN_IF_ERROR(stats_->CheckAlive());
    }
    const uint64_t row = next_row_++;
    const uint8_t* tuple = view_.tuple(row);
    if (stats_ != nullptr) {
      stats_->counters().tuples_examined += 1;
      stats_->AddSequentialBytes(view_.tuple_width());
    }
    bool pass = true;
    for (const Predicate& pred : spec_.predicates) {
      if (stats_ != nullptr) stats_->counters().predicate_evals += 1;
      if (!pred.Eval(tuple + schema_.attr_offset(
                                 static_cast<size_t>(pred.attr_index())))) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    const uint32_t slot_index = block_->size();
    uint8_t* slot = block_->AppendSlot();
    for (size_t a = 0; a < spec_.projection.size(); ++a) {
      const size_t attr = static_cast<size_t>(spec_.projection[a]);
      std::memcpy(slot + layout_.offsets[a], tuple + schema_.attr_offset(attr),
                  static_cast<size_t>(layout_.widths[a]));
    }
    block_->set_position(slot_index, row);
    if (stats_ != nullptr) {
      stats_->counters().values_copied += spec_.projection.size();
      stats_->counters().bytes_copied +=
          static_cast<uint64_t>(layout_.tuple_width);
    }
  }
  if (block_->empty() && next_row_ >= view_.count()) return nullptr;
  if (stats_ != nullptr) stats_->counters().blocks_emitted += 1;
  return block_.get();
}

}  // namespace rodb
