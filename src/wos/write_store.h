#ifndef RODB_WOS_WRITE_STORE_H_
#define RODB_WOS_WRITE_STORE_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"

namespace rodb {

/// The staging area of Figure 1: writes land in an in-memory,
/// insert-friendly buffer and move to the read-optimized store in bulk.
/// Deletions follow the warehouse convention the paper describes
/// (compensating facts, e.g. a negative Sale amount) rather than in-place
/// updates, so the store is append-only.
class WriteStore {
 public:
  explicit WriteStore(Schema schema)
      : schema_(std::move(schema)),
        tuple_width_(static_cast<size_t>(schema_.raw_tuple_width())) {}

  const Schema& schema() const { return schema_; }

  /// Appends one raw tuple (attribute bytes back to back).
  Status Insert(const uint8_t* raw_tuple);

  uint64_t size() const { return data_.size() / tuple_width_; }
  uint64_t memory_bytes() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  const uint8_t* tuple(uint64_t i) const {
    return data_.data() + i * tuple_width_;
  }

  /// Sorts the buffered tuples by an int32 attribute -- the clustering
  /// key of the read store, so the merge stays a linear pass. Stable, so
  /// insertion order breaks ties.
  Status SortBy(int attr_index);

  void Clear() { data_.clear(); }

 private:
  Schema schema_;
  size_t tuple_width_;
  std::vector<uint8_t> data_;
};

}  // namespace rodb

#endif  // RODB_WOS_WRITE_STORE_H_
