#include "wos/merge.h"

#include <cstring>

#include "common/bytes.h"
#include "common/file_util.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "storage/column_page.h"
#include "storage/pax_page.h"
#include "storage/row_page.h"
#include "storage/table_files.h"

namespace rodb {

namespace {

Status CheckAlive(const QueryContext* context) {
  return context == nullptr ? Status::OK() : context->CheckAlive();
}

Result<std::vector<std::vector<uint8_t>>> ReadRowTable(
    const OpenTable& table, const QueryContext* context) {
  const TableMeta& meta = table.meta();
  RODB_ASSIGN_OR_RETURN(std::string file, ReadFileToString(table.FilePath(0)));
  if (file.size() != meta.file_bytes[0]) {
    return Status::Corruption("row file size mismatch for " + meta.name);
  }
  RODB_ASSIGN_OR_RETURN(OpenTable::RowCodecBundle bundle,
                        table.MakeRowCodec());
  std::vector<std::vector<uint8_t>> tuples;
  tuples.reserve(meta.num_tuples);
  const size_t width = static_cast<size_t>(meta.schema.raw_tuple_width());
  for (uint64_t p = 0; p < meta.file_pages[0]; ++p) {
    RODB_RETURN_IF_ERROR(CheckAlive(context));
    const uint8_t* page =
        reinterpret_cast<const uint8_t*>(file.data()) + p * meta.page_size;
    RODB_ASSIGN_OR_RETURN(
        RowPageReader reader,
        RowPageReader::Open(page, meta.page_size, &meta.schema,
                            bundle.row_codec.get()));
    for (uint32_t i = 0; i < reader.count(); ++i) {
      std::vector<uint8_t> tuple(width);
      reader.DecodeNext(tuple.data());
      tuples.push_back(std::move(tuple));
    }
  }
  return tuples;
}

Result<std::vector<std::vector<uint8_t>>> ReadColumnTable(
    const OpenTable& table, const QueryContext* context) {
  const TableMeta& meta = table.meta();
  const size_t width = static_cast<size_t>(meta.schema.raw_tuple_width());
  std::vector<std::vector<uint8_t>> tuples(
      meta.num_tuples, std::vector<uint8_t>(width));
  for (size_t attr = 0; attr < meta.schema.num_attributes(); ++attr) {
    RODB_ASSIGN_OR_RETURN(std::string file,
                          ReadFileToString(table.FilePath(attr)));
    if (file.size() != meta.file_bytes[attr]) {
      return Status::Corruption("column file size mismatch for " + meta.name);
    }
    RODB_ASSIGN_OR_RETURN(std::unique_ptr<AttributeCodec> codec,
                          table.MakeAttrCodec(attr));
    const int offset = meta.schema.attr_offset(attr);
    uint64_t row = 0;
    for (uint64_t p = 0; p < meta.file_pages[attr]; ++p) {
      RODB_RETURN_IF_ERROR(CheckAlive(context));
      const uint8_t* page =
          reinterpret_cast<const uint8_t*>(file.data()) + p * meta.page_size;
      RODB_ASSIGN_OR_RETURN(
          ColumnPageReader reader,
          ColumnPageReader::Open(page, meta.page_size, codec.get()));
      for (uint32_t i = 0; i < reader.count(); ++i) {
        if (row >= meta.num_tuples) {
          return Status::Corruption("column longer than table cardinality");
        }
        reader.DecodeNext(tuples[row].data() + offset);
        ++row;
      }
    }
    if (row != meta.num_tuples) {
      return Status::Corruption("column shorter than table cardinality");
    }
  }
  return tuples;
}

Result<std::vector<std::vector<uint8_t>>> ReadPaxTable(
    const OpenTable& table, const QueryContext* context) {
  const TableMeta& meta = table.meta();
  RODB_ASSIGN_OR_RETURN(std::string file, ReadFileToString(table.FilePath(0)));
  if (file.size() != meta.file_bytes[0]) {
    return Status::Corruption("PAX file size mismatch for " + meta.name);
  }
  std::vector<std::unique_ptr<AttributeCodec>> owned;
  std::vector<AttributeCodec*> codecs;
  for (size_t a = 0; a < meta.schema.num_attributes(); ++a) {
    RODB_ASSIGN_OR_RETURN(auto codec, table.MakeAttrCodec(a));
    codecs.push_back(codec.get());
    owned.push_back(std::move(codec));
  }
  const size_t width = static_cast<size_t>(meta.schema.raw_tuple_width());
  std::vector<std::vector<uint8_t>> tuples;
  tuples.reserve(meta.num_tuples);
  for (uint64_t p = 0; p < meta.file_pages[0]; ++p) {
    RODB_RETURN_IF_ERROR(CheckAlive(context));
    const uint8_t* page =
        reinterpret_cast<const uint8_t*>(file.data()) + p * meta.page_size;
    RODB_ASSIGN_OR_RETURN(
        PaxPageReader reader,
        PaxPageReader::Open(page, meta.page_size, &meta.schema, codecs));
    for (uint32_t i = 0; i < reader.count(); ++i) {
      std::vector<uint8_t> tuple(width);
      for (size_t a = 0; a < codecs.size(); ++a) {
        reader.DecodeNext(
            a, tuple.data() +
                   static_cast<size_t>(meta.schema.attr_offset(a)));
      }
      tuples.push_back(std::move(tuple));
    }
  }
  return tuples;
}

}  // namespace

Result<std::vector<std::vector<uint8_t>>> ReadAllTuples(
    const OpenTable& table, const QueryContext* context) {
  switch (table.meta().layout) {
    case Layout::kRow:
      return ReadRowTable(table, context);
    case Layout::kPax:
      return ReadPaxTable(table, context);
    case Layout::kColumn:
      break;
  }
  return ReadColumnTable(table, context);
}

Result<TableMeta> MergeIntoReadStore(const std::string& dir,
                                     const std::string& old_name,
                                     const std::string& new_name,
                                     WriteStore* wos,
                                     const MergeOptions& options) {
  if (wos == nullptr) return Status::InvalidArgument("null write store");
  const Schema& schema = wos->schema();
  const size_t attr = static_cast<size_t>(options.sort_attr);
  if (attr >= schema.num_attributes() ||
      schema.attribute(attr).type != AttrType::kInt32) {
    return Status::InvalidArgument("merge sort attribute must be int32");
  }
  RODB_RETURN_IF_ERROR(wos->SortBy(options.sort_attr));
  {
    auto& reg = obs::MetricsRegistry::Default();
    static obs::Counter* merges = reg.GetCounter("rodb.wos.merges");
    static obs::Counter* merged_tuples =
        reg.GetCounter("rodb.wos.merged_tuples");
    merges->Increment();
    merged_tuples->Add(wos->size());
  }

  std::vector<std::vector<uint8_t>> old_tuples;
  if (!old_name.empty()) {
    RODB_ASSIGN_OR_RETURN(OpenTable old_table,
                          OpenTable::Open(dir, old_name));
    if (old_table.schema().raw_tuple_width() != schema.raw_tuple_width() ||
        old_table.schema().num_attributes() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "write store schema does not match read store");
    }
    RODB_ASSIGN_OR_RETURN(old_tuples,
                          ReadAllTuples(old_table, options.context));
  }

  RODB_ASSIGN_OR_RETURN(
      std::unique_ptr<TableWriter> writer,
      TableWriter::Create(dir, new_name, schema, options.layout,
                          options.page_size));
  const int key_offset = schema.attr_offset(attr);
  size_t oi = 0;
  uint64_t wi = 0;
  const uint64_t wn = wos->size();
  // Linear two-way merge: both runs are sorted on the clustering key; the
  // read store wins ties so older facts stay ahead of compensations.
  uint64_t appended = 0;
  while (oi < old_tuples.size() || wi < wn) {
    // Liveness check every few thousand tuples; cheap against the page
    // encode each tuple pays, frequent enough to stop promptly.
    if ((appended++ & 0xFFF) == 0) {
      RODB_RETURN_IF_ERROR(CheckAlive(options.context));
    }
    const uint8_t* next;
    if (oi >= old_tuples.size()) {
      next = wos->tuple(wi++);
    } else if (wi >= wn) {
      next = old_tuples[oi++].data();
    } else {
      const int32_t ok = LoadLE32s(old_tuples[oi].data() + key_offset);
      const int32_t wk = LoadLE32s(wos->tuple(wi) + key_offset);
      next = ok <= wk ? old_tuples[oi++].data() : wos->tuple(wi++);
    }
    RODB_RETURN_IF_ERROR(writer->Append(next));
  }
  if (options.fail_point != nullptr) {
    RODB_RETURN_IF_ERROR(options.fail_point("merge.finish"));
  }
  RODB_RETURN_IF_ERROR(writer->Finish());
  // The WOS is the only copy of the buffered tuples, so it must survive
  // until the new table is durably committed: load the meta back (its
  // atomic rename is the commit point) and only then clear. Clearing
  // before this read-back was a data-loss window -- a failed Finish or
  // meta write dropped the buffered tuples on the floor.
  RODB_ASSIGN_OR_RETURN(TableMeta meta, Catalog::LoadTableMeta(dir, new_name));
  if (options.fail_point != nullptr) {
    RODB_RETURN_IF_ERROR(options.fail_point("merge.commit"));
  }
  wos->Clear();
  return meta;
}

}  // namespace rodb
