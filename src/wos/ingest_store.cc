#include "wos/ingest_store.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <numeric>
#include <utility>

#include "common/bytes.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "io/durable_file.h"
#include "obs/metrics.h"
#include "storage/table_files.h"
#include "wos/merge.h"

namespace rodb {

namespace {

struct IngestMetrics {
  obs::Counter* appends;
  obs::Counter* batches;
  obs::Counter* freezes;
  obs::Counter* frozen_tuples;
  obs::Counter* merges;
  obs::Counter* merged_tuples;
  obs::Counter* merge_failures;
  obs::Counter* snapshots;
  obs::Counter* tables_retired;
  obs::Gauge* active_tuples;
  obs::Gauge* frozen_segments;

  static IngestMetrics& Get() {
    static IngestMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Default();
      IngestMetrics metrics;
      metrics.appends = reg.GetCounter("rodb.ingest.appends");
      metrics.batches = reg.GetCounter("rodb.ingest.batches");
      metrics.freezes = reg.GetCounter("rodb.ingest.freezes");
      metrics.frozen_tuples = reg.GetCounter("rodb.ingest.frozen_tuples");
      metrics.merges = reg.GetCounter("rodb.ingest.merges");
      metrics.merged_tuples = reg.GetCounter("rodb.ingest.merged_tuples");
      metrics.merge_failures = reg.GetCounter("rodb.ingest.merge_failures");
      metrics.snapshots = reg.GetCounter("rodb.ingest.snapshots");
      metrics.tables_retired = reg.GetCounter("rodb.ingest.tables_retired");
      metrics.active_tuples = reg.GetGauge("rodb.ingest.active_tuples");
      metrics.frozen_segments = reg.GetGauge("rodb.ingest.frozen_segments");
      return metrics;
    }();
    return m;
  }
};

std::string SegmentName(const std::string& table, uint64_t id) {
  return table + "__seg" + std::to_string(id);
}

std::string GenerationName(const std::string& table, uint64_t gen) {
  return table + "__gen" + std::to_string(gen);
}

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// True when `name` is a segment or generation table of `table`
/// (`<table>__seg<N>` / `<table>__gen<N>`).
bool IsLifecycleTable(const std::string& table, std::string_view name) {
  for (const char* infix : {"__seg", "__gen"}) {
    const std::string prefix = table + infix;
    if (name.size() > prefix.size() && name.substr(0, prefix.size()) == prefix &&
        AllDigits(name.substr(prefix.size()))) {
      return true;
    }
  }
  return false;
}

/// A committed table's data files must be exactly the sizes its meta
/// recorded: anything else is a torn or lost write that slipped past
/// the sync discipline (it was disabled, or the device lied). The
/// manifest referenced this table, so recovery cannot silently serve
/// it -- fail loudly instead.
Status ValidateTableFiles(const OpenTable& t) {
  for (size_t f = 0; f < t.meta().file_bytes.size(); ++f) {
    const std::string path = t.FilePath(f);
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) size = 0;
    if (size != t.meta().file_bytes[f]) {
      DurabilityMetrics::Get().torn_pages_detected->Increment();
      return Status::Corruption(
          "torn table file " + path + ": " + std::to_string(size) +
          " bytes on disk, meta recorded " +
          std::to_string(t.meta().file_bytes[f]));
    }
  }
  return Status::OK();
}

}  // namespace

TableLease::~TableLease() {
  if (obsolete_.load(std::memory_order_acquire)) {
    RemoveTableFiles(dir_, table_.meta().name);
    IngestMetrics::Get().tables_retired->Increment();
  }
}

IngestStore::IngestStore(std::string dir, std::string table, Schema schema,
                         IngestOptions options)
    : dir_(std::move(dir)),
      table_(std::move(table)),
      schema_(std::move(schema)),
      options_(std::move(options)),
      tuple_width_(static_cast<size_t>(schema_.raw_tuple_width())),
      active_(std::make_shared<ActiveSegment>(schema_)) {}

Result<std::unique_ptr<IngestStore>> IngestStore::Open(
    const std::string& dir, const std::string& table, const Schema& schema,
    const IngestOptions& options) {
  const size_t attr = static_cast<size_t>(options.sort_attr);
  if (options.sort_attr < 0 || attr >= schema.num_attributes() ||
      schema.attribute(attr).type != AttrType::kInt32) {
    return Status::InvalidArgument("ingest sort attribute must be int32");
  }
  std::unique_ptr<IngestStore> store(
      new IngestStore(dir, table, schema, options));

  if (IngestManifestExists(dir, table)) {
    RODB_ASSIGN_OR_RETURN(store->manifest_, LoadIngestManifest(dir, table));
    if (!store->manifest_.ros_table.empty()) {
      RODB_ASSIGN_OR_RETURN(OpenTable ros,
                            OpenTable::Open(dir, store->manifest_.ros_table));
      if (ros.schema().raw_tuple_width() != schema.raw_tuple_width() ||
          ros.schema().num_attributes() != schema.num_attributes()) {
        return Status::InvalidArgument(
            "ingest schema does not match recovered ROS");
      }
      RODB_RETURN_IF_ERROR(ValidateTableFiles(ros));
      store->ros_ = std::make_shared<TableLease>(dir, std::move(ros));
    }
    for (const std::string& seg : store->manifest_.frozen) {
      RODB_ASSIGN_OR_RETURN(OpenTable t, OpenTable::Open(dir, seg));
      RODB_RETURN_IF_ERROR(ValidateTableFiles(t));
      store->frozen_.push_back(
          std::make_shared<TableLease>(dir, std::move(t)));
    }
  } else {
    store->manifest_.table = table;
    RODB_RETURN_IF_ERROR(SaveIngestManifest(dir, store->manifest_));
  }

  // Orphan sweep: table files of a freeze or merge that died before its
  // manifest commit. Everything the manifest does not reference is, by
  // the commit protocol, garbage from a crash -- recover to the last
  // good generation by deleting it. Stale `*.tmp` files of an
  // interrupted atomic temp-write+rename (the manifest's own tmp and
  // table writers' meta tmps) are swept alongside, and the sweep itself
  // is made durable with a final directory sync.
  {
    auto& durability = DurabilityMetrics::Get();
    durability.recovery_sweeps->Increment();
    std::vector<std::string> orphans;
    std::vector<std::string> stale_tmps;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      std::string base = entry.path().filename().string();
      const size_t tmp = base.rfind(".tmp");
      const bool is_tmp = tmp != std::string::npos && tmp == base.size() - 4;
      if (is_tmp) base = base.substr(0, tmp);
      if (is_tmp && base == table + ".ingest") {
        // The manifest's own interrupted tmp; the committed manifest
        // (if any) was already loaded above.
        stale_tmps.push_back(entry.path().string());
        continue;
      }
      const size_t dot = base.rfind('.');
      if (dot == std::string::npos) continue;
      base = base.substr(0, dot);
      if (!IsLifecycleTable(table, base)) continue;
      // Any tmp in this table's namespace is dead weight whether its
      // base table survived or not -- a completed save renames the tmp
      // away, so finding one means the save was interrupted.
      if (is_tmp) stale_tmps.push_back(entry.path().string());
      if (base == store->manifest_.ros_table) continue;
      if (std::find(store->manifest_.frozen.begin(),
                    store->manifest_.frozen.end(),
                    base) != store->manifest_.frozen.end()) {
        continue;
      }
      if (is_tmp) continue;  // swept via stale_tmps
      if (std::find(orphans.begin(), orphans.end(), base) == orphans.end()) {
        orphans.push_back(base);
      }
    }
    for (const std::string& stale : stale_tmps) {
      DurableEnv::Default()->Remove(stale);
      durability.tmp_files_swept->Increment();
    }
    for (const std::string& orphan : orphans) RemoveTableFiles(dir, orphan);
    if (FsyncAt(FsyncLevel::kCommit)) {
      RODB_RETURN_IF_ERROR(DurableEnv::Default()->SyncDir(dir));
    }
  }

  {
    std::lock_guard<std::mutex> lock(store->mu_);
    store->PublishLocked();
    // Lifetime appended count resumes at what the manifest recovered
    // (the active segment is volatile, so anything past this is gone).
    store->appended_ = store->state_->base_tuples;
  }
  return store;
}

IngestStore::~IngestStore() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  merge_cv_.wait(lock, [this] { return !merge_inflight_; });
}

void IngestStore::PublishLocked() {
  auto state = std::make_shared<Snapshot::State>();
  state->epoch = manifest_.epoch;
  state->schema = schema_;
  state->ros = ros_;
  state->frozen = frozen_;
  uint64_t base = ros_ == nullptr ? 0 : ros_->table().meta().num_tuples;
  for (const auto& lease : frozen_) base += lease->table().meta().num_tuples;
  for (const auto& seg : sealed_) {
    ActiveView view = seg->View();
    base += view.count();
    state->sealed.push_back(std::move(view));
  }
  state->base_tuples = base;
  state_ = std::move(state);
  IngestMetrics::Get().frozen_segments->Set(
      static_cast<int64_t>(frozen_.size()));
}

Status IngestStore::Append(const uint8_t* raw_tuple) {
  bool want_freeze = false;
  uint64_t active_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_count = active_->Append(raw_tuple);
    ++appended_;
    want_freeze =
        options_.freeze_tuples > 0 && active_count >= options_.freeze_tuples;
  }
  auto& metrics = IngestMetrics::Get();
  metrics.appends->Increment();
  metrics.active_tuples->Set(static_cast<int64_t>(active_count));
  if (!want_freeze) return Status::OK();
  // Opportunistic auto-freeze: if another freeze (or one blocked behind
  // a slow disk) is in progress, keep ingesting into the active segment
  // instead of queueing up behind it -- appends must never stall on
  // lifecycle I/O.
  if (freeze_mu_.try_lock()) {
    std::lock_guard<std::mutex> freeze_lock(freeze_mu_, std::adopt_lock);
    RODB_RETURN_IF_ERROR(FreezeLocked());
  }
  return Status::OK();
}

Status IngestStore::AppendBatch(const uint8_t* raw_tuples, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    RODB_RETURN_IF_ERROR(Append(raw_tuples + i * tuple_width_));
  }
  IngestMetrics::Get().batches->Increment();
  return Status::OK();
}

Snapshot IngestStore::Acquire() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.state_ = state_;
    snap.active_ = active_->View();
  }
  snap.visible_ = snap.state_->base_tuples + snap.active_.count();
  IngestMetrics::Get().snapshots->Increment();
  return snap;
}

bool IngestStore::SealActiveLocked() {
  if (active_->size() == 0) return false;
  sealed_.push_back(active_);
  active_ = std::make_shared<ActiveSegment>(schema_);
  PublishLocked();
  return true;
}

Status IngestStore::Freeze() {
  std::lock_guard<std::mutex> freeze_lock(freeze_mu_);
  return FreezeLocked();
}

Status IngestStore::FreezeLocked() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SealActiveLocked();
  }
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (sealed_.empty()) break;
    }
    RODB_RETURN_IF_ERROR(PersistOldestSealed());
  }
  MaybeAutoMerge();
  return Status::OK();
}

Status IngestStore::PersistOldestSealed() {
  std::shared_ptr<ActiveSegment> seg;
  uint64_t seg_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seg = sealed_.front();
    seg_id = manifest_.next_segment_id;
  }
  const ActiveView view = seg->View();
  const std::string name = SegmentName(table_, seg_id);

  // Build phase: sort by the clustering key (stable, so append order
  // breaks ties -- the invariant that makes any merge of segments equal
  // a from-scratch stable sort of the whole append sequence) and write
  // a normal compressed table with zone maps.
  Status built = [&]() -> Status {
    RODB_RETURN_IF_ERROR(CheckFail("freeze.write"));
    const int key_offset =
        schema_.attr_offset(static_cast<size_t>(options_.sort_attr));
    std::vector<uint64_t> order(view.count());
    std::iota(order.begin(), order.end(), uint64_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](uint64_t a, uint64_t b) {
                       return LoadLE32s(view.tuple(a) + key_offset) <
                              LoadLE32s(view.tuple(b) + key_offset);
                     });
    RODB_ASSIGN_OR_RETURN(
        std::unique_ptr<TableWriter> writer,
        TableWriter::Create(dir_, name, schema_, options_.layout,
                            options_.page_size));
    for (uint64_t i : order) {
      RODB_RETURN_IF_ERROR(writer->Append(view.tuple(i)));
    }
    return writer->Finish();
  }();
  if (!built.ok()) {
    RemoveTableFiles(dir_, name);
    return built;
  }

  // Commit phase: the manifest swap is the only durable state change;
  // everything before it is invisible (and swept as an orphan after a
  // crash), everything after is the new truth.
  Status committed = [&]() -> Status {
    RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir_, name));
    auto lease = std::make_shared<TableLease>(dir_, std::move(table));
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    RODB_RETURN_IF_ERROR(CheckFail("freeze.commit"));
    IngestManifest next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      next = manifest_;
    }
    next.frozen.push_back(name);
    next.next_segment_id = seg_id + 1;
    next.epoch += 1;
    RODB_RETURN_IF_ERROR(SaveIngestManifest(dir_, next));
    std::lock_guard<std::mutex> lock(mu_);
    manifest_ = std::move(next);
    frozen_.push_back(std::move(lease));
    sealed_.erase(sealed_.begin());
    PublishLocked();
    return Status::OK();
  }();
  if (!committed.ok()) {
    RemoveTableFiles(dir_, name);
    return committed;
  }
  auto& metrics = IngestMetrics::Get();
  metrics.freezes->Increment();
  metrics.frozen_tuples->Add(view.count());
  return Status::OK();
}

Status IngestStore::Merge(const QueryContext* context) {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);
  return MergeLocked(context);
}

Status IngestStore::MergeLocked(const QueryContext* context) {
  // Capture the inputs: the current ROS plus every frozen segment
  // committed so far. Freezes that commit while this merge runs append
  // past `frozen_count` and simply survive into the next merge.
  std::shared_ptr<TableLease> old_ros;
  std::vector<std::shared_ptr<TableLease>> inputs;
  uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_ros = ros_;
    inputs = frozen_;
    gen = manifest_.generation;
  }
  if (inputs.empty()) return Status::OK();
  const size_t frozen_count = inputs.size();

  std::vector<const OpenTable*> tables;
  if (old_ros != nullptr) tables.push_back(&old_ros->table());
  for (const auto& lease : inputs) tables.push_back(&lease->table());

  // The merge materializes its inputs as raw tuples; reserve that
  // footprint against the caller's budget (the engine passes its
  // admission budget through) or a private one from the options.
  QueryContext ctx = context == nullptr ? QueryContext() : *context;
  if (ctx.memory_budget() == nullptr && options_.merge_memory_bytes > 0) {
    ctx.set_memory_budget(
        std::make_shared<MemoryBudget>(options_.merge_memory_bytes));
  }
  uint64_t input_tuples = 0;
  for (const OpenTable* t : tables) input_tuples += t->meta().num_tuples;
  // Every failure past the no-op early-out above is a failed merge and
  // must show up in rodb.ingest.merge_failures -- the fuzz harness
  // reconciles the counter exactly against its lifecycle model.
  const auto failed = [](Status s) {
    IngestMetrics::Get().merge_failures->Increment();
    return s;
  };
  Result<MemoryReservation> reserved =
      ctx.ReserveMemory(input_tuples * tuple_width_);
  if (!reserved.ok()) return failed(reserved.status());
  MemoryReservation hold = std::move(*reserved);

  if (Status s = CheckFail("merge.read"); !s.ok()) return failed(s);
  using Run = std::vector<std::vector<uint8_t>>;
  const size_t n = tables.size();
  std::vector<Run> runs(n);
  std::vector<Status> run_status(n);
  const int par = options_.merge_parallelism;
  if (par > 1 && n > 1) {
    // Multi-core read phase: helpers on the shared pool claim inputs
    // from an atomic cursor and the calling thread claims too, so the
    // phase degrades to serial (never deadlocks) when the pool is busy
    // -- e.g. when this very merge is a pool task.
    struct Phase {
      std::atomic<size_t> next{0};
      std::mutex mu;
      std::condition_variable cv;
      size_t done = 0;
    };
    auto phase = std::make_shared<Phase>();
    const QueryContext* read_ctx = &ctx;
    auto work = [phase, n, &runs, &run_status, &tables, read_ctx] {
      size_t i;
      while ((i = phase->next.fetch_add(1, std::memory_order_relaxed)) < n) {
        Result<Run> run = ReadAllTuples(*tables[i], read_ctx);
        if (run.ok()) {
          runs[i] = std::move(*run);
        } else {
          run_status[i] = run.status();
        }
        std::lock_guard<std::mutex> lock(phase->mu);
        phase->done += 1;
        phase->cv.notify_all();
      }
    };
    const int helpers = std::min<int>(par - 1, static_cast<int>(n) - 1);
    for (int h = 0; h < helpers; ++h) ThreadPool::Shared()->Submit(work);
    work();
    std::unique_lock<std::mutex> lock(phase->mu);
    phase->cv.wait(lock, [&] { return phase->done == n; });
  } else {
    for (size_t i = 0; i < n; ++i) {
      Result<Run> run = ReadAllTuples(*tables[i], &ctx);
      if (run.ok()) {
        runs[i] = std::move(*run);
      } else {
        run_status[i] = run.status();
      }
    }
  }
  for (const Status& s : run_status) {
    if (!s.ok()) return failed(s);
  }

  // Write phase: stable k-way merge (smallest key wins, older input
  // wins ties -- input 0 is the ROS) into the next generation.
  const std::string name = GenerationName(table_, gen + 1);
  Status built = [&]() -> Status {
    RODB_RETURN_IF_ERROR(CheckFail("merge.write"));
    RODB_ASSIGN_OR_RETURN(
        std::unique_ptr<TableWriter> writer,
        TableWriter::Create(dir_, name, schema_, options_.layout,
                            options_.page_size));
    const int key_offset =
        schema_.attr_offset(static_cast<size_t>(options_.sort_attr));
    std::vector<size_t> idx(n, 0);
    uint64_t appended = 0;
    while (true) {
      int best = -1;
      int32_t best_key = 0;
      for (size_t i = 0; i < n; ++i) {
        if (idx[i] >= runs[i].size()) continue;
        const int32_t key = LoadLE32s(runs[i][idx[i]].data() + key_offset);
        if (best < 0 || key < best_key) {
          best = static_cast<int>(i);
          best_key = key;
        }
      }
      if (best < 0) break;
      if ((appended++ & 0xFFF) == 0) {
        RODB_RETURN_IF_ERROR(ctx.CheckAlive());
      }
      RODB_RETURN_IF_ERROR(
          writer->Append(runs[static_cast<size_t>(best)]
                             [idx[static_cast<size_t>(best)]++]
                                 .data()));
    }
    return writer->Finish();
  }();
  if (!built.ok()) {
    RemoveTableFiles(dir_, name);
    return failed(built);
  }

  Status committed = [&]() -> Status {
    RODB_RETURN_IF_ERROR(CheckFail("merge.commit"));
    RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir_, name));
    auto lease = std::make_shared<TableLease>(dir_, std::move(table));
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    IngestManifest next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      next = manifest_;
    }
    next.generation = gen + 1;
    next.ros_table = name;
    next.frozen.erase(next.frozen.begin(),
                      next.frozen.begin() +
                          static_cast<ptrdiff_t>(frozen_count));
    next.epoch += 1;
    RODB_RETURN_IF_ERROR(SaveIngestManifest(dir_, next));
    std::lock_guard<std::mutex> lock(mu_);
    manifest_ = std::move(next);
    if (ros_ != nullptr) ros_->MarkObsolete();
    for (size_t i = 0; i < frozen_count; ++i) frozen_[i]->MarkObsolete();
    frozen_.erase(frozen_.begin(),
                  frozen_.begin() + static_cast<ptrdiff_t>(frozen_count));
    ros_ = std::move(lease);
    PublishLocked();
    return Status::OK();
  }();
  if (!committed.ok()) {
    RemoveTableFiles(dir_, name);
    return failed(committed);
  }
  auto& metrics = IngestMetrics::Get();
  metrics.merges->Increment();
  metrics.merged_tuples->Add(input_tuples);
  return Status::OK();
}

bool IngestStore::TriggerMerge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || merge_inflight_) return false;
    merge_inflight_ = true;
  }
  ThreadPool::Shared()->Submit([this] {
    QueryContext ctx;
    if (options_.merge_timeout.count() > 0) {
      ctx.set_deadline(std::chrono::steady_clock::now() +
                       options_.merge_timeout);
    }
    const Status s = Merge(&ctx);
    // Everything after the flag flip must not touch `this`: the
    // destructor is free to run as soon as the waiter under mu_ sees
    // merge_inflight_ == false.
    std::lock_guard<std::mutex> lock(mu_);
    last_merge_status_ = s;
    merge_inflight_ = false;
    merge_cv_.notify_all();
  });
  return true;
}

void IngestStore::WaitMergeIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  merge_cv_.wait(lock, [this] { return !merge_inflight_; });
}

Status IngestStore::last_merge_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_merge_status_;
}

void IngestStore::MaybeAutoMerge() {
  bool want = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    want = options_.merge_segments > 0 &&
           frozen_.size() >= options_.merge_segments;
  }
  if (want) TriggerMerge();
}

uint64_t IngestStore::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

uint64_t IngestStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_.epoch;
}

}  // namespace rodb
