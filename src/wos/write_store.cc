#include "wos/write_store.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/bytes.h"
#include "obs/metrics.h"

namespace rodb {

Status WriteStore::Insert(const uint8_t* raw_tuple) {
  if (raw_tuple == nullptr) {
    return Status::InvalidArgument("null tuple");
  }
  data_.insert(data_.end(), raw_tuple, raw_tuple + tuple_width_);
  static obs::Counter* appends =
      obs::MetricsRegistry::Default().GetCounter("rodb.wos.appends");
  appends->Increment();
  return Status::OK();
}

Status WriteStore::SortBy(int attr_index) {
  if (attr_index < 0 ||
      static_cast<size_t>(attr_index) >= schema_.num_attributes()) {
    return Status::OutOfRange("sort attribute out of range");
  }
  if (schema_.attribute(static_cast<size_t>(attr_index)).type !=
      AttrType::kInt32) {
    return Status::InvalidArgument("sort attribute must be int32");
  }
  const int offset = schema_.attr_offset(static_cast<size_t>(attr_index));
  const uint64_t n = size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this, offset](uint32_t a, uint32_t b) {
                     return LoadLE32s(tuple(a) + offset) <
                            LoadLE32s(tuple(b) + offset);
                   });
  std::vector<uint8_t> sorted(data_.size());
  for (uint64_t i = 0; i < n; ++i) {
    std::memcpy(sorted.data() + i * tuple_width_, tuple(order[i]),
                tuple_width_);
  }
  data_ = std::move(sorted);
  return Status::OK();
}

}  // namespace rodb
