#include "wos/segment.h"

#include <cstring>

namespace rodb {

ActiveSegment::ActiveSegment(Schema schema, size_t chunk_tuples)
    : schema_(std::move(schema)),
      tuple_width_(static_cast<size_t>(schema_.raw_tuple_width())),
      chunk_tuples_(chunk_tuples == 0 ? 1 : chunk_tuples) {}

uint64_t ActiveSegment::Append(const uint8_t* raw_tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t slot = count_ % chunk_tuples_;
  if (slot == 0 && count_ == chunks_.size() * chunk_tuples_) {
    // Full-size allocation up front: the chunk never reallocates, so
    // pointers inside outstanding views stay valid forever.
    chunks_.push_back(
        std::make_shared<std::vector<uint8_t>>(chunk_tuples_ * tuple_width_));
  }
  std::memcpy(chunks_.back()->data() + slot * tuple_width_, raw_tuple,
              tuple_width_);
  return ++count_;
}

ActiveView ActiveSegment::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  ActiveView view;
  view.chunks_.assign(chunks_.begin(), chunks_.end());
  view.count_ = count_;
  view.tuple_width_ = tuple_width_;
  view.chunk_tuples_ = chunk_tuples_;
  return view;
}

void ActiveSegment::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  chunks_.clear();
  count_ = 0;
}

uint64_t ActiveSegment::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t ActiveSegment::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.size() * chunk_tuples_ * tuple_width_;
}

}  // namespace rodb
