#ifndef RODB_WOS_INGEST_STORE_H_
#define RODB_WOS_INGEST_STORE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/query_context.h"
#include "storage/catalog.h"
#include "storage/page.h"
#include "wos/manifest.h"
#include "wos/segment.h"

namespace rodb {

/// Tuning and test knobs for one ingest-attached table.
struct IngestOptions {
  /// int32 clustering key every segment and the ROS are sorted on.
  int sort_attr = 0;
  /// Layout/page size of frozen segments and ROS generations.
  Layout layout = Layout::kRow;
  size_t page_size = kDefaultPageSize;
  /// Auto-freeze the active segment once it holds this many tuples
  /// (0 = freeze only when Freeze() is called).
  uint64_t freeze_tuples = 64 * 1024;
  /// Auto-trigger a background merge once this many frozen segments
  /// accumulate (0 = merge only when Merge()/TriggerMerge() is called).
  size_t merge_segments = 4;
  /// Worker threads for the merge's read phase (ThreadPool::Shared());
  /// <= 1 reads inputs serially. The write phase is always one thread
  /// (a k-way merge is inherently sequential).
  int merge_parallelism = 1;
  /// Cap on the bytes one merge may materialize (its inputs are decoded
  /// to raw tuples); 0 = unlimited. A context passed to Merge() with its
  /// own budget (e.g. the engine's admission budget) takes precedence.
  uint64_t merge_memory_bytes = 0;
  /// Relative deadline for a background merge; zero = none.
  std::chrono::milliseconds merge_timeout{0};
  /// Fault-injection hook for the freeze/merge lifecycle: called at the
  /// named points "freeze.write", "freeze.commit", "merge.read",
  /// "merge.write", "merge.commit"; a non-OK return fails the step
  /// right there (and a blocking hook parks it there), which is how the
  /// crash-recovery and merge-never-blocks-ingest tests steer the
  /// lifecycle. Null = no-op.
  std::function<Status(std::string_view point)> fail_point;
};

/// An open table plus deferred file retirement: when a merge supersedes
/// a ROS generation or folds a frozen segment in, the old files must
/// outlive every snapshot still reading them. The lease is shared by
/// the store's published state and by all snapshots; MarkObsolete()
/// arms it, and the last owner's destructor removes the files.
class TableLease {
 public:
  TableLease(std::string dir, OpenTable table)
      : dir_(std::move(dir)), table_(std::move(table)) {}
  ~TableLease();
  TableLease(const TableLease&) = delete;
  TableLease& operator=(const TableLease&) = delete;

  const OpenTable& table() const { return table_; }
  void MarkObsolete() { obsolete_.store(true, std::memory_order_release); }

 private:
  std::string dir_;
  OpenTable table_;
  std::atomic<bool> obsolete_{false};
};

/// An epoch-pinned, immutable view of one ingest table: the ROS
/// generation, the frozen segments, any sealed-but-not-yet-persisted
/// in-memory segments, and the active segment up to its watermark at
/// acquisition. Reading the parts in that order visits every visible
/// tuple exactly once; because the writer appends in one total order
/// and freeze/merge preserve the multiset, the visible tuples are
/// always exactly the first visible_tuples() ever appended -- the
/// prefix property the snapshot-consistency oracle checks against.
///
/// Cheap to copy; holds leases, so table files it references stay on
/// disk until the last copy is gone.
class Snapshot {
 public:
  Snapshot() = default;

  /// Manifest epoch at acquisition (bumped by each freeze/merge commit).
  uint64_t epoch() const { return state_ == nullptr ? 0 : state_->epoch; }
  /// Total tuples this snapshot sees = the append-order prefix length.
  uint64_t visible_tuples() const { return visible_; }
  const Schema& schema() const { return state_->schema; }

  /// Current ROS generation, or null before the first merge commits.
  const OpenTable* ros() const {
    return state_ == nullptr || state_->ros == nullptr
               ? nullptr
               : &state_->ros->table();
  }
  size_t num_frozen() const {
    return state_ == nullptr ? 0 : state_->frozen.size();
  }
  /// Frozen segments, oldest first.
  const OpenTable& frozen(size_t i) const { return state_->frozen[i]->table(); }
  size_t num_sealed() const {
    return state_ == nullptr ? 0 : state_->sealed.size();
  }
  /// In-memory segments sealed by a freeze whose disk write has not
  /// committed yet, oldest first (newer than every frozen segment).
  const ActiveView& sealed(size_t i) const { return state_->sealed[i]; }
  const ActiveView& active() const { return active_; }

 private:
  friend class IngestStore;
  struct State {
    uint64_t epoch = 0;
    Schema schema;
    std::shared_ptr<TableLease> ros;
    std::vector<std::shared_ptr<TableLease>> frozen;
    std::vector<ActiveView> sealed;
    /// Tuples in ros + frozen + sealed (everything but the active
    /// segment).
    uint64_t base_tuples = 0;
  };
  std::shared_ptr<const State> state_;
  ActiveView active_;
  uint64_t visible_ = 0;
};

/// The continuous-ingest lifecycle for one table (Figure 1's dashed
/// write-optimized store grown into a segment pipeline):
///
///   Append --> active (in-memory, chunked)
///     Freeze: seal active, sort by the clustering key, write an
///             immutable frozen segment table `<table>__seg<N>` with
///             the normal TableWriter/codec/zone-map machinery, commit
///             it into the manifest
///     Merge:  k-way-merge ROS + frozen segments into a new generation
///             `<table>__gen<G>`, commit by one atomic manifest swap,
///             retire the inputs once the last snapshot drains
///
/// Appends never wait for a running merge: the merge reads and writes
/// table files without the state lock, and takes it only for the
/// pointer swaps that publish its result. Readers call Acquire() and
/// scan the snapshot; consistency is by construction (immutable parts +
/// watermark), not by blocking.
///
/// Thread-safe: one logical writer (Append/Freeze may be called from
/// any thread but are internally serialized), any number of concurrent
/// Acquire()s, at most one merge in flight.
class IngestStore {
 public:
  /// Creates the table's manifest (first open) or recovers from the
  /// last committed one: referenced tables are opened, unreferenced
  /// `<table>__seg*` / `<table>__gen*` leftovers of a crashed freeze or
  /// merge are swept away. The active segment always starts empty --
  /// like the paper's WOS it is volatile.
  static Result<std::unique_ptr<IngestStore>> Open(
      const std::string& dir, const std::string& table, const Schema& schema,
      const IngestOptions& options = {});

  /// Waits for an in-flight background merge.
  ~IngestStore();
  IngestStore(const IngestStore&) = delete;
  IngestStore& operator=(const IngestStore&) = delete;

  /// Appends one raw tuple (attribute bytes back to back). May trigger
  /// an auto-freeze (inline) and an auto-merge (background).
  Status Append(const uint8_t* raw_tuple);
  /// Appends `count` tuples stored back to back.
  Status AppendBatch(const uint8_t* raw_tuples, uint64_t count);

  /// Epoch-pinned read view; never blocks on freeze or merge I/O.
  Snapshot Acquire() const;

  /// Persists every sealed in-memory segment (sealing the active one
  /// first if non-empty) as frozen segment tables, committing each into
  /// the manifest. On failure the unsealed tail stays in memory and
  /// visible; a later Freeze() retries.
  Status Freeze();

  /// Synchronously merges the current ROS + frozen segments into the
  /// next generation. No-op when there is nothing to fold. `context`
  /// carries deadline/cancellation and (optionally) the memory budget
  /// the materialized inputs are reserved against.
  Status Merge(const QueryContext* context = nullptr);

  /// Starts Merge() on the shared thread pool unless one is already in
  /// flight; returns whether a merge was started. The merge's context
  /// gets options().merge_timeout and a private budget of
  /// options().merge_memory_bytes.
  bool TriggerMerge();
  /// Blocks until no background merge is in flight.
  void WaitMergeIdle();
  /// Status of the most recently finished merge (OK if none ran).
  Status last_merge_status() const;

  uint64_t appended() const;
  uint64_t epoch() const;
  const Schema& schema() const { return schema_; }
  const std::string& table() const { return table_; }
  const std::string& dir() const { return dir_; }
  const IngestOptions& options() const { return options_; }

 private:
  IngestStore(std::string dir, std::string table, Schema schema,
              IngestOptions options);

  Status CheckFail(std::string_view point) const {
    return options_.fail_point == nullptr ? Status::OK()
                                          : options_.fail_point(point);
  }
  /// Freeze body (freeze_mu_ held).
  Status FreezeLocked();
  /// Rebuilds the published state from the locked fields (mu_ held).
  void PublishLocked();
  /// Seals the active segment into the sealed queue (mu_ held); returns
  /// whether anything was sealed.
  bool SealActiveLocked();
  /// Writes the oldest sealed segment as `<table>__seg<id>` and commits
  /// it (freeze_mu_ held).
  Status PersistOldestSealed();
  Status MergeLocked(const QueryContext* context);
  void MaybeAutoMerge();

  const std::string dir_;
  const std::string table_;
  const Schema schema_;
  const IngestOptions options_;
  const size_t tuple_width_;

  /// Serializes freezes (seal + segment write + commit) against each
  /// other; never held while waiting on a merge.
  std::mutex freeze_mu_;
  /// Serializes merges. Appends and Acquire never take it.
  std::mutex merge_mu_;
  /// Serializes manifest read-modify-write commits (freeze vs merge).
  std::mutex commit_mu_;

  /// Guards everything below; held only for in-memory work (appends,
  /// snapshot acquisition, state swaps) -- never across file I/O.
  mutable std::mutex mu_;
  mutable std::condition_variable merge_cv_;
  IngestManifest manifest_;
  std::shared_ptr<ActiveSegment> active_;
  /// Sealed in-memory segments awaiting persistence, oldest first.
  std::vector<std::shared_ptr<ActiveSegment>> sealed_;
  std::shared_ptr<TableLease> ros_;
  std::vector<std::shared_ptr<TableLease>> frozen_;
  std::shared_ptr<const Snapshot::State> state_;
  uint64_t appended_ = 0;
  bool merge_inflight_ = false;
  bool shutdown_ = false;
  Status last_merge_status_;
};

}  // namespace rodb

#endif  // RODB_WOS_INGEST_STORE_H_
