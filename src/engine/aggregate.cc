#include "engine/aggregate.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/bytes.h"
#include "common/macros.h"
#include "obs/span.h"

namespace rodb {

std::string_view AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

BlockLayout AggOutputLayout(const AggPlan& plan) {
  std::vector<int> widths;
  if (plan.group_column >= 0) widths.push_back(4);
  for (size_t i = 0; i < plan.aggs.size(); ++i) widths.push_back(8);
  return BlockLayout::FromWidths(widths);
}

AggAccumulator::AggAccumulator(const std::vector<AggSpec>* aggs)
    : aggs_(aggs), acc_(aggs->size()) {
  Reset();
}

void AggAccumulator::Reset() {
  count_ = 0;
  for (size_t i = 0; i < aggs_->size(); ++i) {
    switch ((*aggs_)[i].func) {
      case AggFunc::kMin:
        acc_[i] = std::numeric_limits<int64_t>::max();
        break;
      case AggFunc::kMax:
        acc_[i] = std::numeric_limits<int64_t>::min();
        break;
      default:
        acc_[i] = 0;
        break;
    }
  }
}

void AggAccumulator::Update(const TupleBlock& block, uint32_t row) {
  ++count_;
  for (size_t i = 0; i < aggs_->size(); ++i) {
    const AggSpec& spec = (*aggs_)[i];
    if (spec.func == AggFunc::kCount) continue;
    const int64_t v =
        LoadLE32s(block.attr(row, static_cast<size_t>(spec.column)));
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        acc_[i] += v;
        break;
      case AggFunc::kMin:
        acc_[i] = std::min(acc_[i], v);
        break;
      case AggFunc::kMax:
        acc_[i] = std::max(acc_[i], v);
        break;
      case AggFunc::kCount:
        break;
    }
  }
}

void AggAccumulator::Emit(uint8_t* out) const {
  for (size_t i = 0; i < aggs_->size(); ++i) {
    int64_t v = 0;
    switch ((*aggs_)[i].func) {
      case AggFunc::kCount:
        v = count_;
        break;
      case AggFunc::kAvg:
        v = count_ == 0 ? 0 : acc_[i] / count_;
        break;
      default:
        v = acc_[i];
        break;
    }
    StoreLE64(out + 8 * i, static_cast<uint64_t>(v));
  }
}

namespace {

Status ValidateAggPlan(const AggPlan& plan, const BlockLayout& in) {
  if (plan.aggs.empty()) {
    return Status::InvalidArgument("aggregation needs at least one aggregate");
  }
  if (plan.group_column >= 0) {
    if (static_cast<size_t>(plan.group_column) >= in.num_attrs()) {
      return Status::OutOfRange("group column out of range");
    }
    if (in.widths[static_cast<size_t>(plan.group_column)] != 4) {
      return Status::InvalidArgument("group column must be int32");
    }
  }
  for (const AggSpec& spec : plan.aggs) {
    if (spec.func == AggFunc::kCount) continue;
    if (spec.column < 0 || static_cast<size_t>(spec.column) >= in.num_attrs()) {
      return Status::OutOfRange("aggregate column out of range");
    }
    if (in.widths[static_cast<size_t>(spec.column)] != 4) {
      return Status::InvalidArgument("aggregate input must be int32");
    }
  }
  return Status::OK();
}

}  // namespace

// --- HashAggOperator ---

HashAggOperator::HashAggOperator(OperatorPtr child, AggPlan plan,
                                 ExecStats* stats)
    : child_(std::move(child)), plan_(std::move(plan)), stats_(stats),
      block_(AggOutputLayout(plan_)) {}

Result<OperatorPtr> HashAggOperator::Make(OperatorPtr child, AggPlan plan,
                                          ExecStats* stats) {
  if (child == nullptr || stats == nullptr) {
    return Status::InvalidArgument("HashAggOperator: null dependency");
  }
  RODB_RETURN_IF_ERROR(ValidateAggPlan(plan, child->output_layout()));
  return OperatorPtr(
      new HashAggOperator(std::move(child), std::move(plan), stats));
}

Status HashAggOperator::Open() { return child_->Open(); }

Status HashAggOperator::Consume() {
  ExecCounters& c = stats_->counters();
  std::unordered_map<int32_t, size_t> index;
  while (true) {
    RODB_ASSIGN_OR_RETURN(TupleBlock * in, child_->Next());
    if (in == nullptr) break;
    for (uint32_t i = 0; i < in->size(); ++i) {
      c.operator_tuples += 1;
      int32_t key = 0;
      if (plan_.group_column >= 0) {
        key = LoadLE32s(in->attr(i, static_cast<size_t>(plan_.group_column)));
      }
      c.hash_ops += 1;
      auto [it, inserted] = index.emplace(key, groups_.size());
      if (inserted) {
        groups_.emplace_back(key, AggAccumulator(&plan_.aggs));
      }
      groups_[it->second].second.Update(*in, i);
    }
  }
  consumed_ = true;
  return Status::OK();
}

Result<TupleBlock*> HashAggOperator::Next() {
  obs::SpanTimer span(stats_->trace(), obs::TracePhase::kAggregate);
  if (!consumed_) RODB_RETURN_IF_ERROR(Consume());
  if (emit_index_ >= groups_.size()) return static_cast<TupleBlock*>(nullptr);
  block_.Clear();
  const BlockLayout& layout = block_.layout();
  while (!block_.full() && emit_index_ < groups_.size()) {
    uint8_t* slot = block_.AppendSlot();
    const auto& [key, acc] = groups_[emit_index_++];
    size_t offset = 0;
    if (plan_.group_column >= 0) {
      StoreLE32s(slot, key);
      offset = 1;
    }
    acc.Emit(slot + layout.offsets[offset]);
  }
  stats_->counters().blocks_emitted += 1;
  return &block_;
}

void HashAggOperator::Close() { child_->Close(); }

// --- SortAggOperator ---

SortAggOperator::SortAggOperator(OperatorPtr child, AggPlan plan,
                                 ExecStats* stats)
    : child_(std::move(child)), plan_(std::move(plan)), stats_(stats),
      block_(AggOutputLayout(plan_)) {}

Result<OperatorPtr> SortAggOperator::Make(OperatorPtr child, AggPlan plan,
                                          ExecStats* stats) {
  if (child == nullptr || stats == nullptr) {
    return Status::InvalidArgument("SortAggOperator: null dependency");
  }
  RODB_RETURN_IF_ERROR(ValidateAggPlan(plan, child->output_layout()));
  return OperatorPtr(
      new SortAggOperator(std::move(child), std::move(plan), stats));
}

Status SortAggOperator::Open() { return child_->Open(); }

Status SortAggOperator::Consume() {
  ExecCounters& c = stats_->counters();
  // Buffer (key, agg inputs) rows.
  while (true) {
    RODB_ASSIGN_OR_RETURN(TupleBlock * in, child_->Next());
    if (in == nullptr) break;
    for (uint32_t i = 0; i < in->size(); ++i) {
      c.operator_tuples += 1;
      std::vector<int32_t> row;
      row.reserve(1 + plan_.aggs.size());
      row.push_back(
          plan_.group_column >= 0
              ? LoadLE32s(in->attr(i, static_cast<size_t>(plan_.group_column)))
              : 0);
      for (const AggSpec& spec : plan_.aggs) {
        row.push_back(spec.func == AggFunc::kCount
                          ? 0
                          : LoadLE32s(in->attr(
                                i, static_cast<size_t>(spec.column))));
      }
      rows_.push_back(std::move(row));
    }
  }
  uint64_t comparisons = 0;
  std::sort(rows_.begin(), rows_.end(),
            [&comparisons](const std::vector<int32_t>& a,
                           const std::vector<int32_t>& b) {
              ++comparisons;
              return a[0] < b[0];
            });
  c.sort_comparisons += comparisons;
  consumed_ = true;
  return Status::OK();
}

Result<TupleBlock*> SortAggOperator::Next() {
  obs::SpanTimer span(stats_->trace(), obs::TracePhase::kAggregate);
  if (!consumed_) RODB_RETURN_IF_ERROR(Consume());
  if (emit_index_ >= rows_.size()) return static_cast<TupleBlock*>(nullptr);
  ExecCounters& c = stats_->counters();
  block_.Clear();
  const BlockLayout& layout = block_.layout();
  while (!block_.full() && emit_index_ < rows_.size()) {
    // Fold the run of equal keys starting at emit_index_.
    const int32_t key = rows_[emit_index_][0];
    int64_t count = 0;
    std::vector<int64_t> acc(plan_.aggs.size());
    for (size_t i = 0; i < plan_.aggs.size(); ++i) {
      acc[i] = plan_.aggs[i].func == AggFunc::kMin
                   ? std::numeric_limits<int64_t>::max()
               : plan_.aggs[i].func == AggFunc::kMax
                   ? std::numeric_limits<int64_t>::min()
                   : 0;
    }
    while (emit_index_ < rows_.size() && rows_[emit_index_][0] == key) {
      const std::vector<int32_t>& row = rows_[emit_index_];
      ++count;
      for (size_t i = 0; i < plan_.aggs.size(); ++i) {
        const int64_t v = row[1 + i];
        switch (plan_.aggs[i].func) {
          case AggFunc::kSum:
          case AggFunc::kAvg:
            acc[i] += v;
            break;
          case AggFunc::kMin:
            acc[i] = std::min(acc[i], v);
            break;
          case AggFunc::kMax:
            acc[i] = std::max(acc[i], v);
            break;
          case AggFunc::kCount:
            break;
        }
      }
      ++emit_index_;
    }
    uint8_t* slot = block_.AppendSlot();
    size_t offset = 0;
    if (plan_.group_column >= 0) {
      StoreLE32s(slot, key);
      offset = 1;
    }
    for (size_t i = 0; i < plan_.aggs.size(); ++i) {
      int64_t v = 0;
      switch (plan_.aggs[i].func) {
        case AggFunc::kCount:
          v = count;
          break;
        case AggFunc::kAvg:
          v = count == 0 ? 0 : acc[i] / count;
          break;
        default:
          v = acc[i];
          break;
      }
      StoreLE64(slot + layout.offsets[offset + i], static_cast<uint64_t>(v));
    }
  }
  c.blocks_emitted += 1;
  return &block_;
}

void SortAggOperator::Close() { child_->Close(); }

}  // namespace rodb
