#ifndef RODB_ENGINE_SCAN_SPEC_H_
#define RODB_ENGINE_SCAN_SPEC_H_

#include <vector>

#include "engine/predicate.h"
#include "engine/tuple_block.h"
#include "io/io.h"

namespace rodb {

/// What a table scan computes: `select <projection> from T where
/// <predicates>` -- the query template the whole performance study varies
/// (Section 4). Predicate attribute indices refer to the table schema.
///
/// Predicates are a conjunction, evaluated in the given order; the column
/// scanner builds one pipelined scan node per distinct predicate attribute
/// in that order, deepest first ("we push scan nodes that yield few
/// qualifying tuples as deep as possible"), followed by one node per
/// remaining projected column.
struct ScanSpec {
  std::vector<int> projection;       ///< table attr indices, output order
  std::vector<Predicate> predicates; ///< conjunctive SARGable predicates
  size_t io_unit_bytes = 128 * 1024; ///< I/O request granularity
  int prefetch_depth = 48;           ///< I/O units kept in flight
  uint32_t block_tuples = kDefaultBlockTuples;
  /// Page range of the table to scan, for partitioned (degree-of-
  /// parallelism) plans over single-file layouts (row, PAX). The default
  /// scans everything. Column tables reject ranges: their files disagree
  /// on what a page range means.
  uint64_t first_page = 0;
  uint64_t num_pages = UINT64_MAX;
  /// Tuple-position range of the table to scan ([first_row, first_row +
  /// num_rows)), the column-layout counterpart of the page range above:
  /// each pipelined scan node maps the position range onto its own file's
  /// pages, which requires every involved file to have uniform page value
  /// counts (TableMeta::PageValues). Row and PAX scans reject position
  /// ranges -- use the page range. The default scans everything.
  uint64_t first_row = 0;
  uint64_t num_rows = UINT64_MAX;
  /// Evaluate =/!= predicates on dictionary columns directly against the
  /// compressed codes, materializing values only for qualifying tuples
  /// that the projection needs ("operating directly on compressed data",
  /// the column-store advantage the paper's conclusion cites). Currently
  /// honored by the pipelined ColumnScanner.
  bool compressed_eval = true;
  /// Verify every page's CRC-32 before decoding it. Off on the hot path
  /// (as in any engine); turned on by verification tools and by the
  /// fault-injecting fuzz runs, where silent payload corruption must
  /// surface as Status::Corruption instead of decoded garbage.
  bool verify_checksums = false;
};

/// The distinct table attributes a column scan must read, in pipeline
/// order: predicate attributes first (in predicate order), then the
/// remaining projected attributes. Also the set of column files the scan
/// opens, which drives the I/O model's stream list.
inline std::vector<size_t> ScanPipelineAttrs(const ScanSpec& spec) {
  std::vector<size_t> attrs;
  auto add = [&attrs](size_t a) {
    for (size_t seen : attrs) {
      if (seen == a) return;
    }
    attrs.push_back(a);
  };
  for (const Predicate& pred : spec.predicates) {
    add(static_cast<size_t>(pred.attr_index()));
  }
  for (int attr : spec.projection) add(static_cast<size_t>(attr));
  return attrs;
}

}  // namespace rodb

#endif  // RODB_ENGINE_SCAN_SPEC_H_
