#ifndef RODB_ENGINE_SCAN_SPEC_H_
#define RODB_ENGINE_SCAN_SPEC_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "engine/predicate.h"
#include "engine/scan_range.h"
#include "engine/tuple_block.h"
#include "io/read_options.h"

namespace rodb {

/// What a table scan computes: `select <projection> from T where
/// <predicates>` -- the query template the whole performance study varies
/// (Section 4). Predicate attribute indices refer to the table schema.
///
/// Predicates are a conjunction, evaluated in the given order; the column
/// scanner builds one pipelined scan node per distinct predicate attribute
/// in that order, deepest first ("we push scan nodes that yield few
/// qualifying tuples as deep as possible"), followed by one node per
/// remaining projected column.
struct ScanSpec {
  std::vector<int> projection;       ///< table attr indices, output order
  std::vector<Predicate> predicates; ///< conjunctive SARGable predicates
  /// How to read: I/O unit size, prefetch depth, checksum verification,
  /// optional block cache. The same struct IoOptions carries, so these
  /// knobs flow to the backend without per-field copying. A stats sink
  /// set here is ignored by scanners (they substitute their own ExecStats
  /// record; see ReadOptions::stats).
  ReadOptions read;
  /// Which slice of the table to scan (page range for row/PAX, position
  /// range for column, default everything); see engine/scan_range.h.
  ScanRange range;
  uint32_t block_tuples = kDefaultBlockTuples;
  /// Evaluate =/!= predicates on dictionary columns directly against the
  /// compressed codes, materializing values only for qualifying tuples
  /// that the projection needs ("operating directly on compressed data",
  /// the column-store advantage the paper's conclusion cites). Currently
  /// honored by the pipelined ColumnScanner.
  bool compressed_eval = true;
  /// Run SARGable predicates through the batched scan kernels
  /// (src/kernels/): whole pages are filtered into a selection mask
  /// without materializing values, and later predicates skip masked-out
  /// words entirely. Predicates a codec cannot bind (and pages entered
  /// mid-way by an unaligned morsel) fall back to the scalar path; set
  /// false to force value-at-a-time evaluation everywhere. Dictionary
  /// predicates additionally require `compressed_eval` (the kernel
  /// compares codes, which IS compressed evaluation).
  bool vectorized = true;
  /// Consult the table's zone-map synopsis (storage/synopsis.h) through
  /// engine/zone_pruner.h and skip whole pages -- before their I/O is
  /// ever issued -- whose min/max zones (or dictionary presence bitmaps)
  /// prove no tuple can satisfy the predicate conjunction. Pruned and
  /// unpruned scans return identical tuples; only the I/O and parse
  /// counters shrink. Off by default: tables without a (valid) synopsis,
  /// predicate-free scans, kCharPack predicate columns and non-uniform
  /// page files all decline pruning and scan normally anyway.
  bool prune = false;
};

/// The distinct table attributes a column scan must read, in pipeline
/// order: predicate attributes first (in predicate order), then the
/// remaining projected attributes. Also the set of column files the scan
/// opens, which drives the I/O model's stream list.
inline std::vector<size_t> ScanPipelineAttrs(const ScanSpec& spec) {
  // Order-preserving dedup in O(n log n): tag each mention with its
  // first-occurrence index, sort by attribute to find duplicates, keep
  // the earliest mention of each, then restore pipeline order.
  std::vector<std::pair<size_t, size_t>> mentions;  // (attr, position)
  mentions.reserve(spec.predicates.size() + spec.projection.size());
  for (const Predicate& pred : spec.predicates) {
    mentions.emplace_back(static_cast<size_t>(pred.attr_index()),
                          mentions.size());
  }
  for (int attr : spec.projection) {
    mentions.emplace_back(static_cast<size_t>(attr), mentions.size());
  }
  std::sort(mentions.begin(), mentions.end());
  size_t kept = 0;
  for (size_t i = 0; i < mentions.size(); ++i) {
    if (i == 0 || mentions[i].first != mentions[kept - 1].first) {
      mentions[kept++] = mentions[i];
    }
  }
  mentions.resize(kept);
  std::sort(mentions.begin(), mentions.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<size_t> attrs;
  attrs.reserve(mentions.size());
  for (const auto& mention : mentions) attrs.push_back(mention.first);
  return attrs;
}

}  // namespace rodb

#endif  // RODB_ENGINE_SCAN_SPEC_H_
