#ifndef RODB_ENGINE_TUPLE_BLOCK_H_
#define RODB_ENGINE_TUPLE_BLOCK_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "storage/schema.h"

namespace rodb {

/// Tuples per block. Chosen so a block fits in the 16KB L1 data cache
/// (Section 2.2.3: "we use blocks of 100 tuples").
inline constexpr uint32_t kDefaultBlockTuples = 100;

/// Physical layout of the tuples inside a block: fixed-width attributes
/// back to back. Operators are agnostic about the database schema and see
/// only this geometry.
struct BlockLayout {
  std::vector<int> widths;
  std::vector<int> offsets;
  int tuple_width = 0;

  static BlockLayout FromWidths(const std::vector<int>& widths);
  /// Layout of the given attributes of `schema`, in the given order.
  static BlockLayout FromSchema(const Schema& schema,
                                const std::vector<int>& attr_indices);

  size_t num_attrs() const { return widths.size(); }
  bool operator==(const BlockLayout& o) const {
    return widths == o.widths;  // offsets/width are derived
  }
};

/// A reusable array of tuples passed between operators (the pull-based
/// block-iterator model of Figure 4). Blocks optionally carry a parallel
/// array of row positions ({position, value} pairs of the pipelined
/// column scanner). No memory is allocated during query execution: blocks
/// are sized once and reused.
class TupleBlock {
 public:
  TupleBlock(BlockLayout layout, uint32_t capacity = kDefaultBlockTuples)
      : layout_(std::move(layout)), capacity_(capacity),
        data_(static_cast<size_t>(capacity) *
              static_cast<size_t>(layout_.tuple_width)),
        positions_(capacity) {}

  const BlockLayout& layout() const { return layout_; }
  uint32_t size() const { return size_; }
  uint32_t capacity() const { return capacity_; }
  bool full() const { return size_ == capacity_; }
  bool empty() const { return size_ == 0; }

  uint8_t* tuple(uint32_t i) {
    return data_.data() +
           static_cast<size_t>(i) * static_cast<size_t>(layout_.tuple_width);
  }
  const uint8_t* tuple(uint32_t i) const {
    return data_.data() +
           static_cast<size_t>(i) * static_cast<size_t>(layout_.tuple_width);
  }
  uint8_t* attr(uint32_t i, size_t a) {
    return tuple(i) + layout_.offsets[a];
  }
  const uint8_t* attr(uint32_t i, size_t a) const {
    return tuple(i) + layout_.offsets[a];
  }

  /// Appends an empty tuple slot and returns it (caller fills it in).
  uint8_t* AppendSlot() { return tuple(size_++); }

  void Clear() { size_ = 0; }
  /// Sets the tuple count directly (used by in-place column fills).
  void set_size(uint32_t n) { size_ = n; }

  uint64_t position(uint32_t i) const { return positions_[i]; }
  void set_position(uint32_t i, uint64_t pos) { positions_[i] = pos; }

 private:
  BlockLayout layout_;
  uint32_t capacity_;
  uint32_t size_ = 0;
  std::vector<uint8_t> data_;
  std::vector<uint64_t> positions_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_TUPLE_BLOCK_H_
