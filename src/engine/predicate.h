#ifndef RODB_ENGINE_PREDICATE_H_
#define RODB_ENGINE_PREDICATE_H_

#include <cstdint>
#include <string>

#include "common/compare.h"
#include "storage/schema.h"

namespace rodb {

/// A SARGable comparison of one attribute against a constant -- the only
/// predicate form the paper's scanners apply (Section 2.2.3). Evaluation
/// happens on raw (decoded) attribute bytes, so the same predicate object
/// works against row pages, column values and operator blocks.
class Predicate {
 public:
  /// attr_index is relative to the table schema (for scanners) or to the
  /// block layout (for the Filter operator).
  static Predicate Int32(int attr_index, CompareOp op, int32_t operand);
  /// Text comparison is byte-wise over the fixed width.
  static Predicate Text(int attr_index, CompareOp op, std::string operand);

  int attr_index() const { return attr_index_; }
  CompareOp op() const { return op_; }
  bool is_text() const { return is_text_; }
  int32_t int_operand() const { return int_operand_; }
  const std::string& text_operand() const { return text_operand_; }

  /// Evaluates against the raw bytes of the attribute value.
  bool Eval(const uint8_t* value) const;

  /// Re-targets the predicate at a different index (e.g. from table attr
  /// index to block column index).
  Predicate WithIndex(int attr_index) const {
    Predicate p = *this;
    p.attr_index_ = attr_index;
    return p;
  }

 private:
  int attr_index_ = 0;
  CompareOp op_ = CompareOp::kEq;
  bool is_text_ = false;
  int32_t int_operand_ = 0;
  std::string text_operand_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_PREDICATE_H_
