#include "engine/row_scanner.h"

#include "common/macros.h"
#include "engine/scanner_io.h"
#include "obs/span.h"

namespace rodb {

RowScanner::RowScanner(const OpenTable* table, ScanSpec spec,
                       IoBackend* backend, ExecStats* stats,
                       BlockLayout layout)
    : table_(table), spec_(std::move(spec)), backend_(backend), stats_(stats),
      block_(std::move(layout), spec_.block_tuples) {}

Result<OperatorPtr> RowScanner::Make(const OpenTable* table, ScanSpec spec,
                                     IoBackend* backend, ExecStats* stats) {
  if (table == nullptr || backend == nullptr || stats == nullptr) {
    return Status::InvalidArgument("RowScanner: null dependency");
  }
  if (table->meta().layout != Layout::kRow) {
    return Status::InvalidArgument("RowScanner requires a row-layout table");
  }
  const Schema& schema = table->schema();
  if (spec.projection.empty()) {
    return Status::InvalidArgument("scan projection must not be empty");
  }
  for (int attr : spec.projection) {
    if (attr < 0 || static_cast<size_t>(attr) >= schema.num_attributes()) {
      return Status::OutOfRange("projection attribute out of range");
    }
  }
  for (const Predicate& pred : spec.predicates) {
    if (pred.attr_index() < 0 ||
        static_cast<size_t>(pred.attr_index()) >= schema.num_attributes()) {
      return Status::OutOfRange("predicate attribute out of range");
    }
  }
  if (spec.read.io_unit_bytes % table->meta().page_size != 0) {
    return Status::InvalidArgument(
        "I/O unit must be a multiple of the page size");
  }
  RODB_RETURN_IF_ERROR(spec.range.Validate(Layout::kRow));
  BlockLayout layout = BlockLayout::FromSchema(schema, spec.projection);
  std::unique_ptr<RowScanner> scanner(new RowScanner(
      table, std::move(spec), backend, stats, std::move(layout)));
  scanner->backend_ = ScanBackendStack(backend, scanner->spec_, stats,
                                       &scanner->owned_backends_);
  RODB_ASSIGN_OR_RETURN(scanner->codec_bundle_, table->MakeRowCodec());
  scanner->scratch_.resize(
      static_cast<size_t>(schema.raw_tuple_width()));
  // Pre-compute the per-tuple decode event profile for the counters.
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    switch (schema.attribute(i).codec.kind) {
      case CompressionKind::kBitPack:
        ++scanner->per_tuple_decode_.values_decoded_bitpack;
        break;
      case CompressionKind::kDict:
      case CompressionKind::kCharPack:
        ++scanner->per_tuple_decode_.values_decoded_dict;
        break;
      case CompressionKind::kFor:
        ++scanner->per_tuple_decode_.values_decoded_for;
        break;
      case CompressionKind::kForDelta:
        ++scanner->per_tuple_decode_.values_decoded_fordelta;
        break;
      case CompressionKind::kNone:
        break;
    }
  }
  for (int attr : scanner->spec_.projection) {
    scanner->projected_bytes_ +=
        schema.attribute(static_cast<size_t>(attr)).width;
  }
  return OperatorPtr(std::move(scanner));
}

Status RowScanner::Open() {
  if (opened_) return Status::OK();
  plan_ = BuildPrunePlan(*table_, spec_);
  plan_.AddCountersTo(&stats_->counters());
  IoOptions options = ScanStreamOptions(spec_, stats_, *table_, 0);
  if (plan_.active) {
    // Stream only the retained page runs; positions are recovered from
    // each view's absolute file offset in AdvancePage.
    RODB_ASSIGN_OR_RETURN(
        stream_,
        OpenMultiRunStream(backend_, table_->FilePath(0), options,
                           ByteRunsForPages(plan_.nodes[0].page_runs,
                                            table_->meta().page_size,
                                            table_->FileBytes(0)),
                           table_->FileBytes(0)));
    opened_ = true;
    return Status::OK();
  }
  options.start_offset = spec_.range.first_page() * table_->meta().page_size;
  if (spec_.range.num_pages() != UINT64_MAX) {
    options.length = spec_.range.num_pages() * table_->meta().page_size;
  }
  // Absolute tuple positions for partitioned scans, when the page->tuple
  // mapping is known; otherwise positions are morsel-local (they never
  // feed the output checksum).
  next_position_ = spec_.range.first_page() * table_->meta().PageValues(0);
  RODB_ASSIGN_OR_RETURN(stream_,
                        backend_->OpenStream(table_->FilePath(0), options));
  opened_ = true;
  return Status::OK();
}

Status RowScanner::AdvancePage() {
  while (true) {
    // Page-boundary liveness check: a cancelled or expired query stops
    // within one page's worth of work.
    RODB_RETURN_IF_ERROR(stats_->CheckAlive());
    if (page_in_view_ >= pages_in_view_) {
      {
        obs::SpanTimer io_span(stats_->trace(), obs::TracePhase::kIo);
        RODB_ASSIGN_OR_RETURN(view_, stream_->Next());
      }
      if (view_.size == 0) {
        eof_ = true;
        return CheckScanComplete();
      }
      pages_in_view_ = view_.size / table_->meta().page_size;
      page_in_view_ = 0;
      if (pages_in_view_ == 0) {
        return Status::Corruption("I/O unit smaller than one page");
      }
    }
    if (plan_.active) {
      // Views from a pruned (gapped) stream carry their absolute file
      // offset; recover the page's first tuple position from it.
      const uint64_t file_page =
          view_.file_offset / table_->meta().page_size + page_in_view_;
      next_position_ = file_page * table_->meta().PageValues(0);
    }
    const uint8_t* page_data =
        view_.data + page_in_view_ * table_->meta().page_size;
    ++page_in_view_;
    RODB_ASSIGN_OR_RETURN(
        RowPageReader reader,
        RowPageReader::Open(page_data, table_->meta().page_size,
                            &table_->schema(),
                            codec_bundle_.row_codec.get(),
                            spec_.read.verify_checksums));
    stats_->counters().pages_parsed += 1;
    pages_scanned_ += 1;
    tuples_scanned_ += reader.count();
    // A row scan streams the full page through the cache hierarchy.
    stats_->AddSequentialBytes(table_->meta().page_size);
    page_.emplace(reader);
    tuple_in_page_ = 0;
    if (page_->count() > 0) return Status::OK();
    // Empty page: keep advancing.
  }
}

Status RowScanner::CheckScanComplete() const {
  const TableMeta& meta = table_->meta();
  if (plan_.active) {
    // A pruned stream must deliver exactly the retained pages; the
    // whole-table tuple count check no longer applies.
    if (pages_scanned_ != plan_.nodes[0].pages) {
      return Status::Corruption(
          "pruned row scan read " + std::to_string(pages_scanned_) + " of " +
          std::to_string(plan_.nodes[0].pages) + " retained pages");
    }
    return Status::OK();
  }
  const uint64_t total_pages = meta.file_pages.empty() ? 0
                                                       : meta.file_pages[0];
  const uint64_t first_page = spec_.range.first_page();
  const uint64_t avail =
      first_page < total_pages ? total_pages - first_page : 0;
  const uint64_t expected_pages = std::min(spec_.range.num_pages(), avail);
  if (pages_scanned_ != expected_pages) {
    return Status::Corruption(
        "row file ended early: scanned " + std::to_string(pages_scanned_) +
        " of " + std::to_string(expected_pages) + " expected pages");
  }
  if (spec_.range.is_all() && tuples_scanned_ != meta.num_tuples) {
    return Status::Corruption(
        "row table holds " + std::to_string(tuples_scanned_) +
        " tuples but the catalog claims " + std::to_string(meta.num_tuples));
  }
  return Status::OK();
}

void RowScanner::ProcessCurrentPage() {
  const Schema& schema = table_->schema();
  ExecCounters& c = stats_->counters();
  const bool compressed = schema.is_compressed();
  while (!block_.full() && tuple_in_page_ < page_->count()) {
    const uint8_t* raw;
    if (compressed) {
      page_->DecodeNext(scratch_.data());
      raw = scratch_.data();
      c += per_tuple_decode_;
    } else {
      raw = page_->TupleAt(tuple_in_page_);
    }
    const uint64_t position = next_position_++;
    ++tuple_in_page_;
    c.tuples_examined += 1;
    bool pass = true;
    for (const Predicate& pred : spec_.predicates) {
      c.predicate_evals += 1;
      const uint8_t* value =
          raw + schema.attr_offset(static_cast<size_t>(pred.attr_index()));
      if (!pred.Eval(value)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    uint8_t* slot = block_.AppendSlot();
    const BlockLayout& layout = block_.layout();
    for (size_t i = 0; i < spec_.projection.size(); ++i) {
      const size_t attr = static_cast<size_t>(spec_.projection[i]);
      std::memcpy(slot + layout.offsets[i],
                  raw + schema.attr_offset(attr),
                  static_cast<size_t>(layout.widths[i]));
    }
    block_.set_position(block_.size() - 1, position);
    c.values_copied += spec_.projection.size();
    c.bytes_copied += static_cast<uint64_t>(projected_bytes_);
  }
}

Result<TupleBlock*> RowScanner::Next() {
  if (!opened_) return Status::InvalidArgument("RowScanner not opened");
  obs::SpanTimer scan_span(stats_->trace(), obs::TracePhase::kScan);
  block_.Clear();
  while (!block_.full() && !eof_) {
    if (!page_.has_value() || tuple_in_page_ >= page_->count()) {
      RODB_RETURN_IF_ERROR(AdvancePage());
      if (eof_) break;
    }
    ProcessCurrentPage();
  }
  if (block_.empty()) {
    stats_->FoldIo();
    return static_cast<TupleBlock*>(nullptr);
  }
  stats_->counters().blocks_emitted += 1;
  return &block_;
}

void RowScanner::Close() {
  stats_->FoldIo();
  stream_.reset();
  page_.reset();
}

}  // namespace rodb
