#include "engine/query_context.h"

#include "obs/metrics.h"

namespace rodb {

namespace {

void ReportOnce(const std::shared_ptr<std::atomic<bool>>& reported,
                const char* metric) {
  bool expected = false;
  if (reported != nullptr &&
      reported->compare_exchange_strong(expected, true)) {
    obs::MetricsRegistry::Default().GetCounter(metric)->Increment();
  }
}

}  // namespace

Status QueryContext::CheckAlive() const {
  if (token_.IsCancelled()) {
    ReportOnce(reported_, "rodb.resilience.cancelled");
    return Status::Cancelled("query cancelled");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    ReportOnce(reported_, "rodb.resilience.deadline_exceeded");
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

Result<MemoryReservation> QueryContext::ReserveMemory(uint64_t bytes) const {
  if (budget_ == nullptr) return MemoryReservation();
  Status s = budget_->Reserve(bytes);
  if (!s.ok()) {
    obs::MetricsRegistry::Default()
        .GetCounter("rodb.resilience.budget_rejections")
        ->Increment();
    return s;
  }
  return MemoryReservation(budget_.get(), bytes);
}

}  // namespace rodb
