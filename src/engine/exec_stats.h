#ifndef RODB_ENGINE_EXEC_STATS_H_
#define RODB_ENGINE_EXEC_STATS_H_

#include "engine/query_context.h"
#include "hwmodel/cpu_model.h"
#include "io/io.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rodb {

/// Execution-statistics sink shared by all operators of one query plan.
/// Collects the semantic event counters (the PAPI substitute, see
/// hwmodel/cpu_model.h) plus raw I/O statistics per stream, and carries
/// the optional per-query trace the operators' SpanTimers record into.
class ExecStats {
 public:
  ExecCounters& counters() { return counters_; }
  const ExecCounters& counters() const { return counters_; }

  /// I/O stats sink handed to streams; folded into the counters by
  /// FoldIo() when the query finishes.
  IoStats* io_stats() { return &io_; }

  /// Optional span tree for this query (obs/span.h). Null (the default)
  /// disables span timing entirely; operators must tolerate both.
  obs::QueryTrace* trace() { return trace_; }
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }

  /// Optional query lifecycle context (engine/query_context.h), not
  /// owned. Scanners and operators call CheckAlive() at page/morsel
  /// boundaries; null (the default) means "runs forever, never
  /// cancelled" so existing call sites keep working unchanged.
  const QueryContext* context() const { return context_; }
  void set_context(const QueryContext* context) { context_ = context; }

  /// OK when no context is attached or the context says to keep going.
  Status CheckAlive() const {
    return context_ == nullptr ? Status::OK() : context_->CheckAlive();
  }

  /// Adds the accumulated I/O statistics into the counters (idempotent:
  /// uses and clears the pending I/O record) and mirrors the same delta
  /// into the process-wide metrics registry.
  void FoldIo() {
    counters_.io_bytes_read += io_.bytes_read;
    counters_.io_requests += io_.requests;
    counters_.files_read += io_.files_opened;
    counters_.io_bytes_from_cache += io_.bytes_from_cache;
    counters_.io_cache_hits += io_.cache_hits;
    counters_.io_cache_misses += io_.cache_misses;
    MirrorIoToRegistry(io_);
    io_ = IoStats{};
    MirrorVectorizedToRegistry();
    MirrorPruningToRegistry();
  }

  /// Memory-pattern helpers (see DESIGN.md substitution #2). A scanner
  /// that streams a page sequentially reports the bytes once; sparse
  /// accesses are reported as random line touches.
  void AddSequentialBytes(uint64_t bytes) {
    counters_.seq_bytes_touched += bytes;
    counters_.l1_lines_touched += bytes / 64;
  }
  void AddRandomTouches(uint64_t touches) {
    counters_.random_line_accesses += touches;
    counters_.l1_lines_touched += touches;
  }

 private:
  /// Because FoldIo consumes-and-clears the pending record, mirroring the
  /// record right before the clear publishes each delta exactly once.
  static void MirrorIoToRegistry(const IoStats& io) {
    auto& reg = obs::MetricsRegistry::Default();
    static obs::Counter* bytes = reg.GetCounter("rodb.io.backend_bytes");
    static obs::Counter* requests = reg.GetCounter("rodb.io.requests");
    static obs::Counter* files = reg.GetCounter("rodb.io.files_opened");
    static obs::Counter* cache_bytes = reg.GetCounter("rodb.io.cache_bytes");
    static obs::Counter* cache_hits = reg.GetCounter("rodb.io.cache_hits");
    static obs::Counter* cache_misses =
        reg.GetCounter("rodb.io.cache_misses");
    bytes->Add(io.bytes_read);
    requests->Add(io.requests);
    files->Add(io.files_opened);
    cache_bytes->Add(io.bytes_from_cache);
    cache_hits->Add(io.cache_hits);
    cache_misses->Add(io.cache_misses);
  }

  /// Vectorized kernel counters accumulate straight into counters_, so
  /// mirroring keeps a high-water mark and publishes only the delta --
  /// FoldIo stays idempotent when called at both EOF and Close.
  void MirrorVectorizedToRegistry() {
    auto& reg = obs::MetricsRegistry::Default();
    static obs::Counter* batches =
        reg.GetCounter("rodb.scan.vectorized.batches");
    static obs::Counter* values =
        reg.GetCounter("rodb.scan.vectorized.values");
    static obs::Counter* skipped =
        reg.GetCounter("rodb.scan.vectorized.mask_skipped_values");
    batches->Add(counters_.kernel_batches - mirrored_kernel_batches_);
    values->Add(counters_.values_scanned_vectorized - mirrored_kernel_values_);
    skipped->Add(counters_.mask_skipped_values - mirrored_mask_skipped_);
    mirrored_kernel_batches_ = counters_.kernel_batches;
    mirrored_kernel_values_ = counters_.values_scanned_vectorized;
    mirrored_mask_skipped_ = counters_.mask_skipped_values;
  }

  /// Zone-map pruning counters use the same high-water scheme as the
  /// vectorized kernel counters above.
  void MirrorPruningToRegistry() {
    auto& reg = obs::MetricsRegistry::Default();
    static obs::Counter* plans = reg.GetCounter("rodb.scan.pruning.plans");
    static obs::Counter* declined =
        reg.GetCounter("rodb.scan.pruning.declined");
    static obs::Counter* pruned =
        reg.GetCounter("rodb.scan.pruning.pages_pruned");
    static obs::Counter* retained =
        reg.GetCounter("rodb.scan.pruning.pages_retained");
    static obs::Counter* rejects =
        reg.GetCounter("rodb.scan.pruning.zone_rejects");
    static obs::Counter* corrupt =
        reg.GetCounter("rodb.scan.pruning.synopsis_corrupt");
    plans->Add(counters_.prune_plans - mirrored_prune_plans_);
    declined->Add(counters_.prune_declined - mirrored_prune_declined_);
    pruned->Add(counters_.pages_pruned - mirrored_pages_pruned_);
    retained->Add(counters_.pages_retained - mirrored_pages_retained_);
    rejects->Add(counters_.prune_zone_rejects - mirrored_zone_rejects_);
    corrupt->Add(counters_.synopsis_corrupt - mirrored_synopsis_corrupt_);
    mirrored_prune_plans_ = counters_.prune_plans;
    mirrored_prune_declined_ = counters_.prune_declined;
    mirrored_pages_pruned_ = counters_.pages_pruned;
    mirrored_pages_retained_ = counters_.pages_retained;
    mirrored_zone_rejects_ = counters_.prune_zone_rejects;
    mirrored_synopsis_corrupt_ = counters_.synopsis_corrupt;
  }

  ExecCounters counters_;
  IoStats io_;
  uint64_t mirrored_kernel_batches_ = 0;
  uint64_t mirrored_kernel_values_ = 0;
  uint64_t mirrored_mask_skipped_ = 0;
  uint64_t mirrored_prune_plans_ = 0;
  uint64_t mirrored_prune_declined_ = 0;
  uint64_t mirrored_pages_pruned_ = 0;
  uint64_t mirrored_pages_retained_ = 0;
  uint64_t mirrored_zone_rejects_ = 0;
  uint64_t mirrored_synopsis_corrupt_ = 0;
  obs::QueryTrace* trace_ = nullptr;
  const QueryContext* context_ = nullptr;
};

}  // namespace rodb

#endif  // RODB_ENGINE_EXEC_STATS_H_
