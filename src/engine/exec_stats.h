#ifndef RODB_ENGINE_EXEC_STATS_H_
#define RODB_ENGINE_EXEC_STATS_H_

#include "hwmodel/cpu_model.h"
#include "io/io.h"

namespace rodb {

/// Execution-statistics sink shared by all operators of one query plan.
/// Collects the semantic event counters (the PAPI substitute, see
/// hwmodel/cpu_model.h) plus raw I/O statistics per stream.
class ExecStats {
 public:
  ExecCounters& counters() { return counters_; }
  const ExecCounters& counters() const { return counters_; }

  /// I/O stats sink handed to streams; folded into the counters by
  /// FoldIo() when the query finishes.
  IoStats* io_stats() { return &io_; }

  /// Adds the accumulated I/O statistics into the counters (idempotent:
  /// uses and clears the pending I/O record).
  void FoldIo() {
    counters_.io_bytes_read += io_.bytes_read;
    counters_.io_requests += io_.requests;
    counters_.files_read += io_.files_opened;
    counters_.io_bytes_from_cache += io_.bytes_from_cache;
    counters_.io_cache_hits += io_.cache_hits;
    counters_.io_cache_misses += io_.cache_misses;
    io_ = IoStats{};
  }

  /// Memory-pattern helpers (see DESIGN.md substitution #2). A scanner
  /// that streams a page sequentially reports the bytes once; sparse
  /// accesses are reported as random line touches.
  void AddSequentialBytes(uint64_t bytes) {
    counters_.seq_bytes_touched += bytes;
    counters_.l1_lines_touched += bytes / 64;
  }
  void AddRandomTouches(uint64_t touches) {
    counters_.random_line_accesses += touches;
    counters_.l1_lines_touched += touches;
  }

 private:
  ExecCounters counters_;
  IoStats io_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_EXEC_STATS_H_
