#ifndef RODB_ENGINE_ADMISSION_H_
#define RODB_ENGINE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/result.h"
#include "engine/query_context.h"

namespace rodb {

/// Limits the AdmissionController enforces (docs/RESILIENCE.md).
struct AdmissionOptions {
  /// Queries allowed to run at once. Must be >= 1.
  int max_concurrent = 8;
  /// Queries allowed to wait for a slot. A full queue rejects new
  /// arrivals immediately with ResourceExhausted — bounded queueing is
  /// the whole point: under overload the controller sheds load instead
  /// of accumulating waiters until memory or latency blows up.
  int max_queue = 16;
  /// Global memory budget shared by every admitted query; 0 = unlimited.
  /// Admit() reserves the query's declared working-set bytes up front
  /// and the returned context carries the shared budget, so per-query
  /// allocations (worker output buffers, shared-scan windows) debit the
  /// same pool.
  uint64_t memory_budget_bytes = 0;
};

class AdmissionController;

/// RAII admission: holding a ticket is holding a run slot (plus the
/// up-front memory reservation). Movable; destroying it releases the
/// slot and wakes one waiter, so an early error return cannot strand
/// capacity.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept;
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket();

  bool admitted() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller,
                  MemoryReservation reservation)
      : controller_(controller), reservation_(std::move(reservation)) {}

  AdmissionController* controller_ = nullptr;
  MemoryReservation reservation_;
};

/// Gate in front of query execution: a concurrent-query cap, a bounded
/// wait queue and a global memory budget.
///
/// Admit() returns a ticket once a slot (and the declared memory) is
/// available, waiting in bounded slices so a queued query still honors
/// its deadline and cancellation; queue overflow fails fast with
/// ResourceExhausted. Emits rodb.resilience.admission.* metrics.
/// Thread-safe; the controller must outlive its tickets.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Blocks until admitted, the queue is full (ResourceExhausted), or
  /// `ctx` dies while waiting (its Cancelled/DeadlineExceeded status).
  /// `working_set_bytes` is reserved against the global budget for the
  /// ticket's lifetime; a request larger than the whole budget is
  /// rejected immediately rather than queued forever.
  Result<AdmissionTicket> Admit(uint64_t working_set_bytes,
                                const QueryContext& ctx);

  /// The shared budget admitted queries draw from (null if unlimited);
  /// attach it to the query's context so downstream reservations debit
  /// the same pool.
  std::shared_ptr<MemoryBudget> memory_budget() const { return budget_; }

  int running() const;
  int queued() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  friend class AdmissionTicket;
  void ReleaseSlot();

  AdmissionOptions options_;
  std::shared_ptr<MemoryBudget> budget_;  ///< null when unlimited
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  int running_ = 0;
  int queued_ = 0;
};

}  // namespace rodb

#endif  // RODB_ENGINE_ADMISSION_H_
