#include "engine/open_scanner.h"

#include "engine/column_scanner.h"
#include "engine/early_mat_scanner.h"
#include "engine/pax_scanner.h"
#include "engine/row_scanner.h"

namespace rodb {

Result<OperatorPtr> OpenScanner(const OpenTable& table, ScanSpec spec,
                                IoBackend* backend, ExecStats* stats,
                                ScannerImpl impl) {
  if (impl == ScannerImpl::kEarlyMat) {
    return EarlyMatColumnScanner::Make(&table, std::move(spec), backend,
                                       stats);
  }
  switch (table.meta().layout) {
    case Layout::kRow:
      return RowScanner::Make(&table, std::move(spec), backend, stats);
    case Layout::kColumn:
      return ColumnScanner::Make(&table, std::move(spec), backend, stats);
    case Layout::kPax:
      return PaxScanner::Make(&table, std::move(spec), backend, stats);
  }
  return Status::Internal("unknown table layout");
}

}  // namespace rodb
