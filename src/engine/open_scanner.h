#ifndef RODB_ENGINE_OPEN_SCANNER_H_
#define RODB_ENGINE_OPEN_SCANNER_H_

#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "io/io.h"
#include "storage/catalog.h"

namespace rodb {

/// Which scanner implementation OpenScanner picks.
enum class ScannerImpl {
  /// The layout's natural scanner: RowScanner, pipelined ColumnScanner,
  /// or PaxScanner (the configurations the paper benchmarks).
  kAuto,
  /// The early-materialized (single-iterator, non-pipelined) column
  /// scanner -- the Section 4.2 ablation. Column tables only.
  kEarlyMat,
};

/// The one place a ScanSpec meets a physical table: picks the scanner
/// matching the catalog layout, validates the spec against it, and wires
/// the block cache when the spec carries one. Every scan in the system
/// -- PlanBuilder leaves, morsel workers, shared scans, the fuzz
/// harness, benches, rodbctl -- goes through here instead of hand-wiring
/// per-layout constructors.
///
/// `table`, `backend` and `stats` are borrowed and must outlive the
/// returned operator.
Result<OperatorPtr> OpenScanner(const OpenTable& table, ScanSpec spec,
                                IoBackend* backend, ExecStats* stats,
                                ScannerImpl impl = ScannerImpl::kAuto);

}  // namespace rodb

#endif  // RODB_ENGINE_OPEN_SCANNER_H_
