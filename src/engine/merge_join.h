#ifndef RODB_ENGINE_MERGE_JOIN_H_
#define RODB_ENGINE_MERGE_JOIN_H_

#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"

namespace rodb {

/// Merge join over two inputs sorted ascending on int32 join columns
/// (Section 2.2.3). Handles duplicate keys on both sides by buffering the
/// current right-side key group. Output tuples are the concatenation of
/// the left and right tuples.
class MergeJoinOperator final : public Operator {
 public:
  /// `left_column` / `right_column` index the children's block layouts.
  static Result<OperatorPtr> Make(OperatorPtr left, OperatorPtr right,
                                  int left_column, int right_column,
                                  ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return block_.layout();
  }

 private:
  MergeJoinOperator(OperatorPtr left, OperatorPtr right, int left_column,
                    int right_column, ExecStats* stats, BlockLayout layout);

  /// Cursor over one child's block stream.
  struct Cursor {
    Operator* op = nullptr;
    TupleBlock* block = nullptr;
    uint32_t index = 0;
    bool eof = false;

    Status EnsureTuple();  ///< pulls blocks until a tuple is available/EOF
    const uint8_t* tuple() const { return block->tuple(index); }
  };

  Status FillRightGroup(int32_t key);

  OperatorPtr left_;
  OperatorPtr right_;
  int left_column_;
  int right_column_;
  ExecStats* stats_;
  TupleBlock block_;
  Cursor lcur_;
  Cursor rcur_;

  int left_width_ = 0;
  int right_width_ = 0;
  /// Buffered right tuples sharing the current key.
  std::vector<uint8_t> right_group_;
  size_t right_group_count_ = 0;
  int32_t right_group_key_ = 0;
  bool right_group_valid_ = false;
  /// Emission state for the cross product of the current left tuple.
  size_t emit_in_group_ = 0;
  bool emitting_ = false;
};

}  // namespace rodb

#endif  // RODB_ENGINE_MERGE_JOIN_H_
