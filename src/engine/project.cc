#include "engine/project.h"

#include <cstring>

#include "common/macros.h"
#include "obs/span.h"

namespace rodb {

ProjectOperator::ProjectOperator(OperatorPtr child, std::vector<int> columns,
                                 ExecStats* stats, BlockLayout layout)
    : child_(std::move(child)), columns_(std::move(columns)), stats_(stats),
      block_(std::move(layout)) {}

Result<OperatorPtr> ProjectOperator::Make(OperatorPtr child,
                                          std::vector<int> columns,
                                          ExecStats* stats) {
  if (child == nullptr || stats == nullptr) {
    return Status::InvalidArgument("ProjectOperator: null dependency");
  }
  const BlockLayout& in = child->output_layout();
  std::vector<int> widths;
  widths.reserve(columns.size());
  for (int col : columns) {
    if (col < 0 || static_cast<size_t>(col) >= in.num_attrs()) {
      return Status::OutOfRange("projection column out of range");
    }
    widths.push_back(in.widths[static_cast<size_t>(col)]);
  }
  BlockLayout layout = BlockLayout::FromWidths(widths);
  return OperatorPtr(new ProjectOperator(std::move(child), std::move(columns),
                                         stats, std::move(layout)));
}

Status ProjectOperator::Open() { return child_->Open(); }

Result<TupleBlock*> ProjectOperator::Next() {
  obs::SpanTimer span(stats_->trace(), obs::TracePhase::kProject);
  RODB_ASSIGN_OR_RETURN(TupleBlock * in, child_->Next());
  if (in == nullptr) return static_cast<TupleBlock*>(nullptr);
  ExecCounters& c = stats_->counters();
  if (in->size() > block_.capacity()) {
    block_ = TupleBlock(block_.layout(), in->size());
  }
  block_.Clear();
  const BlockLayout& layout = block_.layout();
  for (uint32_t i = 0; i < in->size(); ++i) {
    uint8_t* slot = block_.AppendSlot();
    for (size_t k = 0; k < columns_.size(); ++k) {
      std::memcpy(slot + layout.offsets[k],
                  in->attr(i, static_cast<size_t>(columns_[k])),
                  static_cast<size_t>(layout.widths[k]));
    }
    block_.set_position(block_.size() - 1, in->position(i));
    c.operator_tuples += 1;
    c.values_copied += columns_.size();
    c.bytes_copied += static_cast<uint64_t>(layout.tuple_width);
  }
  c.blocks_emitted += 1;
  return &block_;
}

void ProjectOperator::Close() { child_->Close(); }

}  // namespace rodb
