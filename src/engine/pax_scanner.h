#ifndef RODB_ENGINE_PAX_SCANNER_H_
#define RODB_ENGINE_PAX_SCANNER_H_

#include <memory>
#include <optional>
#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "engine/zone_pruner.h"
#include "io/io.h"
#include "storage/catalog.h"
#include "storage/pax_page.h"

namespace rodb {

/// Scans a PAX-layout table: row-store I/O (one file, every page carries
/// whole tuples) with column-store CPU/cache behaviour (per-page
/// minipages; only the minipages of predicate and projected attributes
/// are touched).
///
/// Per page the scan runs in two passes: an evaluation pass streams the
/// predicate attributes' minipages and collects qualifying in-page
/// positions; an emission pass then fetches the projected attributes at
/// those positions (skipping in O(1) for fixed-width codecs, decoding
/// through for FOR-delta). This is the "single-iterator" organization the
/// paper attributes to PAX and MonetDB in Section 4.2.
class PaxScanner final : public Operator {
 public:
  static Result<OperatorPtr> Make(const OpenTable* table, ScanSpec spec,
                                  IoBackend* backend, ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return block_.layout();
  }

 private:
  PaxScanner(const OpenTable* table, ScanSpec spec, IoBackend* backend,
             ExecStats* stats, BlockLayout layout);

  /// Loads the next page, runs the evaluation pass, fills positions_.
  Status AdvancePage();
  /// Binds every predicate node's predicates into packed form for the
  /// current page (FOR re-binds per page). False -> scalar fallback.
  bool BindEvalPreds();
  /// Kernel evaluation pass: per predicate node one masked ScanNext sweep
  /// over its minipage; later nodes skip whole dead mask words. Returns
  /// false (having touched nothing) when kernels cannot run this page.
  bool TryKernelEval();
  /// At stream EOF: the pages/tuples actually delivered must match what
  /// the catalog promised for the scanned range -- a file truncated
  /// underneath the scan must fail, not silently return fewer rows.
  Status CheckScanComplete() const;
  void AccountPage();
  void CountDecode(CompressionKind kind, uint64_t n);

  const OpenTable* table_;
  ScanSpec spec_;
  IoBackend* backend_;
  /// CachingBackend wrapped around the borrowed backend when the spec
  /// carries a block cache (backend_ then points at it).
  std::vector<std::unique_ptr<IoBackend>> owned_backends_;
  ExecStats* stats_;
  TupleBlock block_;

  /// Independent codec sets for the two passes (both are stateful).
  std::vector<std::unique_ptr<AttributeCodec>> eval_codecs_;
  std::vector<std::unique_ptr<AttributeCodec>> emit_codecs_;
  std::vector<AttributeCodec*> eval_raw_;
  std::vector<AttributeCodec*> emit_raw_;
  /// Predicates grouped per attribute, in pipeline order.
  std::vector<std::pair<size_t, std::vector<Predicate>>> pred_nodes_;

  std::unique_ptr<SequentialStream> stream_;
  IoView view_{};
  size_t page_in_view_ = 0;
  size_t pages_in_view_ = 0;
  std::optional<PaxPageReader> eval_reader_;
  std::optional<PaxPageReader> emit_reader_;
  PaxGeometry geometry_;

  std::vector<uint32_t> positions_;     ///< qualifying in-page positions
  size_t pos_idx_ = 0;
  uint64_t page_start_pos_ = 0;         ///< global row id of page start
  uint32_t page_count_ = 0;
  uint64_t pages_scanned_ = 0;
  uint64_t tuples_scanned_ = 0;         ///< sum of scanned pages' counts
  std::vector<uint64_t> emit_cursor_;   ///< per-attr values consumed (emit)
  std::vector<uint64_t> touched_;       ///< per-attr touched values (page)
  std::vector<uint8_t> value_scratch_;
  bool eof_ = false;
  bool opened_ = false;

  /// Vectorized kernel eval state (ScanSpec::vectorized): the bound packed
  /// predicates per pred node, plus reusable mask/decode scratch.
  bool try_kernel_ = false;
  bool kernel_bind_failed_ = false;
  std::vector<std::vector<kernels::PackedPredicate>> bound_preds_;
  kernels::BitVector page_mask_;
  kernels::BitVector pass_mask_;
  std::vector<uint8_t> batch_scratch_;  ///< FOR-delta minipage decode

  /// Zone-map prune plan (inactive unless spec.prune found skippable
  /// pages). When active the stream only carries the retained page runs
  /// and page_start_pos_ is recovered from each view's file offset.
  PrunePlan plan_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_PAX_SCANNER_H_
