#ifndef RODB_ENGINE_PLAN_BUILDER_H_
#define RODB_ENGINE_PLAN_BUILDER_H_

#include <memory>
#include <vector>

#include "engine/aggregate.h"
#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "engine/sort.h"
#include "io/io.h"
#include "storage/catalog.h"

namespace rodb {

/// Fluent construction of the precompiled query plans the engine executes
/// (the paper uses precompiled plans instead of a parser/optimizer;
/// Section 2.2.3). Errors are captured and surfaced by Build():
///
///   auto plan = PlanBuilder::Scan(&table, spec, &backend, &stats)
///                   .Filter({Predicate::Int32(1, CompareOp::kLt, 10)})
///                   .Project({0})
///                   .HashAggregate(agg_plan)
///                   .Build();
///
/// Scan() dispatches on the table's physical layout, so the same plan
/// text runs against row, column or PAX storage.
class PlanBuilder {
 public:
  /// Leaf: a table scan matching the table's layout.
  static PlanBuilder Scan(const OpenTable* table, ScanSpec spec,
                          IoBackend* backend, ExecStats* stats);
  /// Leaf from an existing operator (e.g. a SharedScan consumer).
  static PlanBuilder From(OperatorPtr op, ExecStats* stats);
  /// Binary: merge join of two built plans on int32 block columns.
  static PlanBuilder MergeJoin(PlanBuilder left, PlanBuilder right,
                               int left_column, int right_column);

  /// Block-level filter (predicate indices refer to the child's layout).
  PlanBuilder&& Filter(std::vector<Predicate> predicates) &&;
  /// Keep/reorder block columns.
  PlanBuilder&& Project(std::vector<int> columns) &&;
  PlanBuilder&& HashAggregate(AggPlan plan) &&;
  PlanBuilder&& SortAggregate(AggPlan plan) &&;
  /// ORDER BY one int32 block column.
  PlanBuilder&& OrderBy(int column,
                        SortOrder order = SortOrder::kAscending) &&;
  /// ORDER BY ... LIMIT n with a bounded heap.
  PlanBuilder&& TopN(int column, SortOrder order, uint32_t limit) &&;

  /// Returns the assembled plan, or the first error encountered.
  Result<OperatorPtr> Build() &&;

 private:
  PlanBuilder() = default;

  OperatorPtr op_;
  ExecStats* stats_ = nullptr;
  Status status_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_PLAN_BUILDER_H_
