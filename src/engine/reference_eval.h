#ifndef RODB_ENGINE_REFERENCE_EVAL_H_
#define RODB_ENGINE_REFERENCE_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/aggregate.h"
#include "engine/scan_spec.h"
#include "storage/schema.h"

namespace rodb {

/// Reference ("oracle") query evaluator for differential testing. It
/// executes the same query shapes the engine supports -- scan, filter,
/// project, aggregate -- directly over in-memory raw tuples, touching
/// none of the storage, codec, I/O or operator machinery. Any divergence
/// between this evaluator and the engine is a bug in one of them.
///
/// Deliberately simple and slow: one straight-line pass over the tuples,
/// no pages, no compression, no blocks. Semantics mirror the engine's
/// documented behaviour exactly:
///  - predicates evaluate on raw attribute bytes (Predicate::Eval);
///  - projection copies attribute bytes in projection order, which is the
///    block layout the scanners emit;
///  - aggregation follows AggAccumulator (int64 accumulators, AVG is
///    integer division, MIN/MAX start from the int64 limits) and emits
///    groups in ascending key order, matching SortAggOperator and the
///    parallel executor's merge.
struct ReferenceResult {
  uint64_t rows = 0;
  /// FNV-1a over the concatenated output tuples, seeded with kFnv1aSeed --
  /// directly comparable with ExecutionResult::output_checksum.
  uint64_t output_checksum = 0;
  /// The output tuples themselves (projection layout for scans, aggregate
  /// output layout for aggregations), for exact engine comparisons.
  std::vector<std::vector<uint8_t>> tuples;
};

/// Evaluates projection + predicates of `spec` over `tuples` (raw tuples
/// of `schema` width each). Range fields of the spec are ignored: the
/// oracle always answers for the whole relation.
Result<ReferenceResult> ReferenceScan(
    const Schema& schema, const std::vector<std::vector<uint8_t>>& tuples,
    const ScanSpec& spec);

/// Evaluates scan + aggregation. `plan` column indices address the scan's
/// projection output (block columns), as with the engine's aggregate
/// operators; referenced columns must be 4 bytes wide.
Result<ReferenceResult> ReferenceAggregate(
    const Schema& schema, const std::vector<std::vector<uint8_t>>& tuples,
    const ScanSpec& spec, const AggPlan& plan);

}  // namespace rodb

#endif  // RODB_ENGINE_REFERENCE_EVAL_H_
