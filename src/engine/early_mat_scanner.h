#ifndef RODB_ENGINE_EARLY_MAT_SCANNER_H_
#define RODB_ENGINE_EARLY_MAT_SCANNER_H_

#include <memory>
#include <optional>
#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "engine/zone_pruner.h"
#include "io/io.h"
#include "storage/catalog.h"
#include "storage/column_page.h"

namespace rodb {

/// The non-pipelined, single-iterator column scanner the paper sketches
/// in Section 4.2 but does not build: it "fetches disk pages from all
/// scanned columns into memory, then uses memory offsets to access all
/// attributes within the same row, iterating over entire rows, similarly
/// to a row store" (the PAX / MonetDB organization).
///
/// Compared to the pipelined ColumnScanner it trades the per-node
/// {position, value} machinery for row-at-a-time iteration across all
/// column cursors in lockstep: no position-list overhead, but every
/// selected column is streamed and decoded (or skipped value-by-value)
/// for every row, regardless of selectivity. Reads exactly the same
/// files, so I/O behaviour is identical; only the CPU profile differs --
/// which is why it serves as the ablation for the pipelined design
/// (bench/ablation_early_mat).
class EarlyMatColumnScanner final : public Operator {
 public:
  static Result<OperatorPtr> Make(const OpenTable* table, ScanSpec spec,
                                  IoBackend* backend, ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return block_.layout();
  }

 private:
  struct Cursor {
    size_t attr = 0;
    int out_col = -1;                 ///< output block column, or -1
    std::vector<Predicate> preds;
    std::unique_ptr<AttributeCodec> codec;
    CompressionKind kind = CompressionKind::kNone;
    int width = 0;

    std::unique_ptr<SequentialStream> stream;
    IoView view{};
    size_t page_in_view = 0;
    size_t pages_in_view = 0;
    std::optional<ColumnPageReader> page;
    uint64_t consumed_in_page = 0;
    bool eof = false;
    /// Pruned scans only: absolute position of the current page's first
    /// value (recovered from the view's file offset) and the file's
    /// values per full page.
    uint64_t page_start_pos = 0;
    uint32_t vpp = 0;
  };

  EarlyMatColumnScanner(const OpenTable* table, ScanSpec spec,
                        IoBackend* backend, ExecStats* stats,
                        BlockLayout layout);

  Status AdvancePage(Cursor& cursor);
  /// Ensures the cursor has a value available; sets eof at end.
  Status EnsureValue(Cursor& cursor);
  /// Pruned scans: positions the cursor at absolute position `pos`
  /// (advancing pages and skipping within the page as needed).
  Status SeekCursor(Cursor& cursor, uint64_t pos);
  /// Pruned scans: lockstep iteration over the plan's surviving position
  /// runs instead of 0..num_tuples.
  Result<TupleBlock*> NextPruned();
  void CountDecode(const Cursor& cursor, uint64_t n);

  const OpenTable* table_;
  ScanSpec spec_;
  IoBackend* backend_;
  /// CachingBackend wrapped around the borrowed backend when the spec
  /// carries a block cache (backend_ then points at it).
  std::vector<std::unique_ptr<IoBackend>> owned_backends_;
  ExecStats* stats_;
  TupleBlock block_;
  std::vector<Cursor> cursors_;
  std::vector<uint8_t> value_scratch_;
  uint64_t next_position_ = 0;
  bool opened_ = false;
  /// Zone-map prune plan. When active every cursor streams only the pages
  /// overlapping plan_.global and iteration walks those position runs;
  /// positions outside them are zone-proven to fail a predicate.
  PrunePlan plan_;
  size_t run_idx_ = 0;  ///< current run in plan_.global (pruned scans)
};

}  // namespace rodb

#endif  // RODB_ENGINE_EARLY_MAT_SCANNER_H_
