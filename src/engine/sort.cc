#include "engine/sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/bytes.h"
#include "common/macros.h"
#include "obs/span.h"

namespace rodb {

namespace {

Status ValidateSortColumn(const BlockLayout& layout, int column) {
  if (column < 0 || static_cast<size_t>(column) >= layout.num_attrs()) {
    return Status::OutOfRange("sort column out of range");
  }
  if (layout.widths[static_cast<size_t>(column)] != 4) {
    return Status::InvalidArgument("sort column must be int32");
  }
  return Status::OK();
}

}  // namespace

// --- SortOperator ---

SortOperator::SortOperator(OperatorPtr child, int column, SortOrder order,
                           ExecStats* stats)
    : child_(std::move(child)), column_(column), order_(order), stats_(stats),
      block_(child_->output_layout()) {}

Result<OperatorPtr> SortOperator::Make(OperatorPtr child, int column,
                                       SortOrder order, ExecStats* stats) {
  if (child == nullptr || stats == nullptr) {
    return Status::InvalidArgument("SortOperator: null dependency");
  }
  RODB_RETURN_IF_ERROR(ValidateSortColumn(child->output_layout(), column));
  return OperatorPtr(new SortOperator(std::move(child), column, order, stats));
}

Status SortOperator::Open() { return child_->Open(); }

Status SortOperator::Consume() {
  ExecCounters& c = stats_->counters();
  const int width = child_->output_layout().tuple_width;
  while (true) {
    RODB_ASSIGN_OR_RETURN(TupleBlock * in, child_->Next());
    if (in == nullptr) break;
    for (uint32_t i = 0; i < in->size(); ++i) {
      rows_.insert(rows_.end(), in->tuple(i), in->tuple(i) + width);
      c.operator_tuples += 1;
    }
  }
  const size_t n = rows_.size() / static_cast<size_t>(width);
  order_indices_.resize(n);
  std::iota(order_indices_.begin(), order_indices_.end(), 0);
  const int offset = child_->output_layout().offsets[
      static_cast<size_t>(column_)];
  uint64_t comparisons = 0;
  const bool asc = order_ == SortOrder::kAscending;
  std::stable_sort(
      order_indices_.begin(), order_indices_.end(),
      [this, width, offset, asc, &comparisons](uint32_t a, uint32_t b) {
        ++comparisons;
        const int32_t va = LoadLE32s(
            rows_.data() + static_cast<size_t>(a) * width + offset);
        const int32_t vb = LoadLE32s(
            rows_.data() + static_cast<size_t>(b) * width + offset);
        return asc ? va < vb : vb < va;
      });
  c.sort_comparisons += comparisons;
  consumed_ = true;
  return Status::OK();
}

Result<TupleBlock*> SortOperator::Next() {
  obs::SpanTimer span(stats_->trace(), obs::TracePhase::kSort);
  if (!consumed_) RODB_RETURN_IF_ERROR(Consume());
  if (emit_index_ >= order_indices_.size()) {
    return static_cast<TupleBlock*>(nullptr);
  }
  const int width = child_->output_layout().tuple_width;
  block_.Clear();
  while (!block_.full() && emit_index_ < order_indices_.size()) {
    std::memcpy(block_.AppendSlot(),
                rows_.data() +
                    static_cast<size_t>(order_indices_[emit_index_]) * width,
                static_cast<size_t>(width));
    ++emit_index_;
  }
  stats_->counters().blocks_emitted += 1;
  return &block_;
}

void SortOperator::Close() { child_->Close(); }

// --- TopNOperator ---

TopNOperator::TopNOperator(OperatorPtr child, int column, SortOrder order,
                           uint32_t limit, ExecStats* stats)
    : child_(std::move(child)), column_(column), order_(order), limit_(limit),
      stats_(stats), block_(child_->output_layout()) {}

Result<OperatorPtr> TopNOperator::Make(OperatorPtr child, int column,
                                       SortOrder order, uint32_t limit,
                                       ExecStats* stats) {
  if (child == nullptr || stats == nullptr) {
    return Status::InvalidArgument("TopNOperator: null dependency");
  }
  if (limit == 0) {
    return Status::InvalidArgument("Top-N limit must be positive");
  }
  RODB_RETURN_IF_ERROR(ValidateSortColumn(child->output_layout(), column));
  return OperatorPtr(
      new TopNOperator(std::move(child), column, order, limit, stats));
}

Status TopNOperator::Open() { return child_->Open(); }

bool TopNOperator::Before(const uint8_t* a, const uint8_t* b) const {
  const int offset =
      child_->output_layout().offsets[static_cast<size_t>(column_)];
  const int32_t va = LoadLE32s(a + offset);
  const int32_t vb = LoadLE32s(b + offset);
  return order_ == SortOrder::kAscending ? va < vb : vb < va;
}

Status TopNOperator::Consume() {
  ExecCounters& c = stats_->counters();
  const int width = child_->output_layout().tuple_width;
  // heap_ keeps the current worst of the best-N at the front.
  auto worse = [this, &c](const std::vector<uint8_t>& a,
                          const std::vector<uint8_t>& b) {
    c.sort_comparisons += 1;
    return Before(a.data(), b.data());
  };
  while (true) {
    RODB_ASSIGN_OR_RETURN(TupleBlock * in, child_->Next());
    if (in == nullptr) break;
    for (uint32_t i = 0; i < in->size(); ++i) {
      c.operator_tuples += 1;
      const uint8_t* t = in->tuple(i);
      if (heap_.size() < limit_) {
        heap_.emplace_back(t, t + width);
        std::push_heap(heap_.begin(), heap_.end(), worse);
        continue;
      }
      c.sort_comparisons += 1;
      if (Before(t, heap_.front().data())) {
        std::pop_heap(heap_.begin(), heap_.end(), worse);
        heap_.back().assign(t, t + width);
        std::push_heap(heap_.begin(), heap_.end(), worse);
      }
    }
  }
  sorted_ = std::move(heap_);
  std::sort(sorted_.begin(), sorted_.end(), worse);
  consumed_ = true;
  return Status::OK();
}

Result<TupleBlock*> TopNOperator::Next() {
  obs::SpanTimer span(stats_->trace(), obs::TracePhase::kSort);
  if (!consumed_) RODB_RETURN_IF_ERROR(Consume());
  if (emit_index_ >= sorted_.size()) return static_cast<TupleBlock*>(nullptr);
  block_.Clear();
  const int width = child_->output_layout().tuple_width;
  while (!block_.full() && emit_index_ < sorted_.size()) {
    std::memcpy(block_.AppendSlot(), sorted_[emit_index_].data(),
                static_cast<size_t>(width));
    ++emit_index_;
  }
  stats_->counters().blocks_emitted += 1;
  return &block_;
}

void TopNOperator::Close() { child_->Close(); }

}  // namespace rodb
