#ifndef RODB_ENGINE_ZONE_PRUNER_H_
#define RODB_ENGINE_ZONE_PRUNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/scan_spec.h"
#include "hwmodel/cpu_model.h"
#include "io/io.h"
#include "storage/catalog.h"
#include "storage/synopsis.h"

namespace rodb {

/// Zone-map pruning (DESIGN.md 5g): turns a table's synopsis
/// (storage/synopsis.h) plus a scan's predicate conjunction into a
/// *prune plan* -- the exact set of pages each scanner stream must fetch
/// -- before any I/O is issued. The plan is sound by construction: a page
/// is only skipped when its zone proves no value in it can satisfy a
/// predicate, so pruned and unpruned scans return identical tuples.
///
/// Everything here reuses PackedPredicate's canonical trick of comparing
/// in an unsigned key domain; BuildZonePredicate lowers each engine
/// Predicate into one inclusive key interval (or a dictionary-code match
/// bitmap) that is a *superset* of the true match set, which is what
/// makes skipping safe for every codec and both value types.

/// One half-open interval [begin, end), used both for position runs and
/// page-index runs.
struct Run {
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// Sum of run lengths.
uint64_t TotalRunLength(const std::vector<Run>& runs);

/// True when `v` falls inside one of the (sorted, disjoint) runs.
bool RunsContain(const std::vector<Run>& runs, uint64_t v);

/// Intersection of two sorted disjoint run lists.
std::vector<Run> IntersectRuns(const std::vector<Run>& a,
                               const std::vector<Run>& b);

/// Page-index runs covering every position in `pos_runs` of a file whose
/// full pages hold `vpp` values.
std::vector<Run> PageRunsForPositions(const std::vector<Run>& pos_runs,
                                      uint32_t vpp);

/// Position runs spanned by page-index runs (the last page's short tail
/// is clamped to `num_tuples`).
std::vector<Run> PositionRunsForPages(const std::vector<Run>& page_runs,
                                      uint32_t vpp, uint64_t num_tuples);

/// A Predicate lowered into the zone key domain: an inclusive interval
/// [lo, hi] that contains the key of every matching value (negate flips
/// the sense for kNe), plus an optional dictionary-code match bitmap.
struct ZonePredicate {
  size_t attr = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;
  /// Predicate true outside the interval (kNe). Pruning on a negated
  /// predicate additionally requires `exact`.
  bool negate = false;
  /// Key membership in [lo, hi] is *equivalent* to the (non-negated)
  /// predicate, not merely necessary: int32 always; text only when the
  /// operand fits inside the key prefix.
  bool exact = false;
  /// The predicate matches nothing (e.g. `< INT32_MIN`): prune all pages.
  bool empty = false;
  /// False when this predicate cannot prune at all (its interval had to
  /// widen to the whole domain).
  bool usable = true;
  /// kDict columns: bit c set iff the predicate holds for dictionary
  /// code c, sized to the synopsis bitmap width. Empty = no bitmap test.
  std::vector<uint64_t> match_codes;
  size_t match_bits = 0;

  /// May any value whose key lies in `zone` satisfy this predicate?
  bool ZoneMayMatch(const ZoneEntry& zone) const;
  /// Refinement for kDict pages with presence bitmaps.
  bool PageMayMatch(const ZoneEntry& zone, const AttrSynopsis& synopsis,
                    size_t page) const;
};

/// Lowers one predicate. `dict`/`bitmap_bits` feed the code bitmap and
/// may be null/0.
ZonePredicate BuildZonePredicate(const AttributeDesc& attr,
                                 const Predicate& pred,
                                 const Dictionary* dict, size_t bitmap_bits);

/// Per-pipeline-node slice of a plan: which pages of the node's physical
/// file to fetch, and which positions the node's own predicates
/// zone-accept (positions outside `accept` are rejected without fetching
/// anything -- their pages were proven predicate-free).
struct NodePrunePlan {
  size_t attr = 0;   ///< table attribute (0 for the row/PAX single file)
  size_t file = 0;   ///< physical file index
  uint32_t vpp = 0;  ///< values per full page of that file
  bool has_preds = false;
  std::vector<Run> page_runs;  ///< page indices this node fetches
  std::vector<Run> accept;     ///< zone-accepted positions (preds only)
  uint64_t pages = 0;          ///< TotalRunLength(page_runs)
};

/// The complete pruning decision for one scan. `active == false` means
/// "scan exactly as if spec.prune were off" -- either pruning was not
/// requested, was declined (no/stale synopsis, kCharPack predicate
/// column, non-uniform pages, ...), or would not skip a single page.
struct PrunePlan {
  bool requested = false;
  bool active = false;
  bool declined = false;  ///< requested but could not be honored
  bool corrupt = false;   ///< synopsis present but failed CRC/staleness
  uint64_t pages_pruned = 0;
  uint64_t pages_retained = 0;
  /// Column scans: parallel to ScanPipelineAttrs(spec). Row/PAX scans:
  /// one node for the single file.
  std::vector<NodePrunePlan> nodes;
  /// Surviving positions (every zone-accept intersected, clamped to the
  /// spec's range): what the scan can possibly emit, and the domain
  /// early-materialized scans and morsel carving iterate.
  std::vector<Run> global;

  /// Folds the plan's outcome into the scan's counters at Open time.
  void AddCountersTo(ExecCounters* c) const;
};

/// Builds the plan for scanning `table` under `spec`. Never fails:
/// every reason not to prune comes back as an inactive plan.
PrunePlan BuildPrunePlan(const OpenTable& table, const ScanSpec& spec);

/// Fraction of the table's tuples the plan's global runs retain (1.0 for
/// inactive plans). Admission control scales a scan's declared working
/// set by this before reserving memory.
double PruneSurvivingFraction(const PrunePlan& plan, uint64_t num_tuples);

/// Admission sizing: the backend bytes the scan will actually fetch --
/// every file the spec touches, shrunk to the prune plan's byte runs when
/// pruning is active. Pass the result to AdmissionController::Admit so a
/// selective pruned scan reserves its post-prune working set instead of
/// the whole table.
uint64_t EstimateScanWorkingSet(const OpenTable& table, const ScanSpec& spec);

/// One contiguous byte range of a file to stream.
struct ByteRun {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Byte ranges covering `page_runs` (the final page's tail clamps to
/// `file_bytes`).
std::vector<ByteRun> ByteRunsForPages(const std::vector<Run>& page_runs,
                                      size_t page_size, uint64_t file_bytes);

/// A SequentialStream that concatenates one backend stream per byte run,
/// opening each lazily on first demand (FileBackend spawns a prefetch
/// thread per stream, so eager opening of many short runs would be
/// wasteful). Views keep their absolute file_offset, which is how
/// scanners recover page indices across the gaps.
Result<std::unique_ptr<SequentialStream>> OpenMultiRunStream(
    IoBackend* backend, const std::string& path, const IoOptions& base,
    std::vector<ByteRun> runs, uint64_t file_bytes);

}  // namespace rodb

#endif  // RODB_ENGINE_ZONE_PRUNER_H_
