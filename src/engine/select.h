#ifndef RODB_ENGINE_SELECT_H_
#define RODB_ENGINE_SELECT_H_

#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/predicate.h"

namespace rodb {

/// Block-level filter for predicates that were not pushed into a scanner
/// (e.g. on computed columns or above a join). Predicate attribute indices
/// refer to the child's block layout.
class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr child, std::vector<Predicate> predicates,
                 ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return child_->output_layout();
  }

 private:
  OperatorPtr child_;
  std::vector<Predicate> predicates_;
  ExecStats* stats_;
  TupleBlock block_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_SELECT_H_
