#include "engine/plan_builder.h"

#include "engine/merge_join.h"
#include "engine/open_scanner.h"
#include "engine/project.h"
#include "engine/select.h"

namespace rodb {

PlanBuilder PlanBuilder::Scan(const OpenTable* table, ScanSpec spec,
                              IoBackend* backend, ExecStats* stats) {
  PlanBuilder builder;
  builder.stats_ = stats;
  if (table == nullptr) {
    builder.status_ = Status::InvalidArgument("Scan: null table");
    return builder;
  }
  Result<OperatorPtr> scan =
      OpenScanner(*table, std::move(spec), backend, stats);
  if (!scan.ok()) {
    builder.status_ = scan.status();
  } else {
    builder.op_ = std::move(scan).value();
  }
  return builder;
}

PlanBuilder PlanBuilder::From(OperatorPtr op, ExecStats* stats) {
  PlanBuilder builder;
  builder.stats_ = stats;
  if (op == nullptr) {
    builder.status_ = Status::InvalidArgument("From: null operator");
  } else {
    builder.op_ = std::move(op);
  }
  return builder;
}

PlanBuilder PlanBuilder::MergeJoin(PlanBuilder left, PlanBuilder right,
                                   int left_column, int right_column) {
  PlanBuilder builder;
  builder.stats_ = left.stats_ != nullptr ? left.stats_ : right.stats_;
  if (!left.status_.ok()) {
    builder.status_ = left.status_;
    return builder;
  }
  if (!right.status_.ok()) {
    builder.status_ = right.status_;
    return builder;
  }
  auto join = MergeJoinOperator::Make(std::move(left.op_),
                                      std::move(right.op_), left_column,
                                      right_column, builder.stats_);
  if (!join.ok()) {
    builder.status_ = join.status();
  } else {
    builder.op_ = std::move(join).value();
  }
  return builder;
}

PlanBuilder&& PlanBuilder::Filter(std::vector<Predicate> predicates) && {
  if (status_.ok()) {
    op_ = std::make_unique<FilterOperator>(std::move(op_),
                                           std::move(predicates), stats_);
  }
  return std::move(*this);
}

PlanBuilder&& PlanBuilder::Project(std::vector<int> columns) && {
  if (status_.ok()) {
    auto project =
        ProjectOperator::Make(std::move(op_), std::move(columns), stats_);
    if (!project.ok()) {
      status_ = project.status();
    } else {
      op_ = std::move(project).value();
    }
  }
  return std::move(*this);
}

PlanBuilder&& PlanBuilder::HashAggregate(AggPlan plan) && {
  if (status_.ok()) {
    auto agg = HashAggOperator::Make(std::move(op_), std::move(plan), stats_);
    if (!agg.ok()) {
      status_ = agg.status();
    } else {
      op_ = std::move(agg).value();
    }
  }
  return std::move(*this);
}

PlanBuilder&& PlanBuilder::SortAggregate(AggPlan plan) && {
  if (status_.ok()) {
    auto agg = SortAggOperator::Make(std::move(op_), std::move(plan), stats_);
    if (!agg.ok()) {
      status_ = agg.status();
    } else {
      op_ = std::move(agg).value();
    }
  }
  return std::move(*this);
}

PlanBuilder&& PlanBuilder::OrderBy(int column, SortOrder order) && {
  if (status_.ok()) {
    auto sort = SortOperator::Make(std::move(op_), column, order, stats_);
    if (!sort.ok()) {
      status_ = sort.status();
    } else {
      op_ = std::move(sort).value();
    }
  }
  return std::move(*this);
}

PlanBuilder&& PlanBuilder::TopN(int column, SortOrder order,
                                uint32_t limit) && {
  if (status_.ok()) {
    auto topn =
        TopNOperator::Make(std::move(op_), column, order, limit, stats_);
    if (!topn.ok()) {
      status_ = topn.status();
    } else {
      op_ = std::move(topn).value();
    }
  }
  return std::move(*this);
}

Result<OperatorPtr> PlanBuilder::Build() && {
  if (!status_.ok()) return status_;
  if (op_ == nullptr) return Status::InvalidArgument("empty plan");
  return std::move(op_);
}

}  // namespace rodb
