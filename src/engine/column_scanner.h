#ifndef RODB_ENGINE_COLUMN_SCANNER_H_
#define RODB_ENGINE_COLUMN_SCANNER_H_

#include <memory>
#include <optional>
#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "engine/zone_pruner.h"
#include "io/io.h"
#include "compression/dictionary.h"
#include "storage/catalog.h"
#include "storage/column_page.h"

namespace rodb {

/// Scans a column-layout table with the paper's pipelined scan-node
/// architecture (Section 2.2.2, Figure 4).
///
/// The deepest node reads the first predicate's column and creates
/// {position, value} pairs for qualifying tuples. Each subsequent node is
/// driven by the positions arriving from below: it advances its own column
/// stream to each position (skipping in O(1) for fixed-width codecs,
/// decoding every skipped value for FOR-delta), evaluates its predicates,
/// and either rewrites qualifying tuples into its own block (predicate
/// nodes) or attaches values in place (projection-only nodes). Blocks are
/// reused; no memory is allocated during execution.
class ColumnScanner final : public Operator {
 public:
  /// `table`, `backend`, `stats` are borrowed and must outlive the scanner.
  static Result<OperatorPtr> Make(const OpenTable* table, ScanSpec spec,
                                  IoBackend* backend, ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override { return layout_; }

  /// Number of pipelined scan nodes (== column files read by this query).
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    size_t attr = 0;                  ///< table attribute index
    int out_col = -1;                 ///< column in the output block, or -1
    std::vector<Predicate> preds;     ///< predicates evaluated at this node
    std::unique_ptr<AttributeCodec> codec;
    CompressionKind codec_kind = CompressionKind::kNone;
    int value_width = 0;

    std::unique_ptr<SequentialStream> stream;
    IoView view{};
    size_t page_in_view = 0;
    size_t pages_in_view = 0;
    std::optional<ColumnPageReader> page;
    uint64_t page_start_pos = 0;  ///< absolute index of first value in page
    uint64_t consumed_in_page = 0;
    uint64_t touched_in_page = 0;
    bool eof = false;

    /// This node's slice of the scan's prune plan (null when pruning is
    /// inactive). The stream then carries only prune->page_runs;
    /// page_start_pos is recovered from each view's file offset, and
    /// ProcessNode zone-rejects positions outside prune->accept without
    /// touching the stream.
    const NodePrunePlan* prune = nullptr;
    uint64_t pages_read = 0;  ///< pages delivered (pruned completeness check)

    /// Compressed-eval fast path: =/!= predicates on dictionary columns
    /// compare codes and materialize values only when needed.
    struct CodePred {
      bool negate = false;     ///< true for !=
      bool matchable = false;  ///< operand exists in the dictionary
      uint32_t code = 0;
    };
    std::vector<CodePred> code_preds;
    bool use_codes = false;
    const Dictionary* dict = nullptr;

    /// Vectorized kernel state (ScanSpec::vectorized, base node only):
    /// the page's selection mask, computed with one ScanBatch pass per
    /// predicate and consumed incrementally as output blocks fill.
    bool try_kernel = false;
    std::vector<kernels::PackedPredicate> packed_preds;
    kernels::BitVector page_mask;
    kernels::BitVector pass_mask;  ///< scratch for 2nd..nth predicate
    bool mask_valid = false;
    uint64_t mask_limit = 0;       ///< values covered by the mask
    uint64_t mask_next = 0;        ///< next in-page index to deliver
    /// FOR-delta only: the page decoded once up front (DecodeBatch), so
    /// the mask pass compares plain keys and emission is a memcpy.
    std::vector<uint8_t> batch_scratch;

    /// Output block for predicate nodes and the deepest node; projection-
    /// only nodes fill the incoming block in place.
    std::unique_ptr<TupleBlock> out_block;
    /// Bytes of each tuple filled once this node has run (for copy-cost
    /// accounting).
    int filled_bytes = 0;
  };

  ColumnScanner(const OpenTable* table, ScanSpec spec, IoBackend* backend,
                ExecStats* stats, BlockLayout layout);

  /// Finishes memory accounting for the node's current page and loads the
  /// next one. Sets node.eof past the last page.
  Status AdvanceNodePage(Node& node);
  void AccountPage(Node& node);
  /// Positions the node's column stream just before `pos`.
  Status SeekTo(Node& node, uint64_t pos);
  /// Positions the node's column stream at `pos` and decodes that value.
  Status FetchValueAt(Node& node, uint64_t pos, uint8_t* out);
  /// Same, but reads only the dictionary code (use_codes nodes).
  Status FetchCodeAt(Node& node, uint64_t pos, uint32_t* code);
  /// Evaluates a node's code predicates against `code`.
  bool EvalCodePreds(const Node& node, uint32_t code);
  void CountDecode(const Node& node, uint64_t n);

  /// Binds the node's predicates into packed form for the current page
  /// (FOR bindings depend on the page base and re-bind per page). Returns
  /// false when any predicate cannot run packed -- scalar fallback.
  bool BindNodePreds(Node& node);
  /// Evaluates the node's packed predicates over the freshly opened page
  /// into node.page_mask; leaves the page reader rewound to value 0.
  void BuildPageMask(Node& node);
  /// Copies mask survivors into `out` until the block fills or the mask
  /// is exhausted, decoding only projected survivors.
  void EmitFromMask(Node& node, TupleBlock& out);

  /// Runs the deepest node: fills its out_block with qualifying
  /// {position, value} pairs.
  Status ProduceBase(Node& node);
  /// Runs an inner node over `in`; returns the block flowing upward.
  Result<TupleBlock*> ProcessNode(Node& node, TupleBlock* in);

  const OpenTable* table_;
  ScanSpec spec_;
  IoBackend* backend_;
  /// CachingBackend wrapped around the borrowed backend when the spec
  /// carries a block cache (backend_ then points at it).
  std::vector<std::unique_ptr<IoBackend>> owned_backends_;
  ExecStats* stats_;
  BlockLayout layout_;
  std::vector<Node> nodes_;
  std::vector<uint8_t> value_scratch_;
  bool opened_ = false;
  bool done_ = false;
  /// Scan stops at this absolute position (set from the spec's position
  /// range in Open; num_tuples for a whole-table scan).
  uint64_t end_row_ = UINT64_MAX;
  /// Whether the deepest node has skipped ahead to spec_.range.first_row().
  bool base_positioned_ = false;
  /// Zone-map prune plan; nodes_[k].prune points into plan_.nodes when
  /// active.
  PrunePlan plan_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_COLUMN_SCANNER_H_
