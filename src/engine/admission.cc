#include "engine/admission.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace rodb {

namespace {

struct AdmissionMetrics {
  obs::Counter* admitted;
  obs::Counter* queue_rejections;
  obs::Counter* budget_rejections;
  obs::Counter* wait_aborts;
  obs::Gauge* running;
  obs::Gauge* queued;
};

const AdmissionMetrics& Metrics() {
  static AdmissionMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    return AdmissionMetrics{
        reg.GetCounter("rodb.resilience.admission.admitted"),
        reg.GetCounter("rodb.resilience.admission.queue_rejections"),
        reg.GetCounter("rodb.resilience.admission.budget_rejections"),
        reg.GetCounter("rodb.resilience.admission.wait_aborts"),
        reg.GetGauge("rodb.resilience.admission.running"),
        reg.GetGauge("rodb.resilience.admission.queued")};
  }();
  return m;
}

}  // namespace

AdmissionTicket::AdmissionTicket(AdmissionTicket&& other) noexcept
    : controller_(other.controller_),
      reservation_(std::move(other.reservation_)) {
  other.controller_ = nullptr;
}

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    reservation_ = std::move(other.reservation_);
    other.controller_ = nullptr;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() { Release(); }

void AdmissionTicket::Release() {
  // Free the memory before waking waiters so the next Admit() sees both
  // the slot and the bytes.
  reservation_.Release();
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  options_.max_concurrent = std::max(options_.max_concurrent, 1);
  options_.max_queue = std::max(options_.max_queue, 0);
  if (options_.memory_budget_bytes > 0) {
    budget_ = std::make_shared<MemoryBudget>(options_.memory_budget_bytes);
  }
}

Result<AdmissionTicket> AdmissionController::Admit(uint64_t working_set_bytes,
                                                   const QueryContext& ctx) {
  if (budget_ != nullptr && working_set_bytes > budget_->capacity_bytes()) {
    // Could never fit; queueing would wait forever.
    Metrics().budget_rejections->Increment();
    return Status::ResourceExhausted("working set exceeds the global budget");
  }

  std::unique_lock<std::mutex> lock(mu_);
  // Admission needs a free slot AND the up-front bytes; either can be
  // what a waiter is queued for. An empty ticket means "not yet".
  auto try_admit = [&]() -> AdmissionTicket {
    if (running_ >= options_.max_concurrent) return AdmissionTicket();
    MemoryReservation reservation;
    if (budget_ != nullptr && working_set_bytes > 0) {
      if (!budget_->Reserve(working_set_bytes).ok()) {
        return AdmissionTicket();  // bytes still held by running queries
      }
      reservation = MemoryReservation(budget_.get(), working_set_bytes);
    }
    ++running_;
    Metrics().admitted->Increment();
    Metrics().running->Set(running_);
    return AdmissionTicket(this, std::move(reservation));
  };

  {
    AdmissionTicket first = try_admit();
    if (first.admitted()) return first;
  }

  if (queued_ >= options_.max_queue) {
    Metrics().queue_rejections->Increment();
    return Status::ResourceExhausted("admission queue full");
  }

  ++queued_;
  Metrics().queued->Set(queued_);
  auto dequeue = [&] {
    --queued_;
    Metrics().queued->Set(queued_);
  };

  // Wait in bounded slices: a queued query still observes cancellation
  // and its deadline even if no slot ever frees.
  constexpr auto kSlice = std::chrono::milliseconds(5);
  for (;;) {
    Status alive = ctx.CheckAlive();
    if (!alive.ok()) {
      dequeue();
      Metrics().wait_aborts->Increment();
      return alive;
    }
    AdmissionTicket ticket = try_admit();
    if (ticket.admitted()) {
      dequeue();
      return ticket;
    }
    auto wake = std::chrono::steady_clock::now() + kSlice;
    if (ctx.has_deadline()) wake = std::min(wake, ctx.deadline());
    slot_free_.wait_until(lock, wake);
  }
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    Metrics().running->Set(running_);
  }
  slot_free_.notify_all();
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace rodb
