#include "engine/zone_pruner.h"

#include <algorithm>

#include "common/macros.h"

namespace rodb {

uint64_t TotalRunLength(const std::vector<Run>& runs) {
  uint64_t total = 0;
  for (const Run& r : runs) total += r.end - r.begin;
  return total;
}

bool RunsContain(const std::vector<Run>& runs, uint64_t v) {
  auto it = std::upper_bound(
      runs.begin(), runs.end(), v,
      [](uint64_t value, const Run& r) { return value < r.begin; });
  return it != runs.begin() && v < std::prev(it)->end;
}

std::vector<Run> IntersectRuns(const std::vector<Run>& a,
                               const std::vector<Run>& b) {
  std::vector<Run> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const uint64_t begin = std::max(a[i].begin, b[j].begin);
    const uint64_t end = std::min(a[i].end, b[j].end);
    if (begin < end) out.push_back(Run{begin, end});
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

namespace {

/// Appends [begin, end), merging into the previous run when they touch.
void PushRun(std::vector<Run>* runs, uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  if (!runs->empty() && runs->back().end >= begin) {
    runs->back().end = std::max(runs->back().end, end);
    return;
  }
  runs->push_back(Run{begin, end});
}

}  // namespace

std::vector<Run> PageRunsForPositions(const std::vector<Run>& pos_runs,
                                      uint32_t vpp) {
  std::vector<Run> out;
  for (const Run& r : pos_runs) {
    PushRun(&out, r.begin / vpp, (r.end + vpp - 1) / vpp);
  }
  return out;
}

std::vector<Run> PositionRunsForPages(const std::vector<Run>& page_runs,
                                      uint32_t vpp, uint64_t num_tuples) {
  std::vector<Run> out;
  for (const Run& r : page_runs) {
    PushRun(&out, r.begin * vpp, std::min(r.end * vpp, num_tuples));
  }
  return out;
}

bool ZonePredicate::ZoneMayMatch(const ZoneEntry& zone) const {
  if (!zone.has_values) return false;  // no value, no match
  if (!usable) return true;
  if (empty) return negate;
  if (!negate) return zone.max_key >= lo && zone.min_key <= hi;
  // A negated predicate is false everywhere only when key membership is
  // equivalent to the underlying equality AND the whole zone sits inside
  // the forbidden interval.
  return !(exact && lo <= zone.min_key && zone.max_key <= hi);
}

bool ZonePredicate::PageMayMatch(const ZoneEntry& zone,
                                 const AttrSynopsis& synopsis,
                                 size_t page) const {
  if (!ZoneMayMatch(zone)) return false;
  if (match_bits == 0 || synopsis.bitmap_bits == 0) return true;
  const uint64_t* present = synopsis.PageBitmap(page);
  const size_t words = synopsis.WordsPerPage();
  for (size_t w = 0; w < words; ++w) {
    if (present[w] & match_codes[w]) return true;
  }
  return false;
}

ZonePredicate BuildZonePredicate(const AttributeDesc& attr,
                                 const Predicate& pred,
                                 const Dictionary* dict, size_t bitmap_bits) {
  ZonePredicate zp;
  zp.attr = static_cast<size_t>(pred.attr_index());
  constexpr uint32_t kMax = 0xFFFFFFFFu;
  if (!pred.is_text()) {
    const uint32_t k = ZoneKeyInt32(pred.int_operand());
    zp.exact = true;
    switch (pred.op()) {
      case CompareOp::kEq:
        zp.lo = zp.hi = k;
        break;
      case CompareOp::kNe:
        zp.lo = zp.hi = k;
        zp.negate = true;
        break;
      case CompareOp::kLt:
        if (k == 0) {
          zp.empty = true;
        } else {
          zp.lo = 0;
          zp.hi = k - 1;
        }
        break;
      case CompareOp::kLe:
        zp.lo = 0;
        zp.hi = k;
        break;
      case CompareOp::kGt:
        if (k == kMax) {
          zp.empty = true;
        } else {
          zp.lo = k + 1;
          zp.hi = kMax;
        }
        break;
      case CompareOp::kGe:
        zp.lo = k;
        zp.hi = kMax;
        break;
    }
  } else {
    const std::string& operand = pred.text_operand();
    const int width = attr.width;
    const size_t m = static_cast<size_t>(ZoneKeyTextPrefix(width));
    if (operand.size() > static_cast<size_t>(width)) {
      // Malformed predicate (compares past the value); never prune on it.
      zp.usable = false;
      return zp;
    }
    const auto* op_bytes = reinterpret_cast<const uint8_t*>(operand.data());
    if (operand.size() <= m) {
      // The operand fits inside the key prefix, so the key interval is
      // equivalent to the predicate's prefix comparison.
      uint8_t buf_lo[4] = {0, 0, 0, 0};
      uint8_t buf_hi[4] = {0xFF, 0xFF, 0xFF, 0xFF};
      std::copy(op_bytes, op_bytes + operand.size(), buf_lo);
      std::copy(op_bytes, op_bytes + operand.size(), buf_hi);
      const uint32_t k_lo = ZoneKeyText(buf_lo, width);
      const uint32_t k_hi = ZoneKeyText(buf_hi, width);
      zp.exact = true;
      switch (pred.op()) {
        case CompareOp::kEq:
          zp.lo = k_lo;
          zp.hi = k_hi;
          break;
        case CompareOp::kNe:
          zp.lo = k_lo;
          zp.hi = k_hi;
          zp.negate = true;
          break;
        case CompareOp::kLt:
          if (k_lo == 0) {
            zp.empty = true;
          } else {
            zp.lo = 0;
            zp.hi = k_lo - 1;
          }
          break;
        case CompareOp::kLe:
          zp.lo = 0;
          zp.hi = k_hi;
          break;
        case CompareOp::kGt:
          if (k_hi == kMax) {
            zp.empty = true;
          } else {
            zp.lo = k_hi + 1;
            zp.hi = kMax;
          }
          break;
        case CompareOp::kGe:
          zp.lo = k_lo;
          zp.hi = kMax;
          break;
      }
    } else {
      // Only the operand's first m bytes are visible in the key domain;
      // the interval is a superset of the match set ("may match"), never
      // exact, and inequality cannot prune at all.
      const uint32_t k = ZoneKeyText(op_bytes, width);
      switch (pred.op()) {
        case CompareOp::kEq:
          zp.lo = zp.hi = k;
          break;
        case CompareOp::kNe:
          zp.usable = false;
          break;
        case CompareOp::kLt:
        case CompareOp::kLe:
          zp.lo = 0;
          zp.hi = k;
          break;
        case CompareOp::kGt:
        case CompareOp::kGe:
          zp.lo = k;
          zp.hi = kMax;
          break;
      }
    }
  }
  // Dictionary presence refinement: evaluate the predicate exactly over
  // the (small) code domain once; pages then just AND bitmaps.
  if (dict != nullptr && bitmap_bits > 0) {
    const size_t n = std::min<size_t>(bitmap_bits, dict->size());
    zp.match_codes.assign((bitmap_bits + 63) / 64, 0);
    zp.match_bits = bitmap_bits;
    for (size_t code = 0; code < n; ++code) {
      const uint8_t* entry = dict->Decode(static_cast<uint32_t>(code));
      if (entry != nullptr && pred.Eval(entry)) {
        zp.match_codes[code / 64] |= uint64_t{1} << (code % 64);
      }
    }
  }
  return zp;
}

void PrunePlan::AddCountersTo(ExecCounters* c) const {
  if (active) {
    c->prune_plans += 1;
    c->pages_pruned += pages_pruned;
    c->pages_retained += pages_retained;
  }
  if (declined) c->prune_declined += 1;
  if (corrupt) c->synopsis_corrupt += 1;
}

double PruneSurvivingFraction(const PrunePlan& plan, uint64_t num_tuples) {
  if (!plan.active || num_tuples == 0) return 1.0;
  return static_cast<double>(TotalRunLength(plan.global)) /
         static_cast<double>(num_tuples);
}

namespace {

/// Pairs a lowered predicate with the synopsis of its attribute's file.
struct BoundZonePredicate {
  ZonePredicate zp;
  const AttrSynopsis* synopsis = nullptr;
};

/// Page-index runs of `file` whose zones may satisfy every predicate in
/// `preds`, restricted to pages [first_page, end_page). Tallies
/// pruned/retained pages into the plan.
std::vector<Run> SurvivingPages(const std::vector<BoundZonePredicate>& preds,
                                uint64_t first_page, uint64_t end_page,
                                PrunePlan* plan) {
  std::vector<Run> out;
  for (uint64_t p = first_page; p < end_page; ++p) {
    bool survive = true;
    for (const BoundZonePredicate& bp : preds) {
      if (!bp.zp.PageMayMatch(bp.synopsis->pages[p], *bp.synopsis, p)) {
        survive = false;
        break;
      }
    }
    if (survive) {
      plan->pages_retained += 1;
      PushRun(&out, p, p + 1);
    } else {
      plan->pages_pruned += 1;
    }
  }
  return out;
}

PrunePlan Declined(PrunePlan plan, bool corrupt = false) {
  plan.declined = true;
  plan.corrupt = corrupt;
  plan.active = false;
  plan.nodes.clear();
  plan.global.clear();
  plan.pages_pruned = plan.pages_retained = 0;
  return plan;
}

}  // namespace

PrunePlan BuildPrunePlan(const OpenTable& table, const ScanSpec& spec) {
  PrunePlan plan;
  plan.requested = spec.prune;
  if (!spec.prune) return plan;
  const TableMeta& meta = table.meta();
  if (spec.predicates.empty() || meta.num_tuples == 0) {
    // Nothing to prune on; not an error, but surfaced as a decline so
    // `--trace` explains why a pruned scan read everything.
    return Declined(std::move(plan));
  }
  if (table.synopsis_corrupt()) {
    return Declined(std::move(plan), /*corrupt=*/true);
  }
  const TableSynopsis* syn = table.synopsis();
  if (syn == nullptr) return Declined(std::move(plan));
  const Schema& schema = meta.schema;
  for (const Predicate& pred : spec.predicates) {
    const size_t attr = static_cast<size_t>(pred.attr_index());
    if (attr >= schema.num_attributes()) return Declined(std::move(plan));
    // kCharPack columns have no packed key/code the pruner (or the
    // vectorized path) understands; always decline and scan fully.
    if (schema.attribute(attr).codec.kind == CompressionKind::kCharPack) {
      return Declined(std::move(plan));
    }
  }

  const bool column = meta.layout == Layout::kColumn;
  const std::vector<size_t> pipeline =
      column ? ScanPipelineAttrs(spec) : std::vector<size_t>{0};
  for (size_t attr : pipeline) {
    const size_t file = column ? attr : 0;
    // Position <-> page arithmetic (and morsel carving) needs uniform
    // pages in every file the scan touches.
    if (meta.PageValues(file) == 0) return Declined(std::move(plan));
  }

  // The scan's position range (count fields may be UINT64_MAX, so clamp
  // before any arithmetic that could overflow).
  uint64_t first_row = 0;
  uint64_t end_row = meta.num_tuples;
  if (!spec.range.is_all()) {
    if (spec.range.unit == ScanRange::Unit::kPages) {
      if (column) return Declined(std::move(plan));
      const uint32_t vpp = meta.PageValues(0);
      const uint64_t total_pages = meta.file_pages[0];
      const uint64_t fp = std::min(spec.range.first_page(), total_pages);
      const uint64_t np = std::min(spec.range.num_pages(), total_pages - fp);
      first_row = fp * vpp;
      end_row = std::min((fp + np) * vpp, meta.num_tuples);
    } else {
      if (!column) return Declined(std::move(plan));
      first_row = std::min(spec.range.first_row(), meta.num_tuples);
      end_row = first_row + std::min(spec.range.num_rows(),
                                     meta.num_tuples - first_row);
    }
    if (first_row >= end_row) return Declined(std::move(plan));
  }

  // Lower every predicate against its file's synopsis.
  std::vector<BoundZonePredicate> preds;
  for (const Predicate& pred : spec.predicates) {
    const size_t attr = static_cast<size_t>(pred.attr_index());
    const size_t file = column ? attr : 0;
    if (file >= syn->files.size()) return Declined(std::move(plan));
    const AttrSynopsis* attr_syn = syn->files[file].Find(attr);
    if (attr_syn == nullptr ||
        attr_syn->pages.size() != meta.file_pages[file]) {
      return Declined(std::move(plan));
    }
    BoundZonePredicate bp;
    bp.zp = BuildZonePredicate(schema.attribute(attr), pred,
                               table.dict(attr), attr_syn->bitmap_bits);
    bp.synopsis = attr_syn;
    preds.push_back(std::move(bp));
  }

  if (!column) {
    // Row/PAX: one physical file, all predicates gate the same pages.
    NodePrunePlan node;
    node.attr = 0;
    node.file = 0;
    node.vpp = meta.PageValues(0);
    node.has_preds = true;
    const uint64_t first_page = first_row / node.vpp;
    const uint64_t end_page = std::min<uint64_t>(
        (end_row + node.vpp - 1) / node.vpp, meta.file_pages[0]);
    node.page_runs = SurvivingPages(preds, first_page, end_page, &plan);
    node.pages = TotalRunLength(node.page_runs);
    node.accept = PositionRunsForPages(node.page_runs, node.vpp,
                                       meta.num_tuples);
    plan.global = IntersectRuns(node.accept, {Run{first_row, end_row}});
    plan.nodes.push_back(std::move(node));
  } else {
    // Column pipeline: predicate nodes form a prefix of the pipeline.
    // Node k fetches the pages of its file overlapping the positions
    // still alive after the zones of nodes 0..k; positions outside its
    // own accept runs are zone-rejected at evaluation time without
    // fetching (sound: their pages were proven predicate-free).
    std::vector<Run> alive = {Run{first_row, end_row}};
    for (size_t attr : pipeline) {
      NodePrunePlan node;
      node.attr = attr;
      node.file = attr;
      node.vpp = meta.PageValues(attr);
      std::vector<BoundZonePredicate> node_preds;
      for (size_t i = 0; i < preds.size(); ++i) {
        if (preds[i].zp.attr == attr) node_preds.push_back(preds[i]);
      }
      node.has_preds = !node_preds.empty();
      if (node.has_preds) {
        const std::vector<Run> surviving = SurvivingPages(
            node_preds, 0, meta.file_pages[attr], &plan);
        node.accept =
            PositionRunsForPages(surviving, node.vpp, meta.num_tuples);
        alive = IntersectRuns(alive, node.accept);
        node.page_runs = PageRunsForPositions(alive, node.vpp);
        node.pages = TotalRunLength(node.page_runs);
      }
      plan.nodes.push_back(std::move(node));
    }
    plan.global = alive;
    // Projection-only nodes fetch exactly the pages the surviving
    // positions touch.
    for (NodePrunePlan& node : plan.nodes) {
      if (node.has_preds) continue;
      node.page_runs = PageRunsForPositions(plan.global, node.vpp);
      node.pages = TotalRunLength(node.page_runs);
    }
  }

  // An honored plan that skips nothing is reported inactive: the scan
  // runs the untouched (and counter-identical) unpruned path.
  plan.active = plan.pages_pruned > 0;
  if (!plan.active) {
    plan.nodes.clear();
    plan.global.clear();
    plan.pages_pruned = plan.pages_retained = 0;
  }
  return plan;
}

uint64_t EstimateScanWorkingSet(const OpenTable& table, const ScanSpec& spec) {
  const TableMeta& meta = table.meta();
  const bool column = meta.layout == Layout::kColumn;
  const PrunePlan plan = BuildPrunePlan(table, spec);
  uint64_t total = 0;
  if (plan.active) {
    for (const NodePrunePlan& node : plan.nodes) {
      for (const ByteRun& run : ByteRunsForPages(
               node.page_runs, meta.page_size, table.FileBytes(node.attr))) {
        total += run.length;
      }
    }
    return total;
  }
  for (size_t attr :
       (column ? ScanPipelineAttrs(spec) : std::vector<size_t>{0})) {
    total += table.FileBytes(attr);
  }
  return total;
}

std::vector<ByteRun> ByteRunsForPages(const std::vector<Run>& page_runs,
                                      size_t page_size, uint64_t file_bytes) {
  std::vector<ByteRun> out;
  for (const Run& r : page_runs) {
    ByteRun b;
    b.offset = r.begin * page_size;
    if (b.offset >= file_bytes) continue;
    b.length = std::min((r.end - r.begin) * page_size, file_bytes - b.offset);
    out.push_back(b);
  }
  return out;
}

namespace {

class MultiRunStream : public SequentialStream {
 public:
  MultiRunStream(IoBackend* backend, std::string path, IoOptions base,
                 std::vector<ByteRun> runs, uint64_t file_bytes)
      : backend_(backend), path_(std::move(path)), base_(base),
        runs_(std::move(runs)), file_bytes_(file_bytes) {}

  Result<IoView> Next() override {
    while (true) {
      if (current_ == nullptr) {
        if (next_run_ >= runs_.size()) return IoView{};
        IoOptions options = base_;
        options.start_offset = runs_[next_run_].offset;
        options.length = runs_[next_run_].length;
        RODB_ASSIGN_OR_RETURN(current_,
                              backend_->OpenStream(path_, options));
        ++next_run_;
      }
      RODB_ASSIGN_OR_RETURN(IoView view, current_->Next());
      if (view.size > 0) return view;
      current_.reset();
    }
  }

  uint64_t file_size() const override { return file_bytes_; }

 private:
  IoBackend* backend_;
  std::string path_;
  IoOptions base_;
  std::vector<ByteRun> runs_;
  uint64_t file_bytes_;
  size_t next_run_ = 0;
  std::unique_ptr<SequentialStream> current_;
};

}  // namespace

Result<std::unique_ptr<SequentialStream>> OpenMultiRunStream(
    IoBackend* backend, const std::string& path, const IoOptions& base,
    std::vector<ByteRun> runs, uint64_t file_bytes) {
  return std::unique_ptr<SequentialStream>(new MultiRunStream(
      backend, path, base, std::move(runs), file_bytes));
}

}  // namespace rodb
