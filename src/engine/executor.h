#ifndef RODB_ENGINE_EXECUTOR_H_
#define RODB_ENGINE_EXECUTOR_H_

#include <vector>

#include "common/stopwatch.h"
#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "hwmodel/disk_model.h"
#include "hwmodel/hardware_config.h"
#include "hwmodel/time_breakdown.h"
#include "storage/catalog.h"

namespace rodb {

/// FNV-1a offset basis -- the checksum value of an empty output.
inline constexpr uint64_t kFnv1aSeed = 14695981039346656037ULL;

/// Extends a running FNV-1a hash over `size` bytes. The hash is chained
/// over the output stream in order (NOT combinable from independent
/// partial hashes), so parallel execution buffers each morsel's output
/// bytes and folds them through this in morsel order.
uint64_t Fnv1aExtend(uint64_t hash, const uint8_t* data, size_t size);

/// What one query execution produced.
struct ExecutionResult {
  uint64_t rows = 0;
  uint64_t blocks = 0;
  /// FNV-1a over the output tuple bytes, in order. Used to check that row
  /// and column plans produce identical results.
  uint64_t output_checksum = 0;
  /// Host wall clock / CPU actually spent (the "measured" numbers).
  MeasuredInterval measured;
};

/// Drives a plan to completion: Open, pull all blocks, Close. The stats
/// sink accumulates the counters the hardware model consumes.
Result<ExecutionResult> Execute(Operator* root, ExecStats* stats);

/// The disk streams a scan reads, for the disk-array model: the single
/// row file, or one stream per column the query touches (pipeline order).
std::vector<StreamSpec> ScanStreams(const OpenTable& table,
                                    const ScanSpec& spec);

/// Timing of a query on the modeled hardware (Section 5's overlap
/// assumption: CPU and I/O proceed concurrently, elapsed = max of the
/// two).
struct ModeledTiming {
  TimeBreakdown cpu;        ///< five-component CPU breakdown
  DiskSimResult disk;       ///< disk-array simulation
  double cpu_seconds = 0.0;
  double io_seconds = 0.0;
  double elapsed_seconds = 0.0;
  bool io_bound = false;
};

/// Converts the execution counters plus the scan's stream list into
/// modeled times on `hw`. `competing` describes concurrent disk traffic
/// (Figure 11); empty means an otherwise idle system.
ModeledTiming ModelQueryTiming(const ExecCounters& counters,
                               const HardwareConfig& hw, int prefetch_depth,
                               const std::vector<StreamSpec>& query_streams,
                               const std::vector<StreamSpec>& competing = {});

/// Shrinks a scan's stream list by the fraction of bytes a BlockCache
/// served: the disk model should only see the traffic that actually
/// reached the backend. A fully warm run (io_bytes_read == 0) maps to
/// empty streams, so ModelQueryTiming reports it CPU-bound; a cold run
/// passes through unchanged.
std::vector<StreamSpec> CacheAdjustedStreams(
    std::vector<StreamSpec> streams, const ExecCounters& counters);

/// Scales every per-tuple counter by `factor`, used to project a scaled-
/// down run to the paper's 60M-tuple tables (I/O byte counters included;
/// see DESIGN.md substitution #4).
ExecCounters ScaleCounters(const ExecCounters& counters, double factor);

}  // namespace rodb

#endif  // RODB_ENGINE_EXECUTOR_H_
