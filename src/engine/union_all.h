#ifndef RODB_ENGINE_UNION_ALL_H_
#define RODB_ENGINE_UNION_ALL_H_

#include <memory>
#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "io/io.h"
#include "storage/catalog.h"

namespace rodb {

/// Concatenates the block streams of several children with identical
/// layouts (child 0 fully drained, then child 1, ...). With children
/// that are page-range partitions of one table, the output equals the
/// full-table scan in order.
///
/// This is the building block for the paper's "degree of parallelism"
/// capacity-planning factor (Section 4, factor iv): a DOP-k plan is k
/// partitioned scans whose CPU work the hardware model divides across k
/// CPUs (HardwareConfig::num_cpus).
class UnionAllOperator final : public Operator {
 public:
  static Result<OperatorPtr> Make(std::vector<OperatorPtr> children,
                                  ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return children_.front()->output_layout();
  }

 private:
  UnionAllOperator(std::vector<OperatorPtr> children, ExecStats* stats)
      : children_(std::move(children)), stats_(stats) {}

  std::vector<OperatorPtr> children_;
  ExecStats* stats_;
  size_t current_ = 0;
};

/// Splits a row/PAX table scan into `partitions` contiguous page ranges
/// and unions them. The result is plan-compatible with the single scan
/// (same tuples, same order) while each partition's I/O is an
/// independent sequential range -- the shape a DOP-k executor would hand
/// to k workers.
Result<OperatorPtr> MakePartitionedScan(const OpenTable* table,
                                        const ScanSpec& spec, int partitions,
                                        IoBackend* backend, ExecStats* stats);

}  // namespace rodb

#endif  // RODB_ENGINE_UNION_ALL_H_
