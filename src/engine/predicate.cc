#include "engine/predicate.h"

#include <cstring>

#include "common/bytes.h"

namespace rodb {

Predicate Predicate::Int32(int attr_index, CompareOp op, int32_t operand) {
  Predicate p;
  p.attr_index_ = attr_index;
  p.op_ = op;
  p.is_text_ = false;
  p.int_operand_ = operand;
  return p;
}

Predicate Predicate::Text(int attr_index, CompareOp op, std::string operand) {
  Predicate p;
  p.attr_index_ = attr_index;
  p.op_ = op;
  p.is_text_ = true;
  p.text_operand_ = std::move(operand);
  return p;
}

namespace {
template <typename T>
bool Compare(CompareOp op, T cmp_lt, T cmp_eq) {
  // cmp_lt: value < operand; cmp_eq: value == operand
  switch (op) {
    case CompareOp::kEq:
      return cmp_eq;
    case CompareOp::kNe:
      return !cmp_eq;
    case CompareOp::kLt:
      return cmp_lt;
    case CompareOp::kLe:
      return cmp_lt || cmp_eq;
    case CompareOp::kGt:
      return !cmp_lt && !cmp_eq;
    case CompareOp::kGe:
      return !cmp_lt;
  }
  return false;
}
}  // namespace

bool Predicate::Eval(const uint8_t* value) const {
  if (!is_text_) {
    const int32_t v = LoadLE32s(value);
    return Compare(op_, v < int_operand_, v == int_operand_);
  }
  const int c = std::memcmp(value, text_operand_.data(), text_operand_.size());
  return Compare(op_, c < 0, c == 0);
}

}  // namespace rodb
