#include "engine/reference_eval.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/bytes.h"
#include "common/macros.h"
#include "engine/executor.h"

namespace rodb {

namespace {

Status ValidateSpec(const Schema& schema, const ScanSpec& spec) {
  if (spec.projection.empty()) {
    return Status::InvalidArgument("scan projection must not be empty");
  }
  for (int attr : spec.projection) {
    if (attr < 0 || static_cast<size_t>(attr) >= schema.num_attributes()) {
      return Status::OutOfRange("projection attribute out of range");
    }
  }
  for (const Predicate& pred : spec.predicates) {
    if (pred.attr_index() < 0 ||
        static_cast<size_t>(pred.attr_index()) >= schema.num_attributes()) {
      return Status::OutOfRange("predicate attribute out of range");
    }
  }
  return Status::OK();
}

void FinishChecksum(ReferenceResult* result) {
  uint64_t checksum = kFnv1aSeed;
  for (const std::vector<uint8_t>& tuple : result->tuples) {
    checksum = Fnv1aExtend(checksum, tuple.data(), tuple.size());
  }
  result->rows = result->tuples.size();
  result->output_checksum = checksum;
}

/// One group's accumulators, mirroring AggAccumulator.
struct RefGroup {
  int64_t count = 0;
  std::vector<int64_t> acc;
};

}  // namespace

Result<ReferenceResult> ReferenceScan(
    const Schema& schema, const std::vector<std::vector<uint8_t>>& tuples,
    const ScanSpec& spec) {
  RODB_RETURN_IF_ERROR(ValidateSpec(schema, spec));
  size_t out_width = 0;
  for (int attr : spec.projection) {
    out_width += static_cast<size_t>(
        schema.attribute(static_cast<size_t>(attr)).width);
  }
  ReferenceResult result;
  for (const std::vector<uint8_t>& raw : tuples) {
    bool pass = true;
    for (const Predicate& pred : spec.predicates) {
      const uint8_t* value =
          raw.data() + schema.attr_offset(static_cast<size_t>(pred.attr_index()));
      if (!pred.Eval(value)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    std::vector<uint8_t> out;
    out.reserve(out_width);
    for (int attr : spec.projection) {
      const size_t a = static_cast<size_t>(attr);
      const uint8_t* value = raw.data() + schema.attr_offset(a);
      out.insert(out.end(), value,
                 value + static_cast<size_t>(schema.attribute(a).width));
    }
    result.tuples.push_back(std::move(out));
  }
  FinishChecksum(&result);
  return result;
}

Result<ReferenceResult> ReferenceAggregate(
    const Schema& schema, const std::vector<std::vector<uint8_t>>& tuples,
    const ScanSpec& spec, const AggPlan& plan) {
  RODB_ASSIGN_OR_RETURN(ReferenceResult scanned,
                        ReferenceScan(schema, tuples, spec));
  if (plan.aggs.empty()) {
    return Status::InvalidArgument("aggregation needs at least one aggregate");
  }
  // Column indices address the scan projection; build their byte offsets.
  std::vector<size_t> col_offsets;
  std::vector<int> col_widths;
  size_t offset = 0;
  for (int attr : spec.projection) {
    const int width = schema.attribute(static_cast<size_t>(attr)).width;
    col_offsets.push_back(offset);
    col_widths.push_back(width);
    offset += static_cast<size_t>(width);
  }
  auto check_col = [&](int col) -> Status {
    if (col < 0 || static_cast<size_t>(col) >= col_widths.size()) {
      return Status::OutOfRange("aggregate column out of range");
    }
    if (col_widths[static_cast<size_t>(col)] != 4) {
      return Status::InvalidArgument("aggregate input must be int32");
    }
    return Status::OK();
  };
  if (plan.group_column >= 0) {
    RODB_RETURN_IF_ERROR(check_col(plan.group_column));
  }
  for (const AggSpec& agg : plan.aggs) {
    if (agg.func == AggFunc::kCount) continue;
    RODB_RETURN_IF_ERROR(check_col(agg.column));
  }

  auto make_group = [&] {
    RefGroup group;
    group.acc.resize(plan.aggs.size());
    for (size_t i = 0; i < plan.aggs.size(); ++i) {
      switch (plan.aggs[i].func) {
        case AggFunc::kMin:
          group.acc[i] = std::numeric_limits<int64_t>::max();
          break;
        case AggFunc::kMax:
          group.acc[i] = std::numeric_limits<int64_t>::min();
          break;
        default:
          group.acc[i] = 0;
          break;
      }
    }
    return group;
  };
  // std::map iterates in ascending key order -- the engine's emit order.
  std::map<int32_t, RefGroup> groups;
  constexpr int32_t kGlobalKey = 0;
  for (const std::vector<uint8_t>& tuple : scanned.tuples) {
    const int32_t key =
        plan.group_column >= 0
            ? LoadLE32s(tuple.data() +
                        col_offsets[static_cast<size_t>(plan.group_column)])
            : kGlobalKey;
    auto it = groups.find(key);
    if (it == groups.end()) it = groups.emplace(key, make_group()).first;
    RefGroup& group = it->second;
    ++group.count;
    for (size_t i = 0; i < plan.aggs.size(); ++i) {
      const AggSpec& agg = plan.aggs[i];
      if (agg.func == AggFunc::kCount) continue;
      const int64_t v = LoadLE32s(
          tuple.data() + col_offsets[static_cast<size_t>(agg.column)]);
      switch (agg.func) {
        case AggFunc::kSum:
        case AggFunc::kAvg:
          group.acc[i] += v;
          break;
        case AggFunc::kMin:
          group.acc[i] = std::min(group.acc[i], v);
          break;
        case AggFunc::kMax:
          group.acc[i] = std::max(group.acc[i], v);
          break;
        case AggFunc::kCount:
          break;
      }
    }
  }
  // Note: empty input produces zero groups (no global row), matching the
  // engine's aggregate operators and the parallel merge.

  ReferenceResult result;
  for (const auto& [key, group] : groups) {
    std::vector<uint8_t> out;
    if (plan.group_column >= 0) {
      out.resize(4);
      StoreLE32s(out.data(), key);
    }
    const size_t agg_base = out.size();
    out.resize(agg_base + 8 * plan.aggs.size());
    for (size_t i = 0; i < plan.aggs.size(); ++i) {
      int64_t v = 0;
      switch (plan.aggs[i].func) {
        case AggFunc::kCount:
          v = group.count;
          break;
        case AggFunc::kAvg:
          v = group.count == 0 ? 0 : group.acc[i] / group.count;
          break;
        default:
          v = group.acc[i];
          break;
      }
      StoreLE64(out.data() + agg_base + 8 * i, static_cast<uint64_t>(v));
    }
    result.tuples.push_back(std::move(out));
  }
  FinishChecksum(&result);
  return result;
}

}  // namespace rodb
