#include "engine/tuple_block.h"

namespace rodb {

BlockLayout BlockLayout::FromWidths(const std::vector<int>& widths) {
  BlockLayout layout;
  layout.widths = widths;
  layout.offsets.reserve(widths.size());
  for (int w : widths) {
    layout.offsets.push_back(layout.tuple_width);
    layout.tuple_width += w;
  }
  return layout;
}

BlockLayout BlockLayout::FromSchema(const Schema& schema,
                                    const std::vector<int>& attr_indices) {
  std::vector<int> widths;
  widths.reserve(attr_indices.size());
  for (int idx : attr_indices) {
    widths.push_back(schema.attribute(static_cast<size_t>(idx)).width);
  }
  return FromWidths(widths);
}

}  // namespace rodb
