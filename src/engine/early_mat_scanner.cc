#include "engine/early_mat_scanner.h"

#include <algorithm>

#include "common/macros.h"
#include "engine/scanner_io.h"
#include "obs/span.h"

namespace rodb {

EarlyMatColumnScanner::EarlyMatColumnScanner(const OpenTable* table,
                                             ScanSpec spec,
                                             IoBackend* backend,
                                             ExecStats* stats,
                                             BlockLayout layout)
    : table_(table), spec_(std::move(spec)), backend_(backend), stats_(stats),
      block_(std::move(layout), spec_.block_tuples) {}

Result<OperatorPtr> EarlyMatColumnScanner::Make(const OpenTable* table,
                                                ScanSpec spec,
                                                IoBackend* backend,
                                                ExecStats* stats) {
  if (table == nullptr || backend == nullptr || stats == nullptr) {
    return Status::InvalidArgument("EarlyMatColumnScanner: null dependency");
  }
  if (table->meta().layout != Layout::kColumn) {
    return Status::InvalidArgument(
        "EarlyMatColumnScanner requires a column-layout table");
  }
  const Schema& schema = table->schema();
  if (spec.projection.empty()) {
    return Status::InvalidArgument("scan projection must not be empty");
  }
  for (int attr : spec.projection) {
    if (attr < 0 || static_cast<size_t>(attr) >= schema.num_attributes()) {
      return Status::OutOfRange("projection attribute out of range");
    }
  }
  for (const Predicate& pred : spec.predicates) {
    if (pred.attr_index() < 0 ||
        static_cast<size_t>(pred.attr_index()) >= schema.num_attributes()) {
      return Status::OutOfRange("predicate attribute out of range");
    }
  }
  if (spec.read.io_unit_bytes % table->meta().page_size != 0) {
    return Status::InvalidArgument(
        "I/O unit must be a multiple of the page size");
  }
  RODB_RETURN_IF_ERROR(spec.range.Validate(Layout::kColumn));
  if (!spec.range.is_all()) {
    // The lockstep cursors have no position-seek machinery; this scanner
    // exists as a whole-table ablation, not a morsel worker.
    return Status::NotSupported(
        "early-materialized scans read the whole table (no ranges)");
  }
  BlockLayout layout = BlockLayout::FromSchema(schema, spec.projection);
  std::unique_ptr<EarlyMatColumnScanner> scanner(new EarlyMatColumnScanner(
      table, std::move(spec), backend, stats, std::move(layout)));
  scanner->backend_ = ScanBackendStack(backend, scanner->spec_, stats,
                                       &scanner->owned_backends_);
  const ScanSpec& s = scanner->spec_;
  int max_width = 1;
  for (size_t attr : ScanPipelineAttrs(s)) {
    Cursor cursor;
    cursor.attr = attr;
    const auto it = std::find(s.projection.begin(), s.projection.end(),
                              static_cast<int>(attr));
    cursor.out_col = it == s.projection.end()
                         ? -1
                         : static_cast<int>(it - s.projection.begin());
    for (const Predicate& pred : s.predicates) {
      if (static_cast<size_t>(pred.attr_index()) == attr) {
        cursor.preds.push_back(pred);
      }
    }
    RODB_ASSIGN_OR_RETURN(cursor.codec, table->MakeAttrCodec(attr));
    cursor.kind = cursor.codec->kind();
    cursor.width = schema.attribute(attr).width;
    max_width = std::max(max_width, cursor.width);
    scanner->cursors_.push_back(std::move(cursor));
  }
  scanner->value_scratch_.resize(static_cast<size_t>(max_width));
  return OperatorPtr(std::move(scanner));
}

Status EarlyMatColumnScanner::Open() {
  if (opened_) return Status::OK();
  plan_ = BuildPrunePlan(*table_, spec_);
  plan_.AddCountersTo(&stats_->counters());
  for (Cursor& cursor : cursors_) {
    const IoOptions options =
        ScanStreamOptions(spec_, stats_, *table_, cursor.attr);
    if (plan_.active) {
      // Lockstep iteration only visits the surviving positions, so every
      // cursor streams exactly the pages of its file overlapping them.
      cursor.vpp = table_->meta().PageValues(cursor.attr);
      RODB_ASSIGN_OR_RETURN(
          cursor.stream,
          OpenMultiRunStream(
              backend_, table_->FilePath(cursor.attr), options,
              ByteRunsForPages(PageRunsForPositions(plan_.global, cursor.vpp),
                               table_->meta().page_size,
                               table_->FileBytes(cursor.attr)),
              table_->FileBytes(cursor.attr)));
      continue;
    }
    RODB_ASSIGN_OR_RETURN(
        cursor.stream,
        backend_->OpenStream(table_->FilePath(cursor.attr), options));
  }
  opened_ = true;
  return Status::OK();
}

void EarlyMatColumnScanner::CountDecode(const Cursor& cursor, uint64_t n) {
  ExecCounters& c = stats_->counters();
  switch (cursor.kind) {
    case CompressionKind::kBitPack:
      c.values_decoded_bitpack += n;
      break;
    case CompressionKind::kDict:
    case CompressionKind::kCharPack:
      c.values_decoded_dict += n;
      break;
    case CompressionKind::kFor:
      c.values_decoded_for += n;
      break;
    case CompressionKind::kForDelta:
      c.values_decoded_fordelta += n;
      break;
    case CompressionKind::kNone:
      break;
  }
}

Status EarlyMatColumnScanner::AdvancePage(Cursor& cursor) {
  while (true) {
    // Page-boundary liveness check: a cancelled or expired query stops
    // within one page's worth of work.
    RODB_RETURN_IF_ERROR(stats_->CheckAlive());
    if (cursor.page_in_view >= cursor.pages_in_view) {
      {
        obs::SpanTimer io_span(stats_->trace(), obs::TracePhase::kIo);
        RODB_ASSIGN_OR_RETURN(cursor.view, cursor.stream->Next());
      }
      if (cursor.view.size == 0) {
        cursor.eof = true;
        return Status::OK();
      }
      cursor.pages_in_view = cursor.view.size / table_->meta().page_size;
      cursor.page_in_view = 0;
      if (cursor.pages_in_view == 0) {
        return Status::Corruption("I/O unit smaller than one page");
      }
    }
    if (plan_.active) {
      // Views from a pruned (gapped) stream carry their absolute file
      // offset; recover the page's first value position from it.
      const uint64_t file_page =
          cursor.view.file_offset / table_->meta().page_size +
          cursor.page_in_view;
      cursor.page_start_pos = file_page * cursor.vpp;
    }
    const uint8_t* page_data =
        cursor.view.data + cursor.page_in_view * table_->meta().page_size;
    ++cursor.page_in_view;
    RODB_ASSIGN_OR_RETURN(
        ColumnPageReader reader,
        ColumnPageReader::Open(page_data, table_->meta().page_size,
                               cursor.codec.get(),
                               spec_.read.verify_checksums));
    stats_->counters().pages_parsed += 1;
    // Every column streams fully under early materialization.
    stats_->AddSequentialBytes(table_->meta().page_size);
    cursor.page.emplace(reader);
    cursor.consumed_in_page = 0;
    if (cursor.page->count() > 0) return Status::OK();
    cursor.page.reset();
  }
}

Status EarlyMatColumnScanner::EnsureValue(Cursor& cursor) {
  if (!cursor.page.has_value() ||
      cursor.consumed_in_page >= cursor.page->count()) {
    RODB_RETURN_IF_ERROR(AdvancePage(cursor));
  }
  return Status::OK();
}

Status EarlyMatColumnScanner::SeekCursor(Cursor& cursor, uint64_t pos) {
  while (!cursor.eof &&
         (!cursor.page.has_value() ||
          pos >= cursor.page_start_pos + cursor.page->count())) {
    RODB_RETURN_IF_ERROR(AdvancePage(cursor));
  }
  if (cursor.eof) {
    return Status::Corruption(
        "pruned column " + std::to_string(cursor.attr) +
        " ended before surviving position " + std::to_string(pos));
  }
  RODB_CHECK(pos >= cursor.page_start_pos);
  const uint64_t in_page = pos - cursor.page_start_pos;
  RODB_CHECK(in_page >= cursor.consumed_in_page);
  const uint64_t skip = in_page - cursor.consumed_in_page;
  if (skip > 0) {
    cursor.page->SkipValues(skip);
    cursor.consumed_in_page += skip;
    // FOR-delta decodes everything it passes over.
    if (cursor.kind == CompressionKind::kForDelta) CountDecode(cursor, skip);
  }
  return Status::OK();
}

Result<TupleBlock*> EarlyMatColumnScanner::NextPruned() {
  ExecCounters& c = stats_->counters();
  const BlockLayout& layout = block_.layout();
  uint8_t* value = value_scratch_.data();
  block_.Clear();
  while (!block_.full() && run_idx_ < plan_.global.size()) {
    const Run& run = plan_.global[run_idx_];
    if (next_position_ < run.begin) next_position_ = run.begin;
    if (next_position_ >= run.end) {
      ++run_idx_;
      continue;
    }
    RODB_RETURN_IF_ERROR(stats_->CheckAlive());
    const uint64_t position = next_position_++;
    c.tuples_examined += 1;
    bool pass = true;
    // Values are written directly into the next (not yet appended) slot;
    // the slot only becomes part of the block if the row qualifies.
    uint8_t* slot = block_.tuple(block_.size());
    for (Cursor& cursor : cursors_) {
      RODB_RETURN_IF_ERROR(SeekCursor(cursor, position));
      cursor.page->DecodeNext(value);
      cursor.consumed_in_page += 1;
      CountDecode(cursor, 1);
      if (pass) {
        for (const Predicate& pred : cursor.preds) {
          c.predicate_evals += 1;
          if (!pred.Eval(value)) {
            pass = false;
            break;
          }
        }
      }
      if (pass && cursor.out_col >= 0) {
        std::memcpy(
            slot + layout.offsets[static_cast<size_t>(cursor.out_col)],
            value, static_cast<size_t>(cursor.width));
        c.values_copied += 1;
        c.bytes_copied += static_cast<uint64_t>(cursor.width);
      }
    }
    if (pass) {
      block_.AppendSlot();  // slot was filled in place
      block_.set_position(block_.size() - 1, position);
    }
  }
  if (block_.empty()) {
    stats_->FoldIo();
    return static_cast<TupleBlock*>(nullptr);
  }
  c.blocks_emitted += 1;
  return &block_;
}

Result<TupleBlock*> EarlyMatColumnScanner::Next() {
  if (!opened_) {
    return Status::InvalidArgument("EarlyMatColumnScanner not opened");
  }
  obs::SpanTimer scan_span(stats_->trace(), obs::TracePhase::kScan);
  if (plan_.active) return NextPruned();
  ExecCounters& c = stats_->counters();
  const BlockLayout& layout = block_.layout();
  uint8_t* value = value_scratch_.data();
  block_.Clear();
  while (!block_.full()) {
    // Row-at-a-time over all cursors in lockstep.
    RODB_RETURN_IF_ERROR(EnsureValue(cursors_[0]));
    if (cursors_[0].eof) {
      // The driving column must deliver every tuple the catalog promised;
      // a truncated file has to fail, not return fewer rows.
      if (next_position_ < table_->meta().num_tuples) {
        return Status::Corruption(
            "column " + std::to_string(cursors_[0].attr) +
            " ended after " + std::to_string(next_position_) +
            " of " + std::to_string(table_->meta().num_tuples) + " tuples");
      }
      break;
    }
    c.tuples_examined += 1;
    const uint64_t position = next_position_++;
    bool pass = true;
    // Values are written directly into the next (not yet appended) slot;
    // the slot only becomes part of the block if the row qualifies.
    uint8_t* slot = block_.tuple(block_.size());
    for (Cursor& cursor : cursors_) {
      RODB_RETURN_IF_ERROR(EnsureValue(cursor));
      if (cursor.eof) {
        return Status::Corruption("column " + std::to_string(cursor.attr) +
                                  " shorter than the table");
      }
      // Every selected column is decoded for every row -- the defining
      // behaviour of the single-iterator organization ("iterating over
      // entire rows, similarly to a row store").
      cursor.page->DecodeNext(value);
      cursor.consumed_in_page += 1;
      CountDecode(cursor, 1);
      if (pass) {
        for (const Predicate& pred : cursor.preds) {
          c.predicate_evals += 1;
          if (!pred.Eval(value)) {
            pass = false;
            break;
          }
        }
      }
      if (pass && cursor.out_col >= 0) {
        std::memcpy(
            slot + layout.offsets[static_cast<size_t>(cursor.out_col)],
            value, static_cast<size_t>(cursor.width));
        c.values_copied += 1;
        c.bytes_copied += static_cast<uint64_t>(cursor.width);
      }
    }
    if (pass) {
      block_.AppendSlot();  // slot was filled in place
      block_.set_position(block_.size() - 1, position);
    }
  }
  if (block_.empty()) {
    stats_->FoldIo();
    return static_cast<TupleBlock*>(nullptr);
  }
  c.blocks_emitted += 1;
  return &block_;
}

void EarlyMatColumnScanner::Close() {
  stats_->FoldIo();
  for (Cursor& cursor : cursors_) {
    cursor.stream.reset();
    cursor.page.reset();
  }
}

}  // namespace rodb
