#ifndef RODB_ENGINE_SORT_H_
#define RODB_ENGINE_SORT_H_

#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"

namespace rodb {

/// Sort order for SortOperator / TopNOperator.
enum class SortOrder : uint8_t { kAscending, kDescending };

/// In-memory sort on one int32 block column (the ORDER BY of the paper's
/// query template, and the way to feed MergeJoinOperator from inputs that
/// are not already clustered on the join key). Buffers the whole input on
/// the first Next(), sorts stably, then streams blocks.
class SortOperator final : public Operator {
 public:
  static Result<OperatorPtr> Make(OperatorPtr child, int column,
                                  SortOrder order, ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return child_->output_layout();
  }

 private:
  SortOperator(OperatorPtr child, int column, SortOrder order,
               ExecStats* stats);
  Status Consume();

  OperatorPtr child_;
  int column_;
  SortOrder order_;
  ExecStats* stats_;
  TupleBlock block_;
  bool consumed_ = false;
  std::vector<uint8_t> rows_;     ///< buffered tuples, back to back
  std::vector<uint32_t> order_indices_;
  size_t emit_index_ = 0;
};

/// Top-N by one int32 column: a bounded heap over the input, so memory
/// stays O(N) however large the scan (the common "largest sales" report
/// shape). Emits results in sort order.
class TopNOperator final : public Operator {
 public:
  static Result<OperatorPtr> Make(OperatorPtr child, int column,
                                  SortOrder order, uint32_t limit,
                                  ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return child_->output_layout();
  }

 private:
  TopNOperator(OperatorPtr child, int column, SortOrder order, uint32_t limit,
               ExecStats* stats);
  Status Consume();
  /// True if tuple a should appear before tuple b in the output.
  bool Before(const uint8_t* a, const uint8_t* b) const;

  OperatorPtr child_;
  int column_;
  SortOrder order_;
  uint32_t limit_;
  ExecStats* stats_;
  TupleBlock block_;
  bool consumed_ = false;
  std::vector<std::vector<uint8_t>> heap_;  ///< worst-first binary heap
  std::vector<std::vector<uint8_t>> sorted_;
  size_t emit_index_ = 0;
};

}  // namespace rodb

#endif  // RODB_ENGINE_SORT_H_
