#ifndef RODB_ENGINE_SCAN_RANGE_H_
#define RODB_ENGINE_SCAN_RANGE_H_

#include <cstdint>

#include "common/status.h"
#include "storage/schema.h"

namespace rodb {

/// The slice of a table one scan covers, for partitioned (morsel) plans.
///
/// Two partitioning units exist because the layouts disagree on what a
/// "slice" is: single-file layouts (row, PAX) split by page range of that
/// file, while the column layout splits by tuple-position range, which
/// each pipelined scan node maps onto its own file's pages (requiring
/// uniform TableMeta::PageValues). ScanRange holds either, and
/// Validate(layout) is the one place the layout/unit compatibility rule
/// lives -- every scanner reports the same InvalidArgument instead of
/// four differently worded ones.
struct ScanRange {
  enum class Unit : uint8_t {
    kAll = 0,    ///< whole table (the default; valid for every layout)
    kPages = 1,  ///< page range of the single physical file (row, PAX)
    kRows = 2,   ///< tuple-position range (column)
  };

  Unit unit = Unit::kAll;
  uint64_t first = 0;
  uint64_t count = UINT64_MAX;

  static ScanRange All() { return ScanRange{}; }
  static ScanRange Pages(uint64_t first_page, uint64_t num_pages) {
    return ScanRange{Unit::kPages, first_page, num_pages};
  }
  static ScanRange Rows(uint64_t first_row, uint64_t num_rows) {
    return ScanRange{Unit::kRows, first_row, num_rows};
  }

  /// True when the range covers the whole table, either explicitly
  /// (kAll) or as a degenerate full-range kPages/kRows.
  bool is_all() const {
    return unit == Unit::kAll || (first == 0 && count == UINT64_MAX);
  }

  /// Page-range accessors; a kAll range reads as the full page range.
  uint64_t first_page() const { return unit == Unit::kRows ? 0 : first; }
  uint64_t num_pages() const {
    return unit == Unit::kRows ? UINT64_MAX : count;
  }
  /// Position-range accessors; a kAll range reads as the full row range.
  uint64_t first_row() const { return unit == Unit::kPages ? 0 : first; }
  uint64_t num_rows() const {
    return unit == Unit::kPages ? UINT64_MAX : count;
  }

  /// The one layout/range compatibility check. A full-table range is
  /// valid everywhere; otherwise single-file layouts take page ranges
  /// and the column layout takes position ranges.
  Status Validate(Layout layout) const {
    if (is_all()) return Status::OK();
    const bool pages_ok = layout == Layout::kRow || layout == Layout::kPax;
    if (unit == Unit::kPages && !pages_ok) {
      return Status::InvalidArgument(
          "ScanRange: page ranges require a single-file layout (row/PAX); "
          "column tables partition by position range");
    }
    if (unit == Unit::kRows && pages_ok) {
      return Status::InvalidArgument(
          "ScanRange: position ranges require the column layout; "
          "single-file layouts (row/PAX) partition by page range");
    }
    if (count == 0) {
      return Status::InvalidArgument("ScanRange: empty range (count == 0)");
    }
    return Status::OK();
  }
};

}  // namespace rodb

#endif  // RODB_ENGINE_SCAN_RANGE_H_
