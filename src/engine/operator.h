#ifndef RODB_ENGINE_OPERATOR_H_
#define RODB_ENGINE_OPERATOR_H_

#include <memory>

#include "common/result.h"
#include "engine/tuple_block.h"

namespace rodb {

/// Pull-based block-iterator operator (Section 2.2.3): each relational
/// operator calls Next() on its child and receives a block of tuples,
/// amortizing call overhead and keeping the working set L1-resident.
///
/// The returned block is owned by the operator and stays valid until the
/// next Next() call; nullptr signals end of stream. Operators are
/// single-threaded, as in the paper's implementation.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (opens streams, resets state). Must be called
  /// once before the first Next().
  virtual Status Open() = 0;

  /// Produces the next block of tuples, or nullptr when exhausted.
  virtual Result<TupleBlock*> Next() = 0;

  /// Releases resources. Idempotent.
  virtual void Close() {}

  /// Geometry of the blocks this operator produces.
  virtual const BlockLayout& output_layout() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace rodb

#endif  // RODB_ENGINE_OPERATOR_H_
