#include "engine/pax_scanner.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bytes.h"
#include "common/macros.h"
#include "engine/scanner_io.h"
#include "obs/span.h"

namespace rodb {

PaxScanner::PaxScanner(const OpenTable* table, ScanSpec spec,
                       IoBackend* backend, ExecStats* stats,
                       BlockLayout layout)
    : table_(table), spec_(std::move(spec)), backend_(backend), stats_(stats),
      block_(std::move(layout), spec_.block_tuples) {}

Result<OperatorPtr> PaxScanner::Make(const OpenTable* table, ScanSpec spec,
                                     IoBackend* backend, ExecStats* stats) {
  if (table == nullptr || backend == nullptr || stats == nullptr) {
    return Status::InvalidArgument("PaxScanner: null dependency");
  }
  if (table->meta().layout != Layout::kPax) {
    return Status::InvalidArgument("PaxScanner requires a PAX-layout table");
  }
  const Schema& schema = table->schema();
  if (spec.projection.empty()) {
    return Status::InvalidArgument("scan projection must not be empty");
  }
  for (int attr : spec.projection) {
    if (attr < 0 || static_cast<size_t>(attr) >= schema.num_attributes()) {
      return Status::OutOfRange("projection attribute out of range");
    }
  }
  for (const Predicate& pred : spec.predicates) {
    if (pred.attr_index() < 0 ||
        static_cast<size_t>(pred.attr_index()) >= schema.num_attributes()) {
      return Status::OutOfRange("predicate attribute out of range");
    }
  }
  if (spec.read.io_unit_bytes % table->meta().page_size != 0) {
    return Status::InvalidArgument(
        "I/O unit must be a multiple of the page size");
  }
  RODB_RETURN_IF_ERROR(spec.range.Validate(Layout::kPax));
  BlockLayout layout = BlockLayout::FromSchema(schema, spec.projection);
  std::unique_ptr<PaxScanner> scanner(new PaxScanner(
      table, std::move(spec), backend, stats, std::move(layout)));
  scanner->backend_ = ScanBackendStack(backend, scanner->spec_, stats,
                                       &scanner->owned_backends_);
  const ScanSpec& s = scanner->spec_;
  int max_width = 1;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    RODB_ASSIGN_OR_RETURN(auto eval_codec, table->MakeAttrCodec(a));
    RODB_ASSIGN_OR_RETURN(auto emit_codec, table->MakeAttrCodec(a));
    scanner->eval_raw_.push_back(eval_codec.get());
    scanner->emit_raw_.push_back(emit_codec.get());
    scanner->eval_codecs_.push_back(std::move(eval_codec));
    scanner->emit_codecs_.push_back(std::move(emit_codec));
    max_width = std::max(max_width, schema.attribute(a).width);
  }
  // Group predicates per attribute in first-appearance order.
  for (const Predicate& pred : s.predicates) {
    const size_t attr = static_cast<size_t>(pred.attr_index());
    auto it = std::find_if(scanner->pred_nodes_.begin(),
                           scanner->pred_nodes_.end(),
                           [attr](const auto& node) {
                             return node.first == attr;
                           });
    if (it == scanner->pred_nodes_.end()) {
      scanner->pred_nodes_.push_back({attr, {pred}});
    } else {
      it->second.push_back(pred);
    }
  }
  // Vectorized kernel eval (ScanSpec::vectorized). Dictionary predicates
  // run in the code domain, which is compressed evaluation, so a dict
  // predicate attribute keeps the compressed_eval gate.
  scanner->try_kernel_ = s.vectorized && !scanner->pred_nodes_.empty();
  for (const auto& [attr, preds] : scanner->pred_nodes_) {
    (void)preds;
    if (scanner->eval_raw_[attr]->kind() == CompressionKind::kDict &&
        !s.compressed_eval) {
      scanner->try_kernel_ = false;
    }
  }
  RODB_ASSIGN_OR_RETURN(
      scanner->geometry_,
      PaxGeometry::Make(scanner->eval_raw_, table->meta().page_size));
  scanner->positions_.reserve(scanner->geometry_.capacity);
  scanner->emit_cursor_.assign(schema.num_attributes(), 0);
  scanner->touched_.assign(schema.num_attributes(), 0);
  scanner->value_scratch_.resize(static_cast<size_t>(max_width));
  return OperatorPtr(std::move(scanner));
}

Status PaxScanner::Open() {
  if (opened_) return Status::OK();
  plan_ = BuildPrunePlan(*table_, spec_);
  plan_.AddCountersTo(&stats_->counters());
  IoOptions options = ScanStreamOptions(spec_, stats_, *table_, 0);
  if (plan_.active) {
    RODB_ASSIGN_OR_RETURN(
        stream_,
        OpenMultiRunStream(backend_, table_->FilePath(0), options,
                           ByteRunsForPages(plan_.nodes[0].page_runs,
                                            table_->meta().page_size,
                                            table_->FileBytes(0)),
                           table_->FileBytes(0)));
    opened_ = true;
    return Status::OK();
  }
  options.start_offset = spec_.range.first_page() * table_->meta().page_size;
  if (spec_.range.num_pages() != UINT64_MAX) {
    options.length = spec_.range.num_pages() * table_->meta().page_size;
  }
  // Absolute tuple positions for partitioned scans, when the page->tuple
  // mapping is known; otherwise positions are morsel-local (they never
  // feed the output checksum).
  page_start_pos_ = spec_.range.first_page() * table_->meta().PageValues(0);
  RODB_ASSIGN_OR_RETURN(stream_,
                        backend_->OpenStream(table_->FilePath(0), options));
  opened_ = true;
  return Status::OK();
}

void PaxScanner::CountDecode(CompressionKind kind, uint64_t n) {
  ExecCounters& c = stats_->counters();
  switch (kind) {
    case CompressionKind::kBitPack:
      c.values_decoded_bitpack += n;
      break;
    case CompressionKind::kDict:
    case CompressionKind::kCharPack:
      c.values_decoded_dict += n;
      break;
    case CompressionKind::kFor:
      c.values_decoded_for += n;
      break;
    case CompressionKind::kForDelta:
      c.values_decoded_fordelta += n;
      break;
    case CompressionKind::kNone:
      break;
  }
}

void PaxScanner::AccountPage() {
  if (!eval_reader_.has_value() || page_count_ == 0) return;
  // Per-minipage, line-granular accounting (same rule as the column
  // scanner): dense minipages stream, sparse ones pay per-line misses.
  for (size_t a = 0; a < touched_.size(); ++a) {
    if (touched_[a] == 0) continue;
    const double lines = std::max(
        1.0, static_cast<double>(geometry_.minipage_bytes[a]) / 128.0);
    const double t = std::min(
        1.0, static_cast<double>(touched_[a]) / page_count_);
    const double per_line = static_cast<double>(page_count_) / lines;
    const double touched_lines =
        lines * (1.0 - std::pow(1.0 - t, per_line));
    if (touched_lines >= 0.5 * lines) {
      stats_->AddSequentialBytes(geometry_.minipage_bytes[a]);
    } else {
      stats_->AddRandomTouches(static_cast<uint64_t>(touched_lines));
    }
    touched_[a] = 0;
  }
}

bool PaxScanner::BindEvalPreds() {
  // Binding is page-invariant except for FOR, whose key domain shifts with
  // the per-page base -- re-bind those on every page.
  const bool first = bound_preds_.empty();
  if (first) bound_preds_.resize(pred_nodes_.size());
  for (size_t n = 0; n < pred_nodes_.size(); ++n) {
    const size_t attr = pred_nodes_[n].first;
    const AttributeCodec* codec = eval_raw_[attr];
    if (!first && codec->kind() != CompressionKind::kFor) continue;
    bound_preds_[n].clear();
    for (const Predicate& pred : pred_nodes_[n].second) {
      kernels::PackedPredicate packed;
      bool ok;
      if (pred.is_text()) {
        ok = codec->BindPredicate(
            pred.op(),
            reinterpret_cast<const uint8_t*>(pred.text_operand().data()),
            pred.text_operand().size(), /*is_text=*/true, &packed);
      } else {
        uint8_t operand[4];
        StoreLE32s(operand, pred.int_operand());
        ok = codec->BindPredicate(pred.op(), operand, sizeof(operand),
                                  /*is_text=*/false, &packed);
      }
      if (!ok) {
        // Bindability does not depend on the page; stop probing.
        kernel_bind_failed_ = true;
        bound_preds_.clear();
        return false;
      }
      bound_preds_[n].push_back(std::move(packed));
    }
  }
  return true;
}

bool PaxScanner::TryKernelEval() {
  if (!try_kernel_ || kernel_bind_failed_ || !BindEvalPreds()) return false;
  ExecCounters& c = stats_->counters();
  c.tuples_examined += page_count_;
  uint32_t keys[256];
  for (size_t n = 0; n < pred_nodes_.size(); ++n) {
    const size_t attr = pred_nodes_[n].first;
    const CompressionKind kind = eval_raw_[attr]->kind();
    const bool delta = kind == CompressionKind::kForDelta;
    if (delta) {
      // Delta minipages are sequentially dependent: decode once, compare
      // the materialized keys (word skipping cannot save the decode).
      const size_t width =
          static_cast<size_t>(table_->schema().attribute(attr).width);
      batch_scratch_.resize(static_cast<size_t>(page_count_) * width);
      eval_reader_->DecodeBatch(attr, page_count_, batch_scratch_.data());
      CountDecode(kind, page_count_);
    }
    for (size_t p = 0; p < bound_preds_[n].size(); ++p) {
      const kernels::PackedPredicate& pred = bound_preds_[n][p];
      const bool first_mask = n == 0 && p == 0;
      kernels::BitVector* sel = first_mask ? &page_mask_ : &pass_mask_;
      sel->Reset(page_count_);
      if (delta) {
        for (uint32_t done = 0; done < page_count_; done += 256) {
          const size_t cnt = std::min<uint32_t>(256, page_count_ - done);
          for (size_t i = 0; i < cnt; ++i) {
            keys[i] = LoadLE32(batch_scratch_.data() + (done + i) * 4);
          }
          kernels::ScanKeys(keys, cnt, pred, sel, done);
        }
        c.kernel_batches += 1;
        c.values_scanned_vectorized += page_count_;
        if (p == 0) touched_[attr] += page_count_;
      } else if (n == 0 || p > 0) {
        // Full minipage sweep: the deepest node streams everything; an
        // additional predicate on an already-swept attribute re-scans it.
        if (p > 0) eval_reader_->Rewind(attr);
        eval_reader_->ScanNext(attr, page_count_, pred, sel, 0);
        c.kernel_batches += 1;
        c.values_scanned_vectorized += page_count_;
        if (p == 0) {
          touched_[attr] += page_count_;
          if (kind == CompressionKind::kDict) {
            c.values_code_reads += page_count_;
          }
        }
      } else {
        // Later node, first predicate: whole dead words of the running
        // mask are skipped without touching their values.
        uint64_t cursor = 0;
        uint64_t scanned = 0;
        const uint64_t* mask_words = page_mask_.words();
        for (size_t w = 0; w < page_mask_.num_words(); ++w) {
          const uint64_t word_base = static_cast<uint64_t>(w) * 64;
          const uint64_t wcount =
              std::min<uint64_t>(64, page_count_ - word_base);
          if (mask_words[w] == 0) {
            c.mask_skipped_values += wcount;
            continue;
          }
          if (word_base > cursor) {
            eval_reader_->SkipValues(attr, word_base - cursor);
          }
          eval_reader_->ScanNext(attr, wcount, pred, sel, word_base);
          cursor = word_base + wcount;
          scanned += wcount;
        }
        c.kernel_batches += 1;
        c.values_scanned_vectorized += scanned;
        touched_[attr] += scanned;
        if (kind == CompressionKind::kDict) c.values_code_reads += scanned;
      }
      if (!first_mask) page_mask_.AndWith(pass_mask_);
    }
  }
  positions_.clear();
  page_mask_.ForEachSet(
      [this](size_t i) { positions_.push_back(static_cast<uint32_t>(i)); });
  return true;
}

Status PaxScanner::AdvancePage() {
  AccountPage();
  if (eval_reader_.has_value()) {
    page_start_pos_ += page_count_;
    eval_reader_.reset();
    emit_reader_.reset();
  }
  const Schema& schema = table_->schema();
  ExecCounters& c = stats_->counters();
  while (true) {
    // Page-boundary liveness check: a cancelled or expired query stops
    // within one page's worth of work.
    RODB_RETURN_IF_ERROR(stats_->CheckAlive());
    if (page_in_view_ >= pages_in_view_) {
      {
        obs::SpanTimer io_span(stats_->trace(), obs::TracePhase::kIo);
        RODB_ASSIGN_OR_RETURN(view_, stream_->Next());
      }
      if (view_.size == 0) {
        eof_ = true;
        return CheckScanComplete();
      }
      pages_in_view_ = view_.size / table_->meta().page_size;
      page_in_view_ = 0;
      if (pages_in_view_ == 0) {
        return Status::Corruption("I/O unit smaller than one page");
      }
    }
    if (plan_.active) {
      // Views from a pruned (gapped) stream carry their absolute file
      // offset; recover the page's first tuple position from it.
      const uint64_t file_page =
          view_.file_offset / table_->meta().page_size + page_in_view_;
      page_start_pos_ = file_page * table_->meta().PageValues(0);
    }
    const uint8_t* page_data =
        view_.data + page_in_view_ * table_->meta().page_size;
    ++page_in_view_;
    RODB_ASSIGN_OR_RETURN(
        PaxPageReader eval,
        PaxPageReader::Open(page_data, table_->meta().page_size, &schema,
                            eval_raw_, spec_.read.verify_checksums));
    RODB_ASSIGN_OR_RETURN(
        PaxPageReader emit,
        PaxPageReader::Open(page_data, table_->meta().page_size, &schema,
                            emit_raw_, spec_.read.verify_checksums));
    stats_->counters().pages_parsed += 1;
    pages_scanned_ += 1;
    tuples_scanned_ += eval.count();
    eval_reader_.emplace(eval);
    emit_reader_.emplace(emit);
    page_count_ = eval_reader_->count();
    std::fill(emit_cursor_.begin(), emit_cursor_.end(), 0);
    pos_idx_ = 0;
    positions_.clear();
    if (page_count_ == 0) {
      eval_reader_.reset();
      emit_reader_.reset();
      continue;
    }

    // --- evaluation pass ---
    uint8_t* value = value_scratch_.data();
    if (pred_nodes_.empty()) {
      for (uint32_t i = 0; i < page_count_; ++i) positions_.push_back(i);
      c.tuples_examined += page_count_;
    } else if (!TryKernelEval()) {
      // Deepest node: stream the whole minipage.
      {
        const auto& [attr, preds] = pred_nodes_.front();
        const CompressionKind kind = eval_raw_[attr]->kind();
        for (uint32_t i = 0; i < page_count_; ++i) {
          eval_reader_->DecodeNext(attr, value);
          CountDecode(kind, 1);
          c.tuples_examined += 1;
          bool pass = true;
          for (const Predicate& pred : preds) {
            c.predicate_evals += 1;
            if (!pred.Eval(value)) {
              pass = false;
              break;
            }
          }
          if (pass) positions_.push_back(i);
        }
        touched_[attr] += page_count_;
      }
      // Later predicate attributes: only qualifying positions.
      for (size_t n = 1; n < pred_nodes_.size() && !positions_.empty();
           ++n) {
        const auto& [attr, preds] = pred_nodes_[n];
        const CompressionKind kind = eval_raw_[attr]->kind();
        uint64_t cursor = 0;
        size_t kept = 0;
        for (uint32_t pos : positions_) {
          const uint64_t skip = pos - cursor;
          if (skip > 0) {
            eval_reader_->SkipValues(attr, skip);
            if (kind == CompressionKind::kForDelta) {
              CountDecode(kind, skip);
              touched_[attr] += skip;
            }
          }
          eval_reader_->DecodeNext(attr, value);
          cursor = pos + 1;
          CountDecode(kind, 1);
          touched_[attr] += 1;
          c.positions_processed += 1;
          bool pass = true;
          for (const Predicate& pred : preds) {
            c.predicate_evals += 1;
            if (!pred.Eval(value)) {
              pass = false;
              break;
            }
          }
          if (pass) positions_[kept++] = pos;
        }
        positions_.resize(kept);
      }
    }
    if (!positions_.empty()) return Status::OK();
    // Fully filtered page: account it and move on.
    AccountPage();
    page_start_pos_ += page_count_;
    eval_reader_.reset();
    emit_reader_.reset();
  }
}

Status PaxScanner::CheckScanComplete() const {
  const TableMeta& meta = table_->meta();
  if (plan_.active) {
    // A pruned stream must deliver exactly the retained pages; the
    // whole-table tuple count check no longer applies.
    if (pages_scanned_ != plan_.nodes[0].pages) {
      return Status::Corruption(
          "pruned PAX scan read " + std::to_string(pages_scanned_) + " of " +
          std::to_string(plan_.nodes[0].pages) + " retained pages");
    }
    return Status::OK();
  }
  const uint64_t total_pages = meta.file_pages.empty() ? 0
                                                       : meta.file_pages[0];
  const uint64_t first_page = spec_.range.first_page();
  const uint64_t avail =
      first_page < total_pages ? total_pages - first_page : 0;
  const uint64_t expected_pages = std::min(spec_.range.num_pages(), avail);
  if (pages_scanned_ != expected_pages) {
    return Status::Corruption(
        "PAX file ended early: scanned " + std::to_string(pages_scanned_) +
        " of " + std::to_string(expected_pages) + " expected pages");
  }
  if (spec_.range.is_all() && tuples_scanned_ != meta.num_tuples) {
    return Status::Corruption(
        "PAX table holds " + std::to_string(tuples_scanned_) +
        " tuples but the catalog claims " + std::to_string(meta.num_tuples));
  }
  return Status::OK();
}

Result<TupleBlock*> PaxScanner::Next() {
  if (!opened_) return Status::InvalidArgument("PaxScanner not opened");
  obs::SpanTimer scan_span(stats_->trace(), obs::TracePhase::kScan);
  const Schema& schema = table_->schema();
  ExecCounters& c = stats_->counters();
  block_.Clear();
  uint8_t* value = value_scratch_.data();
  while (!block_.full() && !eof_) {
    if (!eval_reader_.has_value() || pos_idx_ >= positions_.size()) {
      RODB_RETURN_IF_ERROR(AdvancePage());
      if (eof_) break;
    }
    while (!block_.full() && pos_idx_ < positions_.size()) {
      const uint32_t pos = positions_[pos_idx_++];
      uint8_t* slot = block_.AppendSlot();
      const BlockLayout& layout = block_.layout();
      for (size_t i = 0; i < spec_.projection.size(); ++i) {
        const size_t attr = static_cast<size_t>(spec_.projection[i]);
        const CompressionKind kind = emit_raw_[attr]->kind();
        const uint64_t skip = pos - emit_cursor_[attr];
        if (skip > 0) {
          emit_reader_->SkipValues(attr, skip);
          if (kind == CompressionKind::kForDelta) {
            CountDecode(kind, skip);
            touched_[attr] += skip;
          }
        }
        emit_reader_->DecodeNext(attr, value);
        emit_cursor_[attr] = pos + 1;
        CountDecode(kind, 1);
        touched_[attr] += 1;
        std::memcpy(slot + layout.offsets[i], value,
                    static_cast<size_t>(layout.widths[i]));
        c.values_copied += 1;
        c.bytes_copied += static_cast<uint64_t>(layout.widths[i]);
      }
      block_.set_position(block_.size() - 1, page_start_pos_ + pos);
    }
  }
  (void)schema;
  if (block_.empty()) {
    stats_->FoldIo();
    return static_cast<TupleBlock*>(nullptr);
  }
  c.blocks_emitted += 1;
  return &block_;
}

void PaxScanner::Close() {
  AccountPage();
  stats_->FoldIo();
  stream_.reset();
  eval_reader_.reset();
  emit_reader_.reset();
}

}  // namespace rodb
