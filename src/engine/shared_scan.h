#ifndef RODB_ENGINE_SHARED_SCAN_H_
#define RODB_ENGINE_SHARED_SCAN_H_

#include <deque>
#include <memory>
#include <vector>

#include "engine/operator.h"
#include "engine/query_context.h"

namespace rodb {

/// Scan sharing (Section 2.1.1): "when multiple concurrent queries scan
/// the same table, often it pays off to employ a single scanner and
/// deliver data to multiple queries off a single reading stream" (the
/// optimization Teradata, RedBrick, SQL Server and QPipe employ; the
/// paper notes it is orthogonal to data placement -- which is exactly why
/// rodb layers it above any scanner).
///
/// One underlying operator is executed once; each AddConsumer() returns
/// an Operator that observes the complete block stream. Consumers may be
/// pulled in any interleaving (single-threaded); blocks are buffered in a
/// sliding window sized by the maximum consumer lag and retired once
/// every consumer has moved past them.
class SharedScan {
 public:
  /// `source` is the scan to share; `max_lag_blocks` bounds the buffer
  /// (a consumer falling further behind gets ResourceExhausted, which in
  /// a real system would throttle the leader; 0 = unbounded).
  explicit SharedScan(OperatorPtr source, size_t max_lag_blocks = 0);

  /// Creates a consumer. All consumers must be added before the first
  /// Next() on any of them.
  OperatorPtr AddConsumer();

  /// Attaches a query lifecycle context (borrowed, must outlive the
  /// consumers): every Fetch checks it — one cancellation stops all
  /// consumers — and window growth debits its memory budget, so a
  /// lagging consumer fails with ResourceExhausted when the buffered
  /// blocks would exceed the query's bytes, not just max_lag_blocks.
  void set_context(const QueryContext* context) {
    state_->context = context;
  }

  size_t num_consumers() const { return state_->consumer_next.size(); }
  /// Blocks currently buffered (diagnostics / tests).
  size_t window_size() const { return state_->window.size(); }

 private:
  struct State {
    OperatorPtr source;
    size_t max_lag = 0;
    bool opened = false;
    bool exhausted = false;
    bool started = false;
    const QueryContext* context = nullptr;  ///< borrowed; may be null
    uint64_t window_start = 0;  ///< sequence number of window.front()
    std::deque<std::unique_ptr<TupleBlock>> window;
    /// Budget holds for the buffered copies, retired with their blocks.
    std::deque<MemoryReservation> window_reservations;
    std::vector<uint64_t> consumer_next;  ///< next sequence per consumer
    size_t open_consumers = 0;

    /// Serves sequence `seq` (pulling the source if needed); nullptr at
    /// end of stream.
    Result<TupleBlock*> Fetch(uint64_t seq);
    void Retire();
  };

  class Consumer;

  std::shared_ptr<State> state_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_SHARED_SCAN_H_
