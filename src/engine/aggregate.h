#ifndef RODB_ENGINE_AGGREGATE_H_
#define RODB_ENGINE_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"

namespace rodb {

/// Aggregate functions over int32 block columns. Results are int64 to
/// avoid overflow on SUM of large relations.
enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

std::string_view AggFuncName(AggFunc func);

/// One aggregate: `func(column)`. For kCount the column is ignored.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  int column = 0;  ///< child block column index
};

/// Shared configuration for both aggregation flavours.
struct AggPlan {
  /// Child block column holding the int32 group key, or -1 for a single
  /// group over the whole input.
  int group_column = -1;
  std::vector<AggSpec> aggs;
};

/// Output layout: [int32 group key (if grouped)] [int64 per aggregate].
BlockLayout AggOutputLayout(const AggPlan& plan);

/// Running accumulator for one group. Shared by the hash- and sort-based
/// implementations.
class AggAccumulator {
 public:
  explicit AggAccumulator(const std::vector<AggSpec>* aggs);
  void Reset();
  void Update(const TupleBlock& block, uint32_t row);
  /// Writes the finished values into `out` (8 bytes per aggregate).
  void Emit(uint8_t* out) const;

 private:
  const std::vector<AggSpec>* aggs_;
  std::vector<int64_t> acc_;
  int64_t count_ = 0;
};

/// Hash-based aggregation (Section 2.2.3). Consumes the whole input on
/// the first Next(), then streams result blocks (group order unspecified).
class HashAggOperator final : public Operator {
 public:
  static Result<OperatorPtr> Make(OperatorPtr child, AggPlan plan,
                                  ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return block_.layout();
  }

 private:
  HashAggOperator(OperatorPtr child, AggPlan plan, ExecStats* stats);
  Status Consume();

  OperatorPtr child_;
  AggPlan plan_;
  ExecStats* stats_;
  TupleBlock block_;
  bool consumed_ = false;
  std::vector<std::pair<int32_t, AggAccumulator>> groups_;  ///< emit order
  size_t emit_index_ = 0;
};

/// Sort-based aggregation: buffers (key, inputs) rows, sorts by key, folds
/// adjacent equal keys. Emits groups in ascending key order.
class SortAggOperator final : public Operator {
 public:
  static Result<OperatorPtr> Make(OperatorPtr child, AggPlan plan,
                                  ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return block_.layout();
  }

 private:
  SortAggOperator(OperatorPtr child, AggPlan plan, ExecStats* stats);
  Status Consume();

  OperatorPtr child_;
  AggPlan plan_;
  ExecStats* stats_;
  TupleBlock block_;
  bool consumed_ = false;
  /// One buffered row: group key + the raw int32 inputs per aggregate.
  std::vector<std::vector<int32_t>> rows_;
  size_t emit_index_ = 0;
};

}  // namespace rodb

#endif  // RODB_ENGINE_AGGREGATE_H_
