#include "engine/column_scanner.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bytes.h"
#include "common/macros.h"
#include "engine/scanner_io.h"
#include "obs/span.h"

namespace rodb {

ColumnScanner::ColumnScanner(const OpenTable* table, ScanSpec spec,
                             IoBackend* backend, ExecStats* stats,
                             BlockLayout layout)
    : table_(table), spec_(std::move(spec)), backend_(backend), stats_(stats),
      layout_(std::move(layout)) {}

Result<OperatorPtr> ColumnScanner::Make(const OpenTable* table, ScanSpec spec,
                                        IoBackend* backend,
                                        ExecStats* stats) {
  if (table == nullptr || backend == nullptr || stats == nullptr) {
    return Status::InvalidArgument("ColumnScanner: null dependency");
  }
  if (table->meta().layout != Layout::kColumn) {
    return Status::InvalidArgument(
        "ColumnScanner requires a column-layout table");
  }
  const Schema& schema = table->schema();
  if (spec.projection.empty()) {
    return Status::InvalidArgument("scan projection must not be empty");
  }
  for (int attr : spec.projection) {
    if (attr < 0 || static_cast<size_t>(attr) >= schema.num_attributes()) {
      return Status::OutOfRange("projection attribute out of range");
    }
  }
  for (const Predicate& pred : spec.predicates) {
    if (pred.attr_index() < 0 ||
        static_cast<size_t>(pred.attr_index()) >= schema.num_attributes()) {
      return Status::OutOfRange("predicate attribute out of range");
    }
  }
  if (spec.read.io_unit_bytes % table->meta().page_size != 0) {
    return Status::InvalidArgument(
        "I/O unit must be a multiple of the page size");
  }
  RODB_RETURN_IF_ERROR(spec.range.Validate(Layout::kColumn));
  if (!spec.range.is_all()) {
    // Position ranges map onto each file's pages via O(1) arithmetic,
    // which needs every involved file to pack pages uniformly (codecs
    // can end pages early; the bulk loader records whether they did).
    for (size_t attr : ScanPipelineAttrs(spec)) {
      if (table->meta().PageValues(attr) == 0) {
        return Status::NotSupported(
            "position-range scan needs uniform page value counts "
            "(attribute " + std::to_string(attr) + " is non-uniform)");
      }
    }
  }

  BlockLayout layout = BlockLayout::FromSchema(schema, spec.projection);
  std::unique_ptr<ColumnScanner> scanner(new ColumnScanner(
      table, std::move(spec), backend, stats, std::move(layout)));
  scanner->backend_ = ScanBackendStack(backend, scanner->spec_, stats,
                                       &scanner->owned_backends_);
  const ScanSpec& s = scanner->spec_;

  // Pipeline order: one node per distinct predicate attribute (in
  // predicate order, deepest first), then the remaining projected columns.
  const std::vector<size_t> pipeline_attrs = ScanPipelineAttrs(s);

  int filled = 0;
  int max_value_width = 1;
  for (size_t k = 0; k < pipeline_attrs.size(); ++k) {
    Node node;
    node.attr = pipeline_attrs[k];
    const auto proj_it =
        std::find(s.projection.begin(), s.projection.end(),
                  static_cast<int>(node.attr));
    node.out_col = proj_it == s.projection.end()
                       ? -1
                       : static_cast<int>(proj_it - s.projection.begin());
    for (const Predicate& pred : s.predicates) {
      if (static_cast<size_t>(pred.attr_index()) == node.attr) {
        node.preds.push_back(pred);
      }
    }
    RODB_ASSIGN_OR_RETURN(node.codec, table->MakeAttrCodec(node.attr));
    node.codec_kind = node.codec->kind();
    node.value_width = schema.attribute(node.attr).width;
    // Compressed-eval fast path (ScanSpec::compressed_eval): =/!= against
    // a dictionary column become code comparisons.
    if (s.compressed_eval && node.codec->SupportsCodeDecoding() &&
        !node.preds.empty() && table->dict(node.attr) != nullptr) {
      const Dictionary* dict = table->dict(node.attr);
      bool eligible = true;
      std::vector<Node::CodePred> code_preds;
      for (const Predicate& pred : node.preds) {
        if (pred.op() != CompareOp::kEq && pred.op() != CompareOp::kNe) {
          eligible = false;
          break;
        }
        std::vector<uint8_t> operand(
            static_cast<size_t>(node.value_width), 0);
        if (pred.is_text()) {
          // Prefix-compare semantics only coincide with full-value
          // equality when the operand covers the whole attribute.
          if (pred.text_operand().size() !=
              static_cast<size_t>(node.value_width)) {
            eligible = false;
            break;
          }
          std::memcpy(operand.data(), pred.text_operand().data(),
                      operand.size());
        } else {
          if (node.value_width != 4) {
            eligible = false;
            break;
          }
          StoreLE32s(operand.data(), pred.int_operand());
        }
        Node::CodePred cp;
        cp.negate = pred.op() == CompareOp::kNe;
        auto code = dict->Encode(operand.data());
        cp.matchable = code.ok();
        cp.code = code.ok() ? *code : 0;
        code_preds.push_back(cp);
      }
      if (eligible) {
        node.use_codes = true;
        node.code_preds = std::move(code_preds);
        node.dict = dict;
      }
    }
    // Vectorized kernel path (ScanSpec::vectorized): the deepest node
    // filters whole pages into a selection mask. Dictionary predicates run
    // in the code domain -- that is compressed evaluation, so they keep
    // the compressed_eval gate.
    if (k == 0 && !node.preds.empty() && s.vectorized &&
        (node.codec_kind != CompressionKind::kDict || s.compressed_eval)) {
      node.try_kernel = true;
    }
    max_value_width = std::max(max_value_width, node.value_width);
    if (node.out_col >= 0) filled += node.value_width;
    node.filled_bytes = filled;
    // The deepest node and every predicate node rewrite tuples into their
    // own block; projection-only inner nodes fill in place.
    if (k == 0 || !node.preds.empty()) {
      node.out_block = std::make_unique<TupleBlock>(scanner->layout_,
                                                    s.block_tuples);
    }
    scanner->nodes_.push_back(std::move(node));
  }
  scanner->value_scratch_.resize(static_cast<size_t>(max_value_width));
  return OperatorPtr(std::move(scanner));
}

Status ColumnScanner::Open() {
  if (opened_) return Status::OK();
  opened_ = true;
  const uint64_t total = table_->meta().num_tuples;
  const uint64_t start = std::min(spec_.range.first_row(), total);
  end_row_ = spec_.range.num_rows() >= total - start
                 ? total
                 : start + spec_.range.num_rows();
  if (start >= end_row_) {
    // Empty position range: nothing to read.
    done_ = true;
    for (Node& node : nodes_) node.eof = true;
    return Status::OK();
  }
  const bool ranged = start > 0 || end_row_ < total;
  const size_t page_size = table_->meta().page_size;
  plan_ = BuildPrunePlan(*table_, spec_);
  plan_.AddCountersTo(&stats_->counters());
  if (plan_.active) {
    // One gapped stream per pipeline node, carrying only the page runs
    // the plan retained for that node's file.
    RODB_CHECK(plan_.nodes.size() == nodes_.size());
    for (size_t k = 0; k < nodes_.size(); ++k) {
      Node& node = nodes_[k];
      node.prune = &plan_.nodes[k];
      IoOptions options =
          ScanStreamOptions(spec_, stats_, *table_, node.attr);
      RODB_ASSIGN_OR_RETURN(
          node.stream,
          OpenMultiRunStream(backend_, table_->FilePath(node.attr), options,
                             ByteRunsForPages(node.prune->page_runs,
                                              page_size,
                                              table_->FileBytes(node.attr)),
                             table_->FileBytes(node.attr)));
    }
    return Status::OK();
  }
  for (Node& node : nodes_) {
    IoOptions options = ScanStreamOptions(spec_, stats_, *table_, node.attr);
    if (ranged) {
      // Each node maps the position range onto its own file's pages
      // (files disagree on values per page across codecs).
      const uint64_t vpp = table_->meta().PageValues(node.attr);
      RODB_CHECK(vpp > 0);  // enforced in Make
      const uint64_t start_page = start / vpp;
      const uint64_t last_page = (end_row_ - 1) / vpp;
      options.start_offset = start_page * page_size;
      options.length = (last_page - start_page + 1) * page_size;
      node.page_start_pos = start_page * vpp;
    }
    RODB_ASSIGN_OR_RETURN(
        node.stream,
        backend_->OpenStream(table_->FilePath(node.attr), options));
  }
  return Status::OK();
}

void ColumnScanner::AccountPage(Node& node) {
  if (!node.page.has_value()) return;
  const uint32_t count = node.page->count();
  if (count == 0) return;
  // Memory accounting works at cache-line granularity (DESIGN.md
  // substitution #2): with v values per 128-byte line, touching a fraction
  // t of the values touches ~1-(1-t)^v of the lines. When most lines are
  // touched the hardware prefetcher sees a dense sequential pattern and
  // the page streams; otherwise each touched line is a random miss.
  const double lines =
      std::max(1.0, static_cast<double>(table_->meta().page_size) / 128.0);
  const double t = static_cast<double>(node.touched_in_page) /
                   static_cast<double>(count);
  const double values_per_line = static_cast<double>(count) / lines;
  const double touched_lines =
      lines * (1.0 - std::pow(1.0 - std::min(1.0, t), values_per_line));
  if (touched_lines >= 0.5 * lines) {
    stats_->AddSequentialBytes(table_->meta().page_size);
  } else {
    stats_->AddRandomTouches(static_cast<uint64_t>(touched_lines));
  }
}

Status ColumnScanner::AdvanceNodePage(Node& node) {
  AccountPage(node);
  if (node.page.has_value()) {
    node.page_start_pos += node.page->count();
    node.page.reset();
  }
  while (true) {
    // Page-boundary liveness check: a cancelled or expired query stops
    // within one page's worth of work.
    RODB_RETURN_IF_ERROR(stats_->CheckAlive());
    if (node.page_in_view >= node.pages_in_view) {
      {
        obs::SpanTimer io_span(stats_->trace(), obs::TracePhase::kIo);
        RODB_ASSIGN_OR_RETURN(node.view, node.stream->Next());
      }
      if (node.view.size == 0) {
        node.eof = true;
        return Status::OK();
      }
      node.pages_in_view = node.view.size / table_->meta().page_size;
      node.page_in_view = 0;
      if (node.pages_in_view == 0) {
        return Status::Corruption("I/O unit smaller than one page");
      }
    }
    if (node.prune != nullptr) {
      // Views from a pruned (gapped) stream carry their absolute file
      // offset; recover the page's first value position from it.
      const uint64_t file_page =
          node.view.file_offset / table_->meta().page_size +
          node.page_in_view;
      node.page_start_pos = file_page * node.prune->vpp;
    }
    const uint8_t* page_data =
        node.view.data + node.page_in_view * table_->meta().page_size;
    ++node.page_in_view;
    RODB_ASSIGN_OR_RETURN(ColumnPageReader reader,
                          ColumnPageReader::Open(page_data,
                                                 table_->meta().page_size,
                                                 node.codec.get(),
                                                 spec_.read.verify_checksums));
    stats_->counters().pages_parsed += 1;
    node.pages_read += 1;
    node.page.emplace(reader);
    node.consumed_in_page = 0;
    node.touched_in_page = 0;
    if (node.page->count() > 0) return Status::OK();
    node.page.reset();
  }
}

void ColumnScanner::CountDecode(const Node& node, uint64_t n) {
  ExecCounters& c = stats_->counters();
  switch (node.codec_kind) {
    case CompressionKind::kBitPack:
      c.values_decoded_bitpack += n;
      break;
    case CompressionKind::kDict:
    case CompressionKind::kCharPack:
      c.values_decoded_dict += n;
      break;
    case CompressionKind::kFor:
      c.values_decoded_for += n;
      break;
    case CompressionKind::kForDelta:
      c.values_decoded_fordelta += n;
      break;
    case CompressionKind::kNone:
      break;
  }
}

Status ColumnScanner::SeekTo(Node& node, uint64_t pos) {
  while (!node.eof &&
         (!node.page.has_value() ||
          pos >= node.page_start_pos + node.page->count())) {
    RODB_RETURN_IF_ERROR(AdvanceNodePage(node));
  }
  if (node.eof) {
    return Status::Corruption("column " + std::to_string(node.attr) +
                              " shorter than the driving position stream");
  }
  if (pos < node.page_start_pos) {
    // Only reachable on a pruned stream, when the seek target fell inside
    // a skipped gap (e.g. a morsel's first_row on a pruned page): the
    // fetched page starts past it and nothing needs skipping.
    RODB_CHECK(node.prune != nullptr);
    return Status::OK();
  }
  const uint64_t target_in_page = pos - node.page_start_pos;
  RODB_CHECK(target_in_page >= node.consumed_in_page);
  const uint64_t skip = target_in_page - node.consumed_in_page;
  if (skip > 0) {
    node.page->SkipValues(skip);
    node.consumed_in_page += skip;
    if (node.codec_kind == CompressionKind::kForDelta) {
      // FOR-delta decodes everything it passes over.
      node.touched_in_page += skip;
      CountDecode(node, skip);
    }
  }
  return Status::OK();
}

Status ColumnScanner::FetchValueAt(Node& node, uint64_t pos, uint8_t* out) {
  RODB_RETURN_IF_ERROR(SeekTo(node, pos));
  node.page->DecodeNext(out);
  node.consumed_in_page += 1;
  node.touched_in_page += 1;
  CountDecode(node, 1);
  return Status::OK();
}

Status ColumnScanner::FetchCodeAt(Node& node, uint64_t pos, uint32_t* code) {
  RODB_RETURN_IF_ERROR(SeekTo(node, pos));
  *code = node.page->DecodeNextCode();
  node.consumed_in_page += 1;
  node.touched_in_page += 1;
  stats_->counters().values_code_reads += 1;
  return Status::OK();
}

bool ColumnScanner::EvalCodePreds(const Node& node, uint32_t code) {
  ExecCounters& c = stats_->counters();
  for (const Node::CodePred& cp : node.code_preds) {
    c.predicate_evals += 1;
    const bool eq = cp.matchable && code == cp.code;
    if (cp.negate ? eq : !eq) return false;
  }
  return true;
}

bool ColumnScanner::BindNodePreds(Node& node) {
  // Binding is page-invariant except for FOR, whose key domain shifts with
  // the per-page base -- re-bind those on every page.
  if (!node.packed_preds.empty() &&
      node.codec_kind != CompressionKind::kFor) {
    return true;
  }
  node.packed_preds.clear();
  node.packed_preds.reserve(node.preds.size());
  for (const Predicate& pred : node.preds) {
    kernels::PackedPredicate packed;
    bool ok;
    if (pred.is_text()) {
      ok = node.codec->BindPredicate(
          pred.op(),
          reinterpret_cast<const uint8_t*>(pred.text_operand().data()),
          pred.text_operand().size(), /*is_text=*/true, &packed);
    } else {
      uint8_t operand[4];
      StoreLE32s(operand, pred.int_operand());
      ok = node.codec->BindPredicate(pred.op(), operand, sizeof(operand),
                                     /*is_text=*/false, &packed);
    }
    if (!ok) {
      // Bindability does not depend on the page; stop probing.
      node.packed_preds.clear();
      node.try_kernel = false;
      return false;
    }
    node.packed_preds.push_back(std::move(packed));
  }
  return true;
}

void ColumnScanner::BuildPageMask(Node& node) {
  ExecCounters& c = stats_->counters();
  const uint32_t count = node.page->count();
  const uint64_t limit =
      std::min<uint64_t>(count, end_row_ - node.page_start_pos);
  c.tuples_examined += limit;
  node.page_mask.Reset(limit);
  if (node.codec_kind == CompressionKind::kForDelta) {
    // Delta pages are sequentially dependent: decode once, then run the
    // vectorized compare over the materialized keys.
    node.batch_scratch.resize(limit * static_cast<size_t>(node.value_width));
    node.page->DecodeBatch(limit, node.batch_scratch.data());
    CountDecode(node, limit);
    uint32_t keys[256];
    for (size_t p = 0; p < node.packed_preds.size(); ++p) {
      kernels::BitVector* sel = &node.page_mask;
      if (p > 0) {
        node.pass_mask.Reset(limit);
        sel = &node.pass_mask;
      }
      for (uint64_t done = 0; done < limit; done += 256) {
        const size_t n =
            static_cast<size_t>(std::min<uint64_t>(256, limit - done));
        for (size_t i = 0; i < n; ++i) {
          keys[i] = LoadLE32(node.batch_scratch.data() + (done + i) * 4);
        }
        kernels::ScanKeys(keys, n, node.packed_preds[p], sel, done);
      }
      c.kernel_batches += 1;
      c.values_scanned_vectorized += limit;
      if (p > 0) node.page_mask.AndWith(node.pass_mask);
    }
  } else {
    for (size_t p = 0; p < node.packed_preds.size(); ++p) {
      kernels::BitVector* sel = &node.page_mask;
      if (p > 0) {
        node.pass_mask.Reset(limit);
        sel = &node.pass_mask;
        node.page->Rewind();
      }
      node.page->ScanNext(limit, node.packed_preds[p], sel, 0);
      c.kernel_batches += 1;
      c.values_scanned_vectorized += limit;
      if (node.codec_kind == CompressionKind::kDict && p == 0) {
        // The first pass reads every code; later passes re-scan the same
        // stream and are charged only the kernel work.
        c.values_code_reads += limit;
      }
      if (p > 0) node.page_mask.AndWith(node.pass_mask);
    }
    // Leave the decode cursor at value 0 so EmitFromMask can materialize
    // survivors with skip + decode.
    node.page->Rewind();
  }
  node.touched_in_page = limit;
  c.mask_skipped_values += limit - node.page_mask.Popcount();
  node.mask_valid = true;
  node.mask_limit = limit;
  node.mask_next = 0;
}

void ColumnScanner::EmitFromMask(Node& node, TupleBlock& out) {
  ExecCounters& c = stats_->counters();
  uint8_t* value = value_scratch_.data();
  const uint64_t* words = node.page_mask.words();
  while (!out.full() && node.mask_next < node.mask_limit) {
    const size_t w = static_cast<size_t>(node.mask_next >> 6);
    const uint64_t word = words[w] >> (node.mask_next & 63);
    if (word == 0) {
      // Whole remaining word is dead: jump to the next word boundary.
      node.mask_next = (static_cast<uint64_t>(w) + 1) * 64;
      continue;
    }
    const uint64_t idx =
        node.mask_next + static_cast<uint64_t>(__builtin_ctzll(word));
    uint8_t* slot = out.AppendSlot();
    out.set_position(out.size() - 1, node.page_start_pos + idx);
    if (node.out_col >= 0) {
      if (node.codec_kind == CompressionKind::kForDelta) {
        // The page is already materialized in batch_scratch.
        std::memcpy(value,
                    node.batch_scratch.data() +
                        idx * static_cast<size_t>(node.value_width),
                    static_cast<size_t>(node.value_width));
      } else {
        const uint64_t gap = idx - node.consumed_in_page;
        if (gap > 0) node.page->SkipValues(gap);
        node.page->DecodeNext(value);
        node.consumed_in_page = idx + 1;
        CountDecode(node, 1);
      }
      std::memcpy(slot + layout_.offsets[static_cast<size_t>(node.out_col)],
                  value, static_cast<size_t>(node.value_width));
      c.values_copied += 1;
      c.bytes_copied += static_cast<uint64_t>(node.value_width);
    }
    node.mask_next = idx + 1;
  }
}

Status ColumnScanner::ProduceBase(Node& node) {
  ExecCounters& c = stats_->counters();
  TupleBlock& out = *node.out_block;
  out.Clear();
  if (!base_positioned_) {
    base_positioned_ = true;
    if (spec_.range.first_row() > node.page_start_pos) {
      // Unaligned morsel start: skip within the first page.
      RODB_RETURN_IF_ERROR(SeekTo(node, spec_.range.first_row()));
    }
  }
  uint8_t* value = value_scratch_.data();
  while (!out.full()) {
    if (node.mask_valid) {
      EmitFromMask(node, out);
      if (node.mask_next >= node.mask_limit) {
        node.mask_valid = false;
        if (node.mask_limit < node.page->count()) {
          // The scan range ends inside this page.
          node.eof = true;
          break;
        }
        node.consumed_in_page = node.page->count();
      }
      continue;
    }
    if (!node.page.has_value() ||
        node.consumed_in_page >= node.page->count()) {
      RODB_RETURN_IF_ERROR(AdvanceNodePage(node));
      if (node.eof) {
        if (node.prune != nullptr) {
          // A pruned stream ends after the last retained page, not at
          // end_row_; completeness means every retained page arrived.
          if (node.pages_read != node.prune->pages) {
            return Status::Corruption(
                "pruned column " + std::to_string(node.attr) + " scan read " +
                std::to_string(node.pages_read) + " of " +
                std::to_string(node.prune->pages) + " retained pages");
          }
          break;
        }
        // The stream must not end before the scanned position range does:
        // a truncated column file has to fail, not return fewer rows.
        if (node.page_start_pos < end_row_) {
          return Status::Corruption(
              "column " + std::to_string(node.attr) +
              " ended at position " + std::to_string(node.page_start_pos) +
              " before the scan range end " + std::to_string(end_row_));
        }
        break;
      }
    }
    // Kernel path: filter the whole page into a selection mask, then emit
    // survivors. Pages entered mid-way (unaligned morsel start) and
    // unbindable predicates fall back to the scalar loop below.
    if (node.try_kernel && node.consumed_in_page == 0 &&
        node.page_start_pos < end_row_ && BindNodePreds(node)) {
      BuildPageMask(node);
      continue;
    }
    const uint64_t pos = node.page_start_pos + node.consumed_in_page;
    if (pos >= end_row_) {
      node.eof = true;
      break;
    }
    c.tuples_examined += 1;
    bool pass = true;
    bool have_value = false;
    if (node.use_codes) {
      const uint32_t code = node.page->DecodeNextCode();
      node.consumed_in_page += 1;
      node.touched_in_page += 1;
      c.values_code_reads += 1;
      pass = EvalCodePreds(node, code);
      if (pass && node.out_col >= 0) {
        // Materialize only qualifying, projected values.
        std::memcpy(value, node.dict->Decode(code),
                    static_cast<size_t>(node.value_width));
        c.values_decoded_dict += 1;
        have_value = true;
      }
    } else {
      node.page->DecodeNext(value);
      node.consumed_in_page += 1;
      node.touched_in_page += 1;
      CountDecode(node, 1);
      have_value = true;
      for (const Predicate& pred : node.preds) {
        c.predicate_evals += 1;
        if (!pred.Eval(value)) {
          pass = false;
          break;
        }
      }
    }
    if (!pass) continue;
    uint8_t* slot = out.AppendSlot();
    out.set_position(out.size() - 1, pos);
    if (node.out_col >= 0) {
      RODB_CHECK(have_value);
      std::memcpy(slot + layout_.offsets[static_cast<size_t>(node.out_col)],
                  value, static_cast<size_t>(node.value_width));
      c.values_copied += 1;
      c.bytes_copied += static_cast<uint64_t>(node.value_width);
    }
  }
  return Status::OK();
}

Result<TupleBlock*> ColumnScanner::ProcessNode(Node& node, TupleBlock* in) {
  ExecCounters& c = stats_->counters();
  uint8_t* value = value_scratch_.data();
  if (node.preds.empty()) {
    // Attach values in place, without re-writing the tuples.
    for (uint32_t i = 0; i < in->size(); ++i) {
      RODB_RETURN_IF_ERROR(FetchValueAt(node, in->position(i), value));
      c.positions_processed += 1;
      std::memcpy(in->attr(i, static_cast<size_t>(node.out_col)), value,
                  static_cast<size_t>(node.value_width));
      c.values_copied += 1;
      c.bytes_copied += static_cast<uint64_t>(node.value_width);
    }
    return in;
  }
  // Predicate node: qualifying tuples are copied forward to a new block.
  TupleBlock& out = *node.out_block;
  out.Clear();
  for (uint32_t i = 0; i < in->size(); ++i) {
    if (node.prune != nullptr &&
        !RunsContain(node.prune->accept, in->position(i))) {
      // The position's page was zone-proven predicate-free (and never
      // fetched): reject without touching the stream.
      c.prune_zone_rejects += 1;
      continue;
    }
    bool pass = true;
    bool have_value = false;
    if (node.use_codes) {
      uint32_t code = 0;
      RODB_RETURN_IF_ERROR(FetchCodeAt(node, in->position(i), &code));
      c.positions_processed += 1;
      pass = EvalCodePreds(node, code);
      if (pass && node.out_col >= 0) {
        std::memcpy(value, node.dict->Decode(code),
                    static_cast<size_t>(node.value_width));
        c.values_decoded_dict += 1;
        have_value = true;
      }
    } else {
      RODB_RETURN_IF_ERROR(FetchValueAt(node, in->position(i), value));
      have_value = true;
      c.positions_processed += 1;
      for (const Predicate& pred : node.preds) {
        c.predicate_evals += 1;
        if (!pred.Eval(value)) {
          pass = false;
          break;
        }
      }
    }
    if (!pass) continue;
    uint8_t* slot = out.AppendSlot();
    std::memcpy(slot, in->tuple(i),
                static_cast<size_t>(layout_.tuple_width));
    out.set_position(out.size() - 1, in->position(i));
    if (node.out_col >= 0) {
      RODB_CHECK(have_value);
      std::memcpy(slot + layout_.offsets[static_cast<size_t>(node.out_col)],
                  value, static_cast<size_t>(node.value_width));
    }
    c.values_copied += 1;
    c.bytes_copied += static_cast<uint64_t>(node.filled_bytes);
  }
  return &out;
}

Result<TupleBlock*> ColumnScanner::Next() {
  if (!opened_) return Status::InvalidArgument("ColumnScanner not opened");
  obs::SpanTimer scan_span(stats_->trace(), obs::TracePhase::kScan);
  if (done_) return static_cast<TupleBlock*>(nullptr);
  // Keep producing base blocks until one survives the pipeline non-empty
  // (a fully filtered-out block must not terminate the scan).
  while (true) {
    Node& base = nodes_[0];
    RODB_RETURN_IF_ERROR(ProduceBase(base));
    TupleBlock* block = base.out_block.get();
    const bool base_eof = base.eof;
    if (block->empty() && base_eof) {
      done_ = true;
      // Final memory accounting for pages left open on inner nodes.
      for (Node& node : nodes_) AccountPage(node);
      stats_->FoldIo();
      return static_cast<TupleBlock*>(nullptr);
    }
    if (!block->empty()) {
      for (size_t k = 1; k < nodes_.size(); ++k) {
        RODB_ASSIGN_OR_RETURN(block, ProcessNode(nodes_[k], block));
        if (block->empty()) break;
      }
    }
    if (!block->empty()) {
      stats_->counters().blocks_emitted += 1;
      return block;
    }
    if (base_eof) {
      done_ = true;
      for (Node& node : nodes_) AccountPage(node);
      stats_->FoldIo();
      return static_cast<TupleBlock*>(nullptr);
    }
  }
}

void ColumnScanner::Close() {
  stats_->FoldIo();
  for (Node& node : nodes_) {
    node.stream.reset();
    node.page.reset();
  }
}

}  // namespace rodb
