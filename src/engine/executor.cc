#include "engine/executor.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/scope_guard.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rodb {

namespace {

/// Process-wide roll-up of every Execute() call: query count, output
/// volume, and a wall-latency histogram (microsecond buckets, 1us-~1s).
void RecordQueryMetrics(const ExecutionResult& result) {
  auto& reg = obs::MetricsRegistry::Default();
  static obs::Counter* queries = reg.GetCounter("rodb.query.count");
  static obs::Counter* rows = reg.GetCounter("rodb.query.rows");
  static obs::Counter* blocks = reg.GetCounter("rodb.query.blocks");
  static obs::Histogram* latency = reg.GetHistogram(
      "rodb.query.latency_us",
      obs::Histogram::ExponentialBounds(1, 4.0, 10));
  queries->Increment();
  rows->Add(result.rows);
  blocks->Add(result.blocks);
  latency->Record(
      static_cast<uint64_t>(result.measured.wall_seconds * 1e6));
}

}  // namespace

uint64_t Fnv1aExtend(uint64_t hash, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

Result<ExecutionResult> Execute(Operator* root, ExecStats* stats) {
  if (root == nullptr || stats == nullptr) {
    return Status::InvalidArgument("Execute: null dependency");
  }
  ExecutionResult result;
  IntervalTimer timer;
  obs::QueryTrace* trace = stats->trace();
  {
    obs::SpanTimer query_span(trace, obs::TracePhase::kQuery);
    {
      obs::SpanTimer open_span(trace, obs::TracePhase::kOpen);
      RODB_RETURN_IF_ERROR(root->Open());
    }
    // Close on every exit, error returns included: Close() walks the
    // operator tree releasing streams (and with them block-cache pins),
    // and the pending I/O record must be folded or it is lost.
    auto close_guard = MakeScopeGuard([&] {
      root->Close();
      stats->FoldIo();
    });
    uint64_t checksum = kFnv1aSeed;
    const int width = root->output_layout().tuple_width;
    while (true) {
      RODB_RETURN_IF_ERROR(stats->CheckAlive());
      RODB_ASSIGN_OR_RETURN(TupleBlock * block, root->Next());
      if (block == nullptr) break;
      if (block->empty()) continue;
      result.blocks += 1;
      result.rows += block->size();
      checksum = Fnv1aExtend(checksum, block->tuple(0),
                             static_cast<size_t>(block->size()) *
                                 static_cast<size_t>(width));
    }
    result.output_checksum = checksum;
  }
  result.measured = timer.Lap();
  if (trace != nullptr) trace->FinalizeFromCounters(stats->counters());
  RecordQueryMetrics(result);
  return result;
}

std::vector<StreamSpec> ScanStreams(const OpenTable& table,
                                    const ScanSpec& spec) {
  std::vector<StreamSpec> streams;
  if (table.meta().layout != Layout::kColumn) {
    // Row and PAX tables are one sequential file.
    streams.push_back(StreamSpec{table.FileBytes(0), 1.0, false});
    return streams;
  }
  for (size_t attr : ScanPipelineAttrs(spec)) {
    streams.push_back(StreamSpec{table.FileBytes(attr), 1.0, false});
  }
  return streams;
}

ModeledTiming ModelQueryTiming(const ExecCounters& counters,
                               const HardwareConfig& hw, int prefetch_depth,
                               const std::vector<StreamSpec>& query_streams,
                               const std::vector<StreamSpec>& competing) {
  ModeledTiming t;
  CpuModel cpu_model(hw);
  t.cpu = cpu_model.Breakdown(counters);
  t.cpu_seconds = t.cpu.Total();
  DiskArrayModel disk_model(hw, prefetch_depth);
  t.disk = disk_model.Simulate(query_streams, competing);
  t.io_seconds = t.disk.query_seconds;
  t.elapsed_seconds = std::max(t.cpu_seconds, t.io_seconds);
  t.io_bound = t.io_seconds >= t.cpu_seconds;
  return t;
}

std::vector<StreamSpec> CacheAdjustedStreams(
    std::vector<StreamSpec> streams, const ExecCounters& counters) {
  const uint64_t total = counters.io_bytes_read + counters.io_bytes_from_cache;
  if (total == 0 || counters.io_bytes_from_cache == 0) return streams;
  const double backend_fraction =
      static_cast<double>(counters.io_bytes_read) / static_cast<double>(total);
  std::vector<StreamSpec> adjusted;
  adjusted.reserve(streams.size());
  for (StreamSpec s : streams) {
    s.bytes = static_cast<uint64_t>(
        std::llround(static_cast<double>(s.bytes) * backend_fraction));
    if (s.bytes > 0) adjusted.push_back(s);
  }
  return adjusted;
}

ExecCounters ScaleCounters(const ExecCounters& counters, double factor) {
  auto scale = [factor](uint64_t v) {
    return static_cast<uint64_t>(std::llround(static_cast<double>(v) * factor));
  };
  ExecCounters s;
  s.tuples_examined = scale(counters.tuples_examined);
  s.predicate_evals = scale(counters.predicate_evals);
  s.values_copied = scale(counters.values_copied);
  s.bytes_copied = scale(counters.bytes_copied);
  s.positions_processed = scale(counters.positions_processed);
  s.values_decoded_bitpack = scale(counters.values_decoded_bitpack);
  s.values_decoded_dict = scale(counters.values_decoded_dict);
  s.values_code_reads = scale(counters.values_code_reads);
  s.values_decoded_for = scale(counters.values_decoded_for);
  s.values_decoded_fordelta = scale(counters.values_decoded_fordelta);
  s.pages_parsed = scale(counters.pages_parsed);
  s.blocks_emitted = scale(counters.blocks_emitted);
  s.operator_tuples = scale(counters.operator_tuples);
  s.hash_ops = scale(counters.hash_ops);
  s.sort_comparisons = scale(counters.sort_comparisons);
  s.join_comparisons = scale(counters.join_comparisons);
  s.seq_bytes_touched = scale(counters.seq_bytes_touched);
  s.random_line_accesses = scale(counters.random_line_accesses);
  s.l1_lines_touched = scale(counters.l1_lines_touched);
  s.io_bytes_read = scale(counters.io_bytes_read);
  s.io_requests = scale(counters.io_requests);
  s.files_read = counters.files_read;  // file count does not scale
  s.io_bytes_from_cache = scale(counters.io_bytes_from_cache);
  s.io_cache_hits = scale(counters.io_cache_hits);
  s.io_cache_misses = scale(counters.io_cache_misses);
  return s;
}

}  // namespace rodb
