#ifndef RODB_ENGINE_ROW_SCANNER_H_
#define RODB_ENGINE_ROW_SCANNER_H_

#include <memory>
#include <optional>
#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"
#include "engine/scan_spec.h"
#include "engine/zone_pruner.h"
#include "io/io.h"
#include "storage/catalog.h"
#include "storage/row_page.h"

namespace rodb {

/// Scans a row-layout table (Section 2.2.2): iterates over the pages of
/// the single row file, applies the predicates to each tuple, projects the
/// selected attributes into the output block. Reads every byte of the
/// relation regardless of the projection -- the defining property the
/// study contrasts with column scans.
class RowScanner final : public Operator {
 public:
  /// `table`, `backend`, `stats` are borrowed and must outlive the scanner.
  static Result<OperatorPtr> Make(const OpenTable* table, ScanSpec spec,
                                  IoBackend* backend, ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return block_.layout();
  }

 private:
  RowScanner(const OpenTable* table, ScanSpec spec, IoBackend* backend,
             ExecStats* stats, BlockLayout layout);

  /// Advances to the next page in the stream. Sets eof_ when done.
  Status AdvancePage();
  /// At stream EOF: the pages/tuples actually delivered must match what
  /// the catalog promised for the scanned range -- a file truncated
  /// underneath the scan must fail, not silently return fewer rows.
  Status CheckScanComplete() const;
  /// Processes tuples of the current page into block_ until the block is
  /// full or the page is exhausted.
  void ProcessCurrentPage();

  const OpenTable* table_;
  ScanSpec spec_;
  IoBackend* backend_;
  /// CachingBackend wrapped around the borrowed backend when the spec
  /// carries a block cache (backend_ then points at it).
  std::vector<std::unique_ptr<IoBackend>> owned_backends_;
  ExecStats* stats_;
  TupleBlock block_;

  OpenTable::RowCodecBundle codec_bundle_;
  std::unique_ptr<SequentialStream> stream_;
  IoView view_{};
  size_t page_in_view_ = 0;
  size_t pages_in_view_ = 0;
  std::optional<RowPageReader> page_;
  uint32_t tuple_in_page_ = 0;
  uint64_t next_position_ = 0;  ///< absolute row id of the next tuple
  uint64_t pages_scanned_ = 0;
  uint64_t tuples_scanned_ = 0;  ///< sum of scanned pages' tuple counts
  bool eof_ = false;
  bool opened_ = false;

  std::vector<uint8_t> scratch_;          ///< decoded tuple (compressed path)
  ExecCounters per_tuple_decode_;         ///< decode counters per tuple
  int projected_bytes_ = 0;               ///< bytes copied per emitted tuple

  /// Zone-map prune plan (inactive unless spec.prune found skippable
  /// pages). When active the stream only carries the retained page runs
  /// and tuple positions are recovered from each view's file offset.
  PrunePlan plan_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_ROW_SCANNER_H_
