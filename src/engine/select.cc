#include "engine/select.h"

#include <cstring>

#include "common/macros.h"
#include "obs/span.h"

namespace rodb {

FilterOperator::FilterOperator(OperatorPtr child,
                               std::vector<Predicate> predicates,
                               ExecStats* stats)
    : child_(std::move(child)), predicates_(std::move(predicates)),
      stats_(stats), block_(child_->output_layout()) {}

Status FilterOperator::Open() { return child_->Open(); }

Result<TupleBlock*> FilterOperator::Next() {
  obs::SpanTimer span(stats_->trace(), obs::TracePhase::kFilter);
  ExecCounters& c = stats_->counters();
  block_.Clear();
  while (!block_.full()) {
    RODB_ASSIGN_OR_RETURN(TupleBlock * in, child_->Next());
    if (in == nullptr) break;
    if (in->size() > block_.capacity()) {
      block_ = TupleBlock(block_.layout(), in->size());
    }
    const int width = in->layout().tuple_width;
    for (uint32_t i = 0; i < in->size(); ++i) {
      c.operator_tuples += 1;
      bool pass = true;
      for (const Predicate& pred : predicates_) {
        c.predicate_evals += 1;
        if (!pred.Eval(in->attr(i, static_cast<size_t>(pred.attr_index())))) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      // Qualifying tuples may overflow the output block mid-input-block;
      // simplest faithful behaviour is to size output == input capacity.
      if (block_.full()) break;
      std::memcpy(block_.AppendSlot(), in->tuple(i),
                  static_cast<size_t>(width));
      block_.set_position(block_.size() - 1, in->position(i));
    }
    if (!block_.empty()) break;  // emit per input block, preserving order
  }
  if (block_.empty()) return static_cast<TupleBlock*>(nullptr);
  c.blocks_emitted += 1;
  return &block_;
}

void FilterOperator::Close() { child_->Close(); }

}  // namespace rodb
