#ifndef RODB_ENGINE_PROJECT_H_
#define RODB_ENGINE_PROJECT_H_

#include <vector>

#include "engine/exec_stats.h"
#include "engine/operator.h"

namespace rodb {

/// Keeps a subset of the child's block columns, in the given order.
class ProjectOperator final : public Operator {
 public:
  /// `columns` index into the child's block layout.
  static Result<OperatorPtr> Make(OperatorPtr child,
                                  std::vector<int> columns, ExecStats* stats);

  Status Open() override;
  Result<TupleBlock*> Next() override;
  void Close() override;
  const BlockLayout& output_layout() const override {
    return block_.layout();
  }

 private:
  ProjectOperator(OperatorPtr child, std::vector<int> columns,
                  ExecStats* stats, BlockLayout layout);

  OperatorPtr child_;
  std::vector<int> columns_;
  ExecStats* stats_;
  TupleBlock block_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_PROJECT_H_
