#ifndef RODB_ENGINE_SCANNER_IO_H_
#define RODB_ENGINE_SCANNER_IO_H_

#include <memory>

#include "engine/exec_stats.h"
#include "engine/scan_spec.h"
#include "io/block_cache.h"
#include "storage/catalog.h"

namespace rodb {

/// Routes a scanner's reads through a CachingBackend when the spec asks
/// for one (spec.read.cache). The decorator is stored in `owned` so its
/// lifetime matches the scanner's; without a cache the borrowed backend
/// is returned untouched.
inline IoBackend* MaybeCachingBackend(IoBackend* backend, const ScanSpec& spec,
                                      std::unique_ptr<IoBackend>* owned) {
  if (spec.read.cache == nullptr) return backend;
  *owned = std::make_unique<CachingBackend>(backend, spec.read.cache);
  return owned->get();
}

/// Stream options for one of a scan's files: the spec's ReadOptions with
/// the stats sink swapped for the scanner's own ExecStats record (the
/// IoStats single-writer contract; see io/io.h) and the file identity
/// filled in for cache keying.
inline IoOptions ScanStreamOptions(const ScanSpec& spec, ExecStats* stats,
                                   const OpenTable& table, size_t attr) {
  IoOptions options;
  options.read = spec.read;
  options.read.stats = stats->io_stats();
  options.file_id = table.FileId(attr);
  return options;
}

}  // namespace rodb

#endif  // RODB_ENGINE_SCANNER_IO_H_
