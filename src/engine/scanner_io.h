#ifndef RODB_ENGINE_SCANNER_IO_H_
#define RODB_ENGINE_SCANNER_IO_H_

#include <memory>
#include <vector>

#include "engine/exec_stats.h"
#include "engine/scan_spec.h"
#include "io/block_cache.h"
#include "io/retry_backend.h"
#include "storage/catalog.h"

namespace rodb {

/// Decorates a scanner's backend with the per-query resilience stack, in
/// the canonical order engine -> Caching -> Retrying -> inner: transient
/// failures are retried below the cache (a miss that recovers fills the
/// cache normally; hits never pay retry bookkeeping), and the retry loop
/// observes the query's cancellation/deadline through the context's
/// AliveCheck. The decorators are stored in `owned` so their lifetime
/// matches the scanner's; with no cache and no retry policy the borrowed
/// backend is returned untouched.
inline IoBackend* ScanBackendStack(
    IoBackend* backend, const ScanSpec& spec, ExecStats* stats,
    std::vector<std::unique_ptr<IoBackend>>* owned) {
  const QueryContext* ctx = stats->context();
  if (ctx != nullptr && ctx->retry_policy().enabled()) {
    owned->push_back(std::make_unique<RetryingBackend>(
        backend, ctx->retry_policy(), ctx->MakeAliveCheck()));
    backend = owned->back().get();
  }
  if (spec.read.cache != nullptr) {
    owned->push_back(std::make_unique<CachingBackend>(backend,
                                                      spec.read.cache));
    backend = owned->back().get();
  }
  return backend;
}

/// Stream options for one of a scan's files: the spec's ReadOptions with
/// the stats sink swapped for the scanner's own ExecStats record (the
/// IoStats single-writer contract; see io/io.h), the per-query trace
/// threaded through for decorator spans (io.retry), and the file
/// identity filled in for cache keying.
inline IoOptions ScanStreamOptions(const ScanSpec& spec, ExecStats* stats,
                                   const OpenTable& table, size_t attr) {
  IoOptions options;
  options.read = spec.read;
  options.read.stats = stats->io_stats();
  options.read.trace = stats->trace();
  options.file_id = table.FileId(attr);
  return options;
}

}  // namespace rodb

#endif  // RODB_ENGINE_SCANNER_IO_H_
