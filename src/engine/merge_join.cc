#include "engine/merge_join.h"

#include <cstring>

#include "common/bytes.h"
#include "common/macros.h"

namespace rodb {

Status MergeJoinOperator::Cursor::EnsureTuple() {
  while (!eof && (block == nullptr || index >= block->size())) {
    auto next = op->Next();
    if (!next.ok()) return next.status();
    block = *next;
    index = 0;
    if (block == nullptr) eof = true;
  }
  return Status::OK();
}

MergeJoinOperator::MergeJoinOperator(OperatorPtr left, OperatorPtr right,
                                     int left_column, int right_column,
                                     ExecStats* stats, BlockLayout layout)
    : left_(std::move(left)), right_(std::move(right)),
      left_column_(left_column), right_column_(right_column), stats_(stats),
      block_(std::move(layout)) {
  left_width_ = left_->output_layout().tuple_width;
  right_width_ = right_->output_layout().tuple_width;
  lcur_.op = left_.get();
  rcur_.op = right_.get();
}

Result<OperatorPtr> MergeJoinOperator::Make(OperatorPtr left,
                                            OperatorPtr right,
                                            int left_column, int right_column,
                                            ExecStats* stats) {
  if (left == nullptr || right == nullptr || stats == nullptr) {
    return Status::InvalidArgument("MergeJoinOperator: null dependency");
  }
  const BlockLayout& ll = left->output_layout();
  const BlockLayout& rl = right->output_layout();
  if (left_column < 0 || static_cast<size_t>(left_column) >= ll.num_attrs() ||
      ll.widths[static_cast<size_t>(left_column)] != 4) {
    return Status::InvalidArgument("left join column must be a valid int32");
  }
  if (right_column < 0 ||
      static_cast<size_t>(right_column) >= rl.num_attrs() ||
      rl.widths[static_cast<size_t>(right_column)] != 4) {
    return Status::InvalidArgument("right join column must be a valid int32");
  }
  std::vector<int> widths = ll.widths;
  widths.insert(widths.end(), rl.widths.begin(), rl.widths.end());
  BlockLayout layout = BlockLayout::FromWidths(widths);
  return OperatorPtr(new MergeJoinOperator(std::move(left), std::move(right),
                                           left_column, right_column, stats,
                                           std::move(layout)));
}

Status MergeJoinOperator::Open() {
  RODB_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

Status MergeJoinOperator::FillRightGroup(int32_t key) {
  right_group_.clear();
  right_group_count_ = 0;
  right_group_key_ = key;
  right_group_valid_ = true;
  ExecCounters& c = stats_->counters();
  while (true) {
    RODB_RETURN_IF_ERROR(rcur_.EnsureTuple());
    if (rcur_.eof) break;
    const int32_t rkey = LoadLE32s(
        rcur_.block->attr(rcur_.index, static_cast<size_t>(right_column_)));
    c.join_comparisons += 1;
    if (rkey != key) break;
    right_group_.insert(right_group_.end(), rcur_.tuple(),
                        rcur_.tuple() + right_width_);
    ++right_group_count_;
    ++rcur_.index;
  }
  return Status::OK();
}

Result<TupleBlock*> MergeJoinOperator::Next() {
  ExecCounters& c = stats_->counters();
  block_.Clear();
  while (!block_.full()) {
    if (emitting_) {
      // Continue the cross product of the current left tuple with the
      // buffered right group.
      while (!block_.full() && emit_in_group_ < right_group_count_) {
        uint8_t* slot = block_.AppendSlot();
        std::memcpy(slot, lcur_.tuple(), static_cast<size_t>(left_width_));
        std::memcpy(slot + left_width_,
                    right_group_.data() + emit_in_group_ *
                        static_cast<size_t>(right_width_),
                    static_cast<size_t>(right_width_));
        c.operator_tuples += 1;
        ++emit_in_group_;
      }
      if (emit_in_group_ < right_group_count_) break;  // block full
      emitting_ = false;
      ++lcur_.index;
      continue;
    }
    RODB_RETURN_IF_ERROR(lcur_.EnsureTuple());
    if (lcur_.eof) break;
    const int32_t lkey = LoadLE32s(
        lcur_.block->attr(lcur_.index, static_cast<size_t>(left_column_)));
    if (right_group_valid_ && lkey == right_group_key_) {
      // Same left key as the buffered group: reuse it (duplicate left keys).
      emit_in_group_ = 0;
      emitting_ = true;
      continue;
    }
    if (right_group_valid_ && lkey < right_group_key_) {
      // Left key smaller than the group we already buffered: no match.
      c.join_comparisons += 1;
      ++lcur_.index;
      continue;
    }
    // Advance the right side to the first key >= lkey.
    while (true) {
      RODB_RETURN_IF_ERROR(rcur_.EnsureTuple());
      if (rcur_.eof) break;
      const int32_t rkey = LoadLE32s(
          rcur_.block->attr(rcur_.index, static_cast<size_t>(right_column_)));
      c.join_comparisons += 1;
      if (rkey >= lkey) break;
      ++rcur_.index;
    }
    if (rcur_.eof) {
      right_group_valid_ = false;
      break;  // no further matches possible
    }
    const int32_t rkey = LoadLE32s(
        rcur_.block->attr(rcur_.index, static_cast<size_t>(right_column_)));
    if (rkey > lkey) {
      right_group_valid_ = false;
      ++lcur_.index;
      continue;
    }
    RODB_RETURN_IF_ERROR(FillRightGroup(lkey));
    emit_in_group_ = 0;
    emitting_ = true;
  }
  if (block_.empty()) return static_cast<TupleBlock*>(nullptr);
  c.blocks_emitted += 1;
  return &block_;
}

void MergeJoinOperator::Close() {
  left_->Close();
  right_->Close();
}

}  // namespace rodb
