#ifndef RODB_ENGINE_QUERY_CONTEXT_H_
#define RODB_ENGINE_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/status.h"
#include "io/retry_backend.h"

namespace rodb {

/// Cooperative cancellation flag shared by everyone running one query.
///
/// Tokens are cheap shared handles; copying a token shares the flag.
/// Child() derives a token that fires when either it or any ancestor is
/// cancelled — the parallel executor cancels its own run (a failing
/// worker stops its siblings) without ever setting the caller's token.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation; checked cooperatively at morsel/page
  /// boundaries. Idempotent, safe from any thread (e.g. a deadline
  /// watchdog or a failing sibling worker).
  void Cancel() const { state_->cancelled.store(true, std::memory_order_release); }

  bool IsCancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// A token that observes this token's cancellation but whose own
  /// Cancel() does not propagate upward.
  CancellationToken Child() const {
    CancellationToken child;
    child.state_->parent = state_;
    return child;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::shared_ptr<const State> parent;
  };
  std::shared_ptr<State> state_;
};

/// Byte-granular memory budget shared by one query (or, via the
/// AdmissionController, by every admitted query). Reserve() either
/// debits atomically or fails with ResourceExhausted — it never blocks
/// and never over-commits, so a scan that would blow the budget fails
/// cleanly at the allocation site instead of OOM-ing the process.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  Status Reserve(uint64_t bytes) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    do {
      if (used + bytes > capacity_) {
        return Status::ResourceExhausted("memory budget exceeded");
      }
    } while (!used_.compare_exchange_weak(used, used + bytes,
                                          std::memory_order_relaxed));
    return Status::OK();
  }

  void Release(uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }

 private:
  const uint64_t capacity_;
  std::atomic<uint64_t> used_{0};
};

/// RAII hold on a MemoryBudget reservation. Movable; releases on
/// destruction so early error returns cannot leak budget.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryBudget* budget, uint64_t bytes)
      : budget_(budget), bytes_(bytes) {}
  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  ~MemoryReservation() { Release(); }

  void Release() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

/// Everything the read path needs to know about one query's lifecycle:
/// an absolute deadline, a cooperative CancellationToken, an optional
/// shared MemoryBudget, and the RetryPolicy its I/O runs under.
///
/// Contexts are cheap value types — copies share the same token, budget
/// and report flag. A default context never expires, is never cancelled
/// and has no budget, so code paths that don't care can carry one at
/// zero behavioural cost. CheckAlive() is the single choke point the
/// executor, scanners, shared scan and WOS merge call at unit
/// boundaries; kCancelled wins over kDeadlineExceeded when both hold so
/// an explicit Cancel() reports deterministically.
class QueryContext {
 public:
  QueryContext()
      : reported_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Context whose CheckAlive() fails with kDeadlineExceeded once
  /// `timeout` has elapsed from now.
  static QueryContext WithTimeout(std::chrono::nanoseconds timeout) {
    QueryContext ctx;
    ctx.set_deadline(std::chrono::steady_clock::now() + timeout);
    return ctx;
  }

  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  const CancellationToken& token() const { return token_; }
  /// Adopts a caller-held token (e.g. QueryRequest::cancel) so the
  /// caller can cancel this query from another thread.
  void set_token(CancellationToken token) { token_ = std::move(token); }
  void Cancel() const { token_.Cancel(); }

  /// Attaches a budget shared with every copy/child of this context.
  void set_memory_budget(std::shared_ptr<MemoryBudget> budget) {
    budget_ = std::move(budget);
  }
  MemoryBudget* memory_budget() const { return budget_.get(); }

  /// Debits `bytes` from the budget (no-op hold if none is attached).
  Result<MemoryReservation> ReserveMemory(uint64_t bytes) const;

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// OK while the query may keep running; Cancelled / DeadlineExceeded
  /// once it must stop. The first failure per context family also
  /// increments rodb.resilience.cancelled / .deadline_exceeded — shared
  /// flag, so a query checked by twelve workers still counts once.
  Status CheckAlive() const;

  /// Context for a sub-unit of this query (a parallel run, a shared-scan
  /// participant): same deadline/budget/policy/metrics identity, child
  /// token — cancelling the child does not cancel this context.
  QueryContext Child() const {
    QueryContext child(*this);
    child.token_ = token_.Child();
    return child;
  }

  /// Closure form of CheckAlive() for layers that cannot see this header
  /// (the io-layer RetryingBackend's AliveCheck).
  AliveCheck MakeAliveCheck() const {
    QueryContext copy = *this;
    return [copy] { return copy.CheckAlive(); };
  }

 private:
  CancellationToken token_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::shared_ptr<MemoryBudget> budget_;
  RetryPolicy retry_policy_;
  /// Shared across copies/children so lifecycle metrics count per query.
  std::shared_ptr<std::atomic<bool>> reported_;
};

}  // namespace rodb

#endif  // RODB_ENGINE_QUERY_CONTEXT_H_
