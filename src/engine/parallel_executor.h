#ifndef RODB_ENGINE_PARALLEL_EXECUTOR_H_
#define RODB_ENGINE_PARALLEL_EXECUTOR_H_

#include <vector>

#include "common/thread_pool.h"
#include "engine/aggregate.h"
#include "engine/executor.h"
#include "engine/predicate.h"
#include "engine/scan_spec.h"
#include "io/io.h"
#include "obs/span.h"
#include "storage/catalog.h"

namespace rodb {

/// A scan pipeline to run morsel-parallel: one table scan plus optional
/// block-level filter / projection / aggregation stages. The pipeline is
/// cloned per worker; each clone scans one morsel of the table with its
/// own streams and its own ExecStats, then the partial results are merged
/// on the calling thread.
struct ParallelScanPlan {
  const OpenTable* table = nullptr;  ///< borrowed
  ScanSpec spec;                     ///< whole-table scan spec
  IoBackend* backend = nullptr;      ///< borrowed; must allow concurrent
                                     ///< OpenStream + independent streams
  /// Block-level conjunctive filter above the scan (indices refer to the
  /// scan's output layout). Empty = none.
  std::vector<Predicate> filter;
  /// Block columns kept/reordered above the filter. Empty = keep all.
  std::vector<int> project;
  /// Optional aggregation on top (borrowed). Workers compute partial
  /// aggregates (AVG split into SUM + COUNT) which are combined at merge
  /// time; merged groups are emitted in ascending key order, matching the
  /// serial sort-aggregate exactly (serial hash-aggregate group order is
  /// unspecified).
  const AggPlan* agg = nullptr;
  bool use_sort_aggregate = false;  ///< SortAgg vs HashAgg in each worker
  /// Optional span tree (obs/span.h). The serial fallback traces the full
  /// pipeline; parallel runs record per-worker wall time (morsel spans),
  /// the merge, and the finalized counters — workers keep their own
  /// untraced ExecStats so the single-writer I/O contract holds.
  obs::QueryTrace* trace = nullptr;
  /// Optional query lifecycle context (borrowed; engine/query_context.h).
  /// Workers run under a derived child context, so a failing worker
  /// cancels its siblings without ever cancelling the caller's token;
  /// deadline, memory budget and retry policy pass through unchanged.
  /// Null = run to completion.
  const QueryContext* context = nullptr;
};

/// What a parallel execution produced.
struct ParallelResult {
  /// rows / blocks / output_checksum / measured wall time. The checksum
  /// is chained over worker outputs in morsel order and equals the serial
  /// Execute() checksum for the same plan.
  ExecutionResult result;
  /// Per-worker counters summed, with the I/O counters normalized to
  /// their single-stream (serial-scan) equivalents so ModelQueryTiming
  /// yields the same Section-5 numbers regardless of the degree of
  /// parallelism: bytes already sum exactly (morsels partition each
  /// file); requests are recomputed as ceil(file bytes / I/O unit) per
  /// serial stream; files as the serial stream count.
  ExecCounters counters;
  /// The raw summed per-worker I/O record (what actually hit the
  /// backend): k streams per file, boundary-fragment requests included.
  IoStats raw_io;
  int morsels = 0;  ///< morsels actually executed (1 = ran serially)
};

/// Splits a whole-table scan into at most `parallelism` morsel specs.
///
/// Row/PAX tables split the single file into page-aligned byte ranges
/// (PartitionFile). Column tables split the position space, aligned so
/// that every column file the pipeline touches splits at page boundaries
/// (the LCM of the files' values-per-page, or the driving column's when
/// the LCM outgrows the table); this requires uniform page value counts
/// (TableMeta::PageValues) on every involved file -- otherwise, and for
/// `parallelism` <= 1, the original spec comes back as a single morsel.
std::vector<ScanSpec> PlanMorsels(const OpenTable& table, const ScanSpec& spec,
                                  int parallelism);

/// Runs the plan with `parallelism` workers on `pool` (ThreadPool::Shared
/// when null) and merges: output bytes are concatenated in morsel order
/// (checksum-chained, never reordered), partial aggregates are combined,
/// and per-worker counters are summed + normalized as described above.
/// Falls back to serial execution (identical to Execute) when the table
/// cannot be partitioned or `parallelism` <= 1.
Result<ParallelResult> ParallelExecute(const ParallelScanPlan& plan,
                                       int parallelism,
                                       ThreadPool* pool = nullptr);

}  // namespace rodb

#endif  // RODB_ENGINE_PARALLEL_EXECUTOR_H_
