#include "engine/shared_scan.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"

namespace rodb {

class SharedScan::Consumer final : public Operator {
 public:
  Consumer(std::shared_ptr<State> state, size_t index)
      : state_(std::move(state)), index_(index) {}

  Status Open() override {
    if (opened_) return Status::OK();
    opened_ = true;
    ++state_->open_consumers;
    if (!state_->opened) {
      state_->opened = true;
      return state_->source->Open();
    }
    return Status::OK();
  }

  Result<TupleBlock*> Next() override {
    if (!opened_) return Status::InvalidArgument("consumer not opened");
    state_->started = true;
    const uint64_t seq = state_->consumer_next[index_];
    auto block = state_->Fetch(seq);
    if (!block.ok()) return block;
    if (*block != nullptr) {
      state_->consumer_next[index_] = seq + 1;
      state_->Retire();
    }
    return block;
  }

  void Close() override {
    if (!opened_ || closed_) return;
    closed_ = true;
    // Detach from the window so the other consumers can retire blocks.
    state_->consumer_next[index_] = UINT64_MAX;
    state_->Retire();
    if (--state_->open_consumers == 0) state_->source->Close();
  }

  const BlockLayout& output_layout() const override {
    return state_->source->output_layout();
  }

 private:
  std::shared_ptr<State> state_;
  size_t index_;
  bool opened_ = false;
  bool closed_ = false;
};

SharedScan::SharedScan(OperatorPtr source, size_t max_lag_blocks)
    : state_(std::make_shared<State>()) {
  state_->source = std::move(source);
  state_->max_lag = max_lag_blocks;
}

OperatorPtr SharedScan::AddConsumer() {
  RODB_CHECK(!state_->started);
  const size_t index = state_->consumer_next.size();
  state_->consumer_next.push_back(0);
  return OperatorPtr(new Consumer(state_, index));
}

Result<TupleBlock*> SharedScan::State::Fetch(uint64_t seq) {
  RODB_CHECK(seq >= window_start);
  while (seq >= window_start + window.size()) {
    if (context != nullptr) {
      // One cancellation/deadline stops every consumer of the shared
      // stream at its next fetch.
      RODB_RETURN_IF_ERROR(context->CheckAlive());
    }
    if (exhausted) return static_cast<TupleBlock*>(nullptr);
    if (max_lag != 0 && window.size() >= max_lag) {
      return Status::ResourceExhausted(
          "shared scan window full: a consumer lags more than " +
          std::to_string(max_lag) + " blocks");
    }
    auto next = source->Next();
    if (!next.ok()) return next;
    if (*next == nullptr) {
      exhausted = true;
      return static_cast<TupleBlock*>(nullptr);
    }
    // The source reuses its block; buffer a copy for the window. The
    // copy is the shared scan's working set: debit it from the query's
    // budget so a lagging consumer cannot buffer unboundedly.
    MemoryReservation reservation;
    if (context != nullptr) {
      const uint64_t bytes =
          static_cast<uint64_t>((*next)->size()) *
          static_cast<uint64_t>((*next)->layout().tuple_width);
      RODB_ASSIGN_OR_RETURN(reservation, context->ReserveMemory(bytes));
    }
    window.push_back(std::make_unique<TupleBlock>(**next));
    window_reservations.push_back(std::move(reservation));
    static obs::Counter* buffered =
        obs::MetricsRegistry::Default().GetCounter(
            "rodb.sharedscan.buffered_blocks");
    buffered->Increment();
  }
  return window[seq - window_start].get();
}

void SharedScan::State::Retire() {
  uint64_t min_next = UINT64_MAX;
  for (uint64_t n : consumer_next) min_next = std::min(min_next, n);
  // A consumer with next == s+1 may still hold a pointer to block s, so
  // only retire blocks strictly older than min_next - 1.
  while (!window.empty() && min_next != UINT64_MAX &&
         window_start + 1 < min_next) {
    window.pop_front();
    window_reservations.pop_front();
    ++window_start;
  }
}

}  // namespace rodb
