#include "engine/parallel_executor.h"

#include <algorithm>
#include <cmath>
#include <latch>
#include <limits>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/macros.h"
#include "common/scope_guard.h"
#include "common/stopwatch.h"
#include "engine/exec_stats.h"
#include "engine/plan_builder.h"
#include "engine/zone_pruner.h"
#include "obs/metrics.h"
#include "storage/table_files.h"

namespace rodb {

namespace {

/// Partial state of one aggregation group, across workers: the original
/// aggregates' accumulators plus the group's total input row count (the
/// COUNT the worker plans append so AVG can divide at the end).
struct PartialGroup {
  int64_t count = 0;
  std::vector<int64_t> acc;
};

void InitPartial(const AggPlan& plan, PartialGroup* g) {
  g->acc.resize(plan.aggs.size());
  for (size_t i = 0; i < plan.aggs.size(); ++i) {
    switch (plan.aggs[i].func) {
      case AggFunc::kMin:
        g->acc[i] = std::numeric_limits<int64_t>::max();
        break;
      case AggFunc::kMax:
        g->acc[i] = std::numeric_limits<int64_t>::min();
        break;
      default:
        g->acc[i] = 0;
        break;
    }
  }
}

void CombinePartial(const AggPlan& plan, const PartialGroup& in,
                    PartialGroup* out) {
  out->count += in.count;
  for (size_t i = 0; i < plan.aggs.size(); ++i) {
    switch (plan.aggs[i].func) {
      case AggFunc::kMin:
        out->acc[i] = std::min(out->acc[i], in.acc[i]);
        break;
      case AggFunc::kMax:
        out->acc[i] = std::max(out->acc[i], in.acc[i]);
        break;
      default:  // COUNT / SUM / AVG-as-SUM partials all add
        out->acc[i] += in.acc[i];
        break;
    }
  }
}

/// Workers aggregate with AVG rewritten to its SUM partial plus one
/// appended COUNT, so the merge can reproduce the serial integer-divide.
AggPlan WorkerAggPlan(const AggPlan& orig) {
  AggPlan plan = orig;
  for (AggSpec& spec : plan.aggs) {
    if (spec.func == AggFunc::kAvg) spec.func = AggFunc::kSum;
  }
  AggSpec count;
  count.func = AggFunc::kCount;
  count.column = 0;
  plan.aggs.push_back(count);
  return plan;
}

struct WorkerState {
  ExecStats stats;
  Status status = Status::OK();
  /// Non-aggregating pipelines: the worker's raw output tuple bytes, in
  /// production order (FNV-1a is chained, not combinable, so the merge
  /// re-hashes these buffers in morsel order).
  std::vector<uint8_t> bytes;
  /// Budget holds backing `bytes` (one per emitted block); released when
  /// the worker is destroyed, after the merge has consumed the buffers.
  std::vector<MemoryReservation> reservations;
  uint64_t rows = 0;
  uint64_t blocks = 0;
  /// Aggregating pipelines: partial groups, keyed by group key.
  std::map<int32_t, PartialGroup> groups;
};

Result<OperatorPtr> BuildWorkerPlan(const ParallelScanPlan& plan,
                                    const ScanSpec& morsel,
                                    const AggPlan* worker_agg,
                                    ExecStats* stats) {
  PlanBuilder builder =
      PlanBuilder::Scan(plan.table, morsel, plan.backend, stats);
  // The && stages mutate the builder in place; the returned reference is
  // only for chaining.
  if (!plan.filter.empty()) std::move(builder).Filter(plan.filter);
  if (!plan.project.empty()) std::move(builder).Project(plan.project);
  if (worker_agg != nullptr) {
    if (plan.use_sort_aggregate) {
      std::move(builder).SortAggregate(*worker_agg);
    } else {
      std::move(builder).HashAggregate(*worker_agg);
    }
  }
  return std::move(builder).Build();
}

/// Folds one partial-aggregate output block (layout: [key?] [8B per
/// original aggregate, AVG as SUM] [8B count]) into the worker's groups.
void CollectPartials(const AggPlan& orig, const TupleBlock& block,
                     WorkerState* w) {
  const bool grouped = orig.group_column >= 0;
  const size_t first = grouped ? 1 : 0;
  const size_t m = orig.aggs.size();
  for (uint32_t i = 0; i < block.size(); ++i) {
    const int32_t key = grouped ? LoadLE32s(block.attr(i, 0)) : 0;
    auto [it, inserted] = w->groups.try_emplace(key);
    if (inserted) InitPartial(orig, &it->second);
    PartialGroup in;
    in.count = static_cast<int64_t>(LoadLE64(block.attr(i, first + m)));
    in.acc.resize(m);
    for (size_t a = 0; a < m; ++a) {
      in.acc[a] = static_cast<int64_t>(LoadLE64(block.attr(i, first + a)));
    }
    CombinePartial(orig, in, &it->second);
  }
}

/// One worker: drive its pipeline clone over one morsel, recording either
/// output bytes or partial aggregates into worker-local state.
Status DriveWorker(Operator* root, const AggPlan* orig_agg, WorkerState* w) {
  RODB_RETURN_IF_ERROR(root->Open());
  // Close on every exit, error returns included: Close() releases the
  // worker's streams (and with them block-cache pins), and the pending
  // I/O record must be folded or it is lost.
  auto close_guard = MakeScopeGuard([&] {
    root->Close();
    w->stats.FoldIo();
  });
  const QueryContext* ctx = w->stats.context();
  const int width = root->output_layout().tuple_width;
  while (true) {
    RODB_RETURN_IF_ERROR(w->stats.CheckAlive());
    RODB_ASSIGN_OR_RETURN(TupleBlock * block, root->Next());
    if (block == nullptr) break;
    if (block->empty()) continue;
    w->blocks += 1;
    w->rows += block->size();
    if (orig_agg != nullptr) {
      CollectPartials(*orig_agg, *block, w);
    } else {
      const size_t chunk = static_cast<size_t>(block->size()) *
                           static_cast<size_t>(width);
      if (ctx != nullptr) {
        // The buffered output bytes are this worker's working set; a
        // budget overflow fails the query here instead of OOM-ing.
        RODB_ASSIGN_OR_RETURN(MemoryReservation r,
                              ctx->ReserveMemory(chunk));
        w->reservations.push_back(std::move(r));
      }
      const uint8_t* data = block->tuple(0);
      w->bytes.insert(w->bytes.end(), data, data + chunk);
    }
  }
  return Status::OK();
}

/// Emits the merged groups (ascending key order) through a fresh output
/// block, chaining the checksum exactly like serial Execute would.
void EmitMergedAggregate(const AggPlan& orig,
                         const std::map<int32_t, PartialGroup>& merged,
                         uint32_t block_tuples, ExecutionResult* out) {
  TupleBlock block(AggOutputLayout(orig), block_tuples);
  const BlockLayout& layout = block.layout();
  const bool grouped = orig.group_column >= 0;
  uint64_t checksum = kFnv1aSeed;
  auto flush = [&] {
    if (block.empty()) return;
    out->blocks += 1;
    out->rows += block.size();
    checksum = Fnv1aExtend(checksum, block.tuple(0),
                           static_cast<size_t>(block.size()) *
                               static_cast<size_t>(layout.tuple_width));
    block.Clear();
  };
  for (const auto& [key, g] : merged) {
    uint8_t* slot = block.AppendSlot();
    size_t offset = 0;
    if (grouped) {
      StoreLE32s(slot, key);
      offset = 1;
    }
    for (size_t i = 0; i < orig.aggs.size(); ++i) {
      int64_t v = 0;
      switch (orig.aggs[i].func) {
        case AggFunc::kAvg:
          v = g.count == 0 ? 0 : g.acc[i] / g.count;
          break;
        default:
          v = g.acc[i];
          break;
      }
      StoreLE64(slot + layout.offsets[offset + i], static_cast<uint64_t>(v));
    }
    if (block.full()) flush();
  }
  flush();
  out->output_checksum = checksum;
}

/// Serial-stream I/O equivalents for the normalized counters: one stream
/// per file the scan reads, each requesting the whole file in I/O units.
/// Under an active prune plan a serial scan opens one stream per retained
/// byte run instead, so the equivalents are computed per run.
void NormalizeIoCounters(const OpenTable& table, const ScanSpec& spec,
                         const PrunePlan& prune, ExecCounters* c) {
  uint64_t requests = 0;
  uint64_t files = 0;
  const size_t unit = spec.read.io_unit_bytes;
  auto add_file = [&](uint64_t bytes) {
    files += 1;
    requests += (bytes + unit - 1) / unit;
  };
  auto add_runs = [&](const std::vector<Run>& page_runs, uint64_t bytes) {
    for (const ByteRun& r :
         ByteRunsForPages(page_runs, table.meta().page_size, bytes)) {
      add_file(r.length);
    }
  };
  if (prune.active) {
    if (table.meta().layout != Layout::kColumn) {
      add_runs(prune.nodes[0].page_runs, table.FileBytes(0));
    } else {
      for (const NodePrunePlan& node : prune.nodes) {
        add_runs(node.page_runs, table.FileBytes(node.attr));
      }
    }
  } else if (table.meta().layout != Layout::kColumn) {
    add_file(table.FileBytes(0));
  } else {
    for (size_t attr : ScanPipelineAttrs(spec)) {
      add_file(table.FileBytes(attr));
    }
  }
  // A block cache absorbs part (or all) of the backend traffic; only the
  // fraction that actually reached the backend should cost kernel time,
  // warm runs included (matching CacheAdjustedStreams on the disk side).
  const uint64_t total_bytes = c->io_bytes_read + c->io_bytes_from_cache;
  if (total_bytes > 0 && c->io_bytes_from_cache > 0) {
    const double backend_fraction =
        static_cast<double>(c->io_bytes_read) /
        static_cast<double>(total_bytes);
    requests = static_cast<uint64_t>(
        std::llround(static_cast<double>(requests) * backend_fraction));
    files = static_cast<uint64_t>(
        std::llround(static_cast<double>(files) * backend_fraction));
  }
  c->io_requests = requests;
  c->files_read = files;
}

}  // namespace

std::vector<ScanSpec> PlanMorsels(const OpenTable& table, const ScanSpec& spec,
                                  int parallelism) {
  std::vector<ScanSpec> morsels;
  const TableMeta& meta = table.meta();
  if (parallelism <= 1) {
    morsels.push_back(spec);
    return morsels;
  }
  if (meta.layout != Layout::kColumn) {
    const std::vector<FilePartition> parts =
        PartitionFile(meta.file_bytes[0], meta.page_size, parallelism);
    if (parts.size() <= 1) {
      morsels.push_back(spec);
      return morsels;
    }
    for (const FilePartition& p : parts) {
      ScanSpec m = spec;
      m.range = ScanRange::Pages(p.first_page, p.num_pages);
      morsels.push_back(std::move(m));
    }
    return morsels;
  }
  // Column layout: split the position space so every file the pipeline
  // touches splits at page boundaries (no page is parsed by two workers).
  const uint64_t total = meta.num_tuples;
  const std::vector<size_t> attrs = ScanPipelineAttrs(spec);
  if (total == 0 || attrs.empty()) {
    morsels.push_back(spec);
    return morsels;
  }
  for (size_t attr : attrs) {
    if (meta.PageValues(attr) == 0) {
      // A codec ended pages early somewhere: position -> page arithmetic
      // is unsound, run serially.
      morsels.push_back(spec);
      return morsels;
    }
  }
  uint64_t unit = 1;
  for (size_t attr : attrs) {
    unit = std::lcm(unit, static_cast<uint64_t>(meta.PageValues(attr)));
    if (unit > total) break;
  }
  if (unit > total) {
    // The LCM outgrew the table; align to the driving column instead and
    // accept that other files' boundary pages are parsed by two workers.
    unit = meta.PageValues(attrs.front());
  }
  const uint64_t units = (total + unit - 1) / unit;
  const uint64_t k =
      std::min<uint64_t>(static_cast<uint64_t>(parallelism), units);
  if (k <= 1) {
    morsels.push_back(spec);
    return morsels;
  }
  const uint64_t base = units / k;
  const uint64_t extra = units % k;
  uint64_t at = 0;
  for (uint64_t i = 0; i < k; ++i) {
    const uint64_t n = base + (i < extra ? 1 : 0);
    ScanSpec m = spec;
    const uint64_t first_row = at * unit;
    m.range = ScanRange::Rows(first_row,
                              std::min(total, (at + n) * unit) - first_row);
    morsels.push_back(std::move(m));
    at += n;
  }
  return morsels;
}

Result<ParallelResult> ParallelExecute(const ParallelScanPlan& plan,
                                       int parallelism, ThreadPool* pool) {
  if (plan.table == nullptr || plan.backend == nullptr) {
    return Status::InvalidArgument("ParallelExecute: null dependency");
  }
  IntervalTimer timer;
  std::vector<ScanSpec> morsels =
      PlanMorsels(*plan.table, plan.spec, parallelism);
  // Morsel-level data skipping: carve away morsels whose whole position
  // range was zone-pruned (their workers would open streams just to read
  // nothing). Each surviving worker re-plans pruning clipped to its own
  // range, so the plan here is only consulted for overlap.
  const PrunePlan whole_prune = BuildPrunePlan(*plan.table, plan.spec);
  if (whole_prune.active && morsels.size() > 1) {
    const TableMeta& meta = plan.table->meta();
    std::vector<ScanSpec> kept;
    for (ScanSpec& m : morsels) {
      uint64_t lo = 0;
      uint64_t hi = meta.num_tuples;
      if (m.range.unit == ScanRange::Unit::kPages) {
        const uint64_t vpp = meta.PageValues(0);
        const uint64_t np =
            std::min(m.range.num_pages(), meta.file_pages[0]);
        lo = m.range.first_page() * vpp;
        hi = std::min(hi, lo + np * vpp);
      } else if (m.range.unit == ScanRange::Unit::kRows) {
        lo = std::min(m.range.first_row(), hi);
        hi = lo + std::min(m.range.num_rows(), hi - lo);
      }
      if (!IntersectRuns(whole_prune.global, {Run{lo, hi}}).empty()) {
        kept.push_back(std::move(m));
      }
    }
    // Keep one morsel even when everything was pruned: the scan still has
    // to run (and report) an empty, well-formed result.
    if (kept.empty()) kept.push_back(std::move(morsels.front()));
    morsels = std::move(kept);
  }
  ParallelResult out;
  out.morsels = static_cast<int>(morsels.size());

  if (morsels.size() == 1) {
    // Serial fallback: identical to Execute over the unmodified plan.
    ExecStats stats;
    stats.set_trace(plan.trace);
    stats.set_context(plan.context);
    RODB_ASSIGN_OR_RETURN(OperatorPtr root,
                          BuildWorkerPlan(plan, morsels[0], plan.agg, &stats));
    RODB_ASSIGN_OR_RETURN(out.result, Execute(root.get(), &stats));
    out.counters = stats.counters();
    out.raw_io.bytes_read = out.counters.io_bytes_read;
    out.raw_io.requests = out.counters.io_requests;
    out.raw_io.files_opened = out.counters.files_read;
    out.raw_io.bytes_from_cache = out.counters.io_bytes_from_cache;
    out.raw_io.cache_hits = out.counters.io_cache_hits;
    out.raw_io.cache_misses = out.counters.io_cache_misses;
    out.result.measured = timer.Lap();
    return out;
  }

  const AggPlan worker_agg =
      plan.agg != nullptr ? WorkerAggPlan(*plan.agg) : AggPlan{};
  std::vector<WorkerState> workers(morsels.size());
  // Workers run under a child of the caller's context: a failing worker
  // cancels the run (its siblings stop at their next page boundary)
  // without setting the caller's token, and the caller cancelling or the
  // deadline expiring is observed through the parent chain.
  QueryContext run_ctx =
      plan.context != nullptr ? plan.context->Child() : QueryContext();
  std::vector<OperatorPtr> roots;
  roots.reserve(morsels.size());
  for (size_t i = 0; i < morsels.size(); ++i) {
    workers[i].stats.set_context(&run_ctx);
    RODB_ASSIGN_OR_RETURN(
        OperatorPtr root,
        BuildWorkerPlan(plan, morsels[i],
                        plan.agg != nullptr ? &worker_agg : nullptr,
                        &workers[i].stats));
    roots.push_back(std::move(root));
  }
  // IoStats single-writer contract (io/io.h): every worker must own a
  // distinct I/O record -- sharing one across streams is a data race.
  for (size_t i = 0; i < workers.size(); ++i) {
    for (size_t j = i + 1; j < workers.size(); ++j) {
      RODB_CHECK(workers[i].stats.io_stats() != workers[j].stats.io_stats());
    }
  }

  if (pool == nullptr) pool = ThreadPool::Shared();
  std::latch done(static_cast<std::ptrdiff_t>(morsels.size()));
  const AggPlan* orig_agg = plan.agg;
  obs::QueryTrace* trace = plan.trace;
  obs::SpanTimer query_span(trace, obs::TracePhase::kQuery);
  for (size_t i = 0; i < morsels.size(); ++i) {
    Operator* root = roots[i].get();
    WorkerState* w = &workers[i];
    const QueryContext* rc = &run_ctx;
    pool->Submit([root, orig_agg, w, trace, rc, &done] {
      {
        // AddPhaseNanos is wait-free, so worker threads may time their
        // own morsel even though their counters stay worker-local. The
        // timer closes before count_down so the merging thread never
        // reads a trace a worker is still writing.
        obs::SpanTimer morsel_span(trace, obs::TracePhase::kMorsel);
        w->status = DriveWorker(root, orig_agg, w);
      }
      // A failed morsel stops its siblings promptly: their next page-
      // boundary CheckAlive observes the run context's cancellation.
      if (!w->status.ok()) rc->Cancel();
      done.count_down();
    });
  }
  done.wait();

  // Surface the root cause, not the collateral: when one worker fails,
  // its siblings die with kCancelled from the sibling-cancel above, so a
  // real error (corruption, I/O giveup, deadline) wins over kCancelled.
  // All-kCancelled means the caller itself cancelled.
  {
    const Status* first_error = nullptr;
    for (const WorkerState& w : workers) {
      if (w.status.ok()) continue;
      if (first_error == nullptr) first_error = &w.status;
      if (!w.status.IsCancelled()) return w.status;
    }
    if (first_error != nullptr) return *first_error;
  }

  // --- merge ---
  obs::SpanTimer merge_span(trace, obs::TracePhase::kMerge);
  if (plan.agg != nullptr) {
    std::map<int32_t, PartialGroup> merged;
    for (const WorkerState& w : workers) {
      for (const auto& [key, g] : w.groups) {
        auto [it, inserted] = merged.try_emplace(key);
        if (inserted) InitPartial(*plan.agg, &it->second);
        CombinePartial(*plan.agg, g, &it->second);
      }
    }
    EmitMergedAggregate(*plan.agg, merged, plan.spec.block_tuples,
                        &out.result);
  } else {
    uint64_t checksum = kFnv1aSeed;
    for (const WorkerState& w : workers) {
      out.result.rows += w.rows;
      out.result.blocks += w.blocks;
      checksum = Fnv1aExtend(checksum, w.bytes.data(), w.bytes.size());
    }
    out.result.output_checksum = checksum;
  }

  IoStats raw;
  for (const WorkerState& w : workers) {
    out.counters += w.stats.counters();
    raw.MergeFrom(IoStats{w.stats.counters().io_bytes_read,
                          w.stats.counters().io_requests,
                          w.stats.counters().files_read,
                          w.stats.counters().io_bytes_from_cache,
                          w.stats.counters().io_cache_hits,
                          w.stats.counters().io_cache_misses});
  }
  out.raw_io = raw;
  // Morsel ranges partition single-file layouts exactly, so summed
  // bytes_read equals a serial scan's there; column files can re-read
  // one boundary unit per interior split (morsel rows are not aligned
  // to every column's page/unit phase). Requests and file opens are
  // never partition-exact (boundary fragments, k streams per file) and
  // are normalized to the serial equivalents so ModelQueryTiming is
  // parallelism-invariant.
  NormalizeIoCounters(*plan.table, plan.spec, whole_prune, &out.counters);
  if (trace != nullptr) trace->FinalizeFromCounters(out.counters);
  {
    static obs::Counter* morsel_count =
        obs::MetricsRegistry::Default().GetCounter("rodb.parallel.morsels");
    static obs::Counter* runs =
        obs::MetricsRegistry::Default().GetCounter("rodb.parallel.runs");
    morsel_count->Add(static_cast<uint64_t>(out.morsels));
    runs->Increment();
  }
  out.result.measured = timer.Lap();
  return out;
}

}  // namespace rodb
