#include "engine/union_all.h"

#include <algorithm>

#include "common/macros.h"
#include "engine/open_scanner.h"

namespace rodb {

Result<OperatorPtr> UnionAllOperator::Make(std::vector<OperatorPtr> children,
                                           ExecStats* stats) {
  if (children.empty()) {
    return Status::InvalidArgument("union needs at least one child");
  }
  if (stats == nullptr) {
    return Status::InvalidArgument("UnionAllOperator: null stats");
  }
  for (const OperatorPtr& child : children) {
    if (child == nullptr) {
      return Status::InvalidArgument("union child is null");
    }
    if (!(child->output_layout() == children.front()->output_layout())) {
      return Status::InvalidArgument("union children disagree on layout");
    }
  }
  return OperatorPtr(new UnionAllOperator(std::move(children), stats));
}

Status UnionAllOperator::Open() {
  for (OperatorPtr& child : children_) {
    RODB_RETURN_IF_ERROR(child->Open());
  }
  current_ = 0;
  return Status::OK();
}

Result<TupleBlock*> UnionAllOperator::Next() {
  while (current_ < children_.size()) {
    RODB_ASSIGN_OR_RETURN(TupleBlock * block, children_[current_]->Next());
    if (block != nullptr) return block;
    ++current_;
  }
  return static_cast<TupleBlock*>(nullptr);
}

void UnionAllOperator::Close() {
  for (OperatorPtr& child : children_) child->Close();
}

Result<OperatorPtr> MakePartitionedScan(const OpenTable* table,
                                        const ScanSpec& spec, int partitions,
                                        IoBackend* backend,
                                        ExecStats* stats) {
  if (table == nullptr) {
    return Status::InvalidArgument("MakePartitionedScan: null table");
  }
  if (partitions < 1) {
    return Status::InvalidArgument("partition count must be positive");
  }
  if (table->meta().layout == Layout::kColumn) {
    return Status::NotSupported(
        "partitioned scans need a single-file layout (row or PAX)");
  }
  if (!spec.range.is_all()) {
    return Status::InvalidArgument(
        "partitioned scan spec must cover the whole table");
  }
  const uint64_t total_pages = table->meta().file_pages[0];
  const uint64_t per_part =
      (total_pages + static_cast<uint64_t>(partitions) - 1) /
      static_cast<uint64_t>(partitions);
  std::vector<OperatorPtr> children;
  for (int p = 0; p < partitions; ++p) {
    const uint64_t first = static_cast<uint64_t>(p) * per_part;
    if (first >= total_pages) break;
    ScanSpec part = spec;
    part.range = ScanRange::Pages(first, std::min(per_part,
                                                  total_pages - first));
    Result<OperatorPtr> scan = OpenScanner(*table, part, backend, stats);
    RODB_RETURN_IF_ERROR(scan.status());
    children.push_back(std::move(scan).value());
  }
  return UnionAllOperator::Make(std::move(children), stats);
}

}  // namespace rodb
