// rodb_crash: standalone crash-durability torture driver (the CLI face
// of tests/crash/crash_harness.h).
//
//   rodb_crash [--mode=sim|fork|all] [--layout=row|column|both]
//              [--schedules=N] [--torn] [--stride=N]
//
// Replays the deterministic ingest workload under simulated power loss
// (every durability syscall is a kill point) and, in fork mode, under
// real SIGKILL, verifying after each schedule that recovery lands on
// the last acknowledged commit with zero committed-data loss and zero
// leaked files. Runs schedules until the requested count is reached
// (cycling seeds), prints one line per failure and a final summary;
// exit code 0 iff every schedule passed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "crash_harness.h"
#include "io/durable_file.h"
#include "io/sim_crash_env.h"

using namespace rodb;  // NOLINT

namespace {

struct TortureDir {
  TortureDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "rodb_crash_XXXXXX")
            .string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::fprintf(stderr, "rodb_crash: mkdtemp failed\n");
      std::exit(2);
    }
    path = tmpl;
  }
  ~TortureDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

uint64_t CountOps(const crash::WorkloadOptions& options) {
  TortureDir dir;
  SimulatedCrashEnv env;
  DurableEnv* previous = DurableEnv::SetDefault(&env);
  crash::Progress progress;
  const Status run = crash::RunWorkload(dir.path, options, &progress);
  DurableEnv::SetDefault(previous);
  if (!run.ok()) {
    std::fprintf(stderr, "rodb_crash: baseline workload failed: %s\n",
                 run.ToString().c_str());
    std::exit(2);
  }
  return env.ops();
}

bool ParseIntFlag(const char* arg, const char* flag, int* out) {
  const size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0) return false;
  *out = std::atoi(arg + n);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "all";
  std::string layout_flag = "both";
  int target_schedules = 200;
  int stride = 1;
  bool torn = false;
  for (int i = 1; i < argc; ++i) {
    if (ParseIntFlag(argv[i], "--schedules=", &target_schedules) ||
        ParseIntFlag(argv[i], "--stride=", &stride)) {
      continue;
    }
    if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--layout=", 9) == 0) {
      layout_flag = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--torn") == 0) {
      torn = true;
    } else {
      std::fprintf(stderr,
                   "usage: rodb_crash [--mode=sim|fork|all] "
                   "[--layout=row|column|both]\n"
                   "                  [--schedules=N] [--stride=N] "
                   "[--torn]\n");
      return 2;
    }
  }
  if (stride < 1) stride = 1;

  std::vector<Layout> layouts;
  if (layout_flag == "row" || layout_flag == "both") {
    layouts.push_back(Layout::kRow);
  }
  if (layout_flag == "column" || layout_flag == "both") {
    layouts.push_back(Layout::kColumn);
  }

  int schedules = 0;
  int failures = 0;
  const auto fail = [&](const char* what, uint64_t at, const Status& s) {
    ++failures;
    std::fprintf(stderr, "FAIL %s at=%llu: %s\n", what,
                 static_cast<unsigned long long>(at), s.ToString().c_str());
  };

  // Round-robin the axes until the schedule target is reached: torn
  // variants double the sim sweep when requested.
  for (uint64_t round = 0; schedules < target_schedules && failures == 0;
       ++round) {
    for (Layout layout : layouts) {
      crash::WorkloadOptions options;
      options.layout = layout;
      const uint64_t total = CountOps(options);
      if (mode == "sim" || mode == "all") {
        for (uint64_t at = 1 + round; at <= total && schedules < target_schedules;
             at += static_cast<uint64_t>(stride)) {
          TortureDir dir;
          DurabilityFaultSpec spec;
          spec.seed = at + round * 7919;
          spec.crash_at_op = at;
          spec.torn_tail_on_crash = torn;
          SimulatedCrashEnv env(spec);
          DurableEnv* previous = DurableEnv::SetDefault(&env);
          crash::Progress progress;
          const Status run =
              crash::RunWorkload(dir.path, options, &progress);
          DurableEnv::SetDefault(previous);
          ++schedules;
          if (run.ok()) {
            fail("sim (crash never fired)", at, Status::Internal("ran to end"));
            continue;
          }
          const Status recovered =
              crash::VerifyRecovery(dir.path, options, progress);
          if (!recovered.ok()) fail("sim", at, recovered);
        }
      }
      if (mode == "fork" || mode == "all") {
        for (uint64_t at = 1 + round;
             at <= total + 3 && schedules < target_schedules;
             at += static_cast<uint64_t>(stride) * 3) {
          TortureDir root;
          const std::string data = root.path + "/data";
          std::filesystem::create_directory(data);
          const std::string progress_path = root.path + "/progress";
          auto killed =
              crash::RunWorkloadKilledAt(data, options, at, progress_path);
          ++schedules;
          if (!killed.ok()) {
            fail("fork", at, killed.status());
            continue;
          }
          auto progress = crash::LoadProgress(progress_path);
          if (!progress.ok()) {
            fail("fork (progress)", at, progress.status());
            continue;
          }
          const Status recovered =
              crash::VerifyRecovery(data, options, *progress);
          if (!recovered.ok()) fail("fork", at, recovered);
        }
      }
    }
  }

  std::printf("rodb_crash: %d schedules, %d failures (mode=%s layout=%s%s)\n",
              schedules, failures, mode.c_str(), layout_flag.c_str(),
              torn ? " torn" : "");
  return failures == 0 ? 0 : 1;
}
