#!/usr/bin/env bash
# Bounded TSan soak of the scan-sharing query server.
#
# Builds bench/server_concurrency with ThreadSanitizer and runs it as a
# closed-loop soak: N socket clients hammer one in-process QueryServer
# (accept thread, per-connection threads, circulating-scan circulator,
# admission handoffs) in both shared and exclusive modes. Any data race
# in the attach/detach handshakes, lap delivery, engine shutdown or the
# connection lifecycle fails the run; `timeout` bounds the wall clock so
# a wedged circulation fails instead of idling.
#
# Usage: tools/run_server_soak.sh [duration-ms] [clients-csv]
#   duration-ms   per-point duration (default 2000)
#   clients-csv   client counts per mode (default 8,32)
# Env: RODB_BENCH_TUPLES  dataset size (default 20000 -- TSan is ~10x)
set -euo pipefail

cd "$(dirname "$0")/.."
DURATION_MS="${1:-2000}"
CLIENTS="${2:-8,32}"
TUPLES="${RODB_BENCH_TUPLES:-20000}"
BUILD_DIR=build-tsan

cmake -B "$BUILD_DIR" -S . -DRODB_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target server_concurrency

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "=== TSan server soak: ${DURATION_MS} ms/point, clients ${CLIENTS}," \
     "${TUPLES} tuples ==="
RODB_BENCH_DIR="$workdir" RODB_BENCH_TUPLES="$TUPLES" \
  timeout 1500 "$BUILD_DIR/bench/server_concurrency" \
  --duration-ms="$DURATION_MS" --clients="$CLIENTS" | tee server_soak.json

# Every point must have completed queries and zero client-side errors.
python3 - server_soak.json <<'EOF'
import json, sys
points = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert points, "soak produced no bench points"
for p in points:
    assert p["queries"] > 0, f"no queries completed: {p}"
    assert p["errors"] == 0, f"client errors under soak: {p}"
print(f"soak ok: {len(points)} points, "
      f"{sum(p['queries'] for p in points)} queries, 0 errors")
EOF
echo "Server soak clean."
