// Standalone driver for the differential fuzz harness (tests/fuzz/).
//
// Default mode, per iteration: generate a random schema / codec
// assignment / dataset / query, materialize it as row, column and PAX
// tables (compressed and uncompressed), and cross-check every scanner x
// {serial, parallel} x {clean I/O, fault-injected I/O} against the
// reference oracle, plus the resilience axis: retry-healed transient
// faults (with an exact injected-vs-retried ledger), cancelled and
// deadlined contexts.
//
// --ingest switches to the continuous-ingest axis: seeded lifecycle
// schedules (append batches, freezes, synchronous merges, injected
// lifecycle faults, mid-schedule crash + recovery) cross-checked
// against the append-log prefix oracle, with exact rodb.ingest.*
// counter reconciliation per iteration.
//
// Exit status 0 means zero mismatches; any failure reproduces from
// --seed.
//
//   rodb_fuzz --iterations=200 --seed=1
//   rodb_fuzz --ingest --iterations=500 --seed=3 --verbose

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz_harness.h"
#include "ingest_fuzz.h"

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

/// Strict decimal parse: "--iterations=abc" must be a usage error, not a
/// silent zero-iteration run that exits 0.
bool ParseU64(const std::string& value, uint64_t* out) {
  if (value.empty()) return false;
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--iterations=N] [--seed=N] [--parallelism=N]\n"
               "       [--min-tuples=N] [--max-tuples=N] [--verbose]\n"
               "       [--ingest [--max-batch=N]]\n";
  return 2;
}

int Report(uint64_t mismatches, const std::vector<std::string>& failures,
           uint64_t state_hash, uint64_t seed) {
  std::cout << "state_hash=" << state_hash << "\n";
  if (mismatches != 0) {
    std::cerr << mismatches << " mismatches; reproduce with --seed=" << seed
              << "\n";
    for (const std::string& failure : failures) {
      std::cerr << "  " << failure << "\n";
    }
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rodb::fuzz::FuzzOptions options;
  rodb::fuzz::IngestFuzzOptions ingest_options;
  bool ingest = false;
  options.out = &std::cout;
  ingest_options.out = &std::cout;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    uint64_t n = 0;
    if (ParseFlag(arg, "iterations", &value) && ParseU64(value, &n)) {
      options.iterations = static_cast<int>(n);
      ingest_options.iterations = static_cast<int>(n);
    } else if (ParseFlag(arg, "seed", &value) && ParseU64(value, &n)) {
      options.seed = n;
      ingest_options.seed = n;
    } else if (ParseFlag(arg, "parallelism", &value) && ParseU64(value, &n)) {
      options.parallelism = static_cast<int>(n);
    } else if (ParseFlag(arg, "min-tuples", &value) && ParseU64(value, &n)) {
      options.min_tuples = static_cast<uint32_t>(n);
    } else if (ParseFlag(arg, "max-tuples", &value) && ParseU64(value, &n)) {
      options.max_tuples = static_cast<uint32_t>(n);
    } else if (ParseFlag(arg, "max-batch", &value) && ParseU64(value, &n)) {
      ingest_options.max_batch = static_cast<uint32_t>(n);
    } else if (arg == "--ingest") {
      ingest = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
      ingest_options.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (ingest) {
    std::cout << "rodb_fuzz --ingest: seed=" << ingest_options.seed
              << " iterations=" << ingest_options.iterations
              << " max-batch=" << ingest_options.max_batch << "\n";
    auto stats = rodb::fuzz::RunIngestFuzz(ingest_options);
    if (!stats.ok()) {
      std::cerr << "harness error: " << stats.status().ToString() << "\n";
      return 2;
    }
    return Report(stats->mismatches, stats->failures, stats->state_hash,
                  ingest_options.seed);
  }

  std::cout << "rodb_fuzz: seed=" << options.seed
            << " iterations=" << options.iterations
            << " parallelism=" << options.parallelism << " tuples=["
            << options.min_tuples << "," << options.max_tuples << "]\n";
  auto stats = rodb::fuzz::RunFuzz(options);
  if (!stats.ok()) {
    std::cerr << "harness error: " << stats.status().ToString() << "\n";
    return 2;
  }
  return Report(stats->mismatches, stats->failures, stats->state_hash,
                options.seed);
}
