#!/usr/bin/env bash
# Builds and runs the test suite plus a bounded differential fuzz
# campaign under each sanitizer configuration:
#
#   asan-ubsan   AddressSanitizer + UndefinedBehaviorSanitizer over the
#                full ctest suite and the fuzzer.
#   tsan         ThreadSanitizer over the tests that exercise cross-thread
#                code and the fuzzer (whose parallel runs drive the morsel
#                scheduler and whose cached axis drives the block cache).
#
# The RODB_SANITIZE cache option (top-level CMakeLists.txt) applies the
# sanitizer to every target; each configuration gets its own build tree so
# the instrumented objects never mix.
#
# Usage: tools/run_sanitized_tests.sh [asan-ubsan|tsan|all] [fuzz-iterations]
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"
FUZZ_ITERATIONS="${2:-200}"

# block_cache_test's concurrent-reader cases and the fuzz harness's
# cached axis (cold/warm passes over one shared BlockCache) both stress
# the per-shard locking under TSan; obs_test races registry snapshots
# against sharded-counter increments and morsel span timers. The
# resilience suites race cancellation/deadline flags against running
# workers, retry loops against fault injection, and admission
# queue/budget handoffs across threads; robustness_sweep_test drives
# the whole matrix under injected faults; zone_map_test's parallel
# checksum cases race morsel workers over prune-filtered page ranges.
# server_test races circulating-scan attach/detach handshakes, engine
# shutdown and socket connection threads. The ingest suites race
# appends/freezes/background merges against epoch-pinned snapshot
# acquisition and lease retirement (snapshot_consistency_test's
# threaded schedules, ingest_fuzz_test's lifecycle sweeps).
# crash_recovery_test stays off this list on purpose: it forks and
# SIGKILLs children, which TSan's runtime can't follow; the ASan leg's
# full ctest covers it, and server_test races the drain/stop paths
# under TSan here.
TSAN_TESTS=(parallel_executor_test scanner_equivalence_test
            block_cache_test fuzz_test obs_test
            resilience_test retry_backend_test admission_test
            robustness_sweep_test zone_map_test server_test
            snapshot_consistency_test ingest_fuzz_test)

status=0

configure_and_build() {
  local build_dir="$1" sanitize="$2"
  shift 2
  cmake -B "$build_dir" -S . -DRODB_SANITIZE="$sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" -j "$(nproc)" "$@"
}

run_fuzz() {
  local build_dir="$1" label="$2"
  echo "=== $label: rodb_fuzz --iterations=$FUZZ_ITERATIONS --seed=1 ==="
  if ! "$build_dir/tools/rodb_fuzz" --iterations="$FUZZ_ITERATIONS" --seed=1; then
    status=1
  fi
  echo "=== $label: rodb_fuzz --ingest --iterations=$FUZZ_ITERATIONS --seed=1 ==="
  if ! "$build_dir/tools/rodb_fuzz" --ingest \
       --iterations="$FUZZ_ITERATIONS" --seed=1; then
    status=1
  fi
}

run_asan_ubsan() {
  local build_dir="build-asan"
  configure_and_build "$build_dir" "address,undefined"
  echo "=== ASan+UBSan: ctest ==="
  if ! (cd "$build_dir" && ctest --output-on-failure -j "$(nproc)"); then
    status=1
  fi
  run_fuzz "$build_dir" "ASan+UBSan"
}

run_tsan() {
  local build_dir="build-tsan"
  local targets=()
  for t in "${TSAN_TESTS[@]}"; do targets+=(--target "$t"); done
  configure_and_build "$build_dir" "thread" "${targets[@]}" --target rodb_fuzz
  for t in "${TSAN_TESTS[@]}"; do
    local bin="$build_dir/tests/$t"
    [ -x "$bin" ] || bin="$build_dir/tests/fuzz/$t"
    echo "=== TSan: $t ==="
    if ! "$bin"; then
      status=1
    fi
  done
  run_fuzz "$build_dir" "TSan"
}

case "$MODE" in
  asan-ubsan) run_asan_ubsan ;;
  tsan) run_tsan ;;
  all)
    run_asan_ubsan
    run_tsan
    ;;
  *)
    echo "usage: $0 [asan-ubsan|tsan|all] [fuzz-iterations]" >&2
    exit 2
    ;;
esac

if [ "$status" -eq 0 ]; then
  echo "Sanitized run clean."
else
  echo "Sanitized run FAILED." >&2
fi
exit "$status"
