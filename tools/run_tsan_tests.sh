#!/usr/bin/env bash
# Builds the parallel-execution tests under ThreadSanitizer and runs
# them. Usage: tools/run_tsan_tests.sh [build-dir]
#
# The RODB_SANITIZE cache option (top-level CMakeLists.txt) applies the
# sanitizer to every target; only the tests that actually exercise
# cross-thread code are built and run here to keep the cycle short.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

TESTS=(parallel_executor_test scanner_equivalence_test)

cmake -B "$BUILD_DIR" -S . -DRODB_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

status=0
for t in "${TESTS[@]}"; do
  echo "=== TSan: $t ==="
  if ! "$BUILD_DIR/tests/$t"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "TSan run clean."
else
  echo "TSan run FAILED." >&2
fi
exit "$status"
