#!/usr/bin/env bash
# Back-compat shim: the TSan run now lives in run_sanitized_tests.sh,
# which also covers ASan+UBSan and the differential fuzzer.
exec "$(dirname "$0")/run_sanitized_tests.sh" tsan
