// rodb_server: serve a rodb database directory over the length-prefixed
// query protocol (src/server/protocol.h).
//
//   rodb_server <dir> [--host=ADDR] [--port=N] [--cache-mb=N]
//               [--no-scan-sharing] [--shared-block-tuples=N]
//               [--max-shared=N] [--max-exclusive=N]
//
// Prints "listening on HOST:PORT" once ready (port 0 = ephemeral, the
// chosen port is in the message) and serves until signalled. SIGTERM
// drains gracefully: the listener closes, in-flight requests get up to
// --drain-timeout-ms to finish (then are shed with Unavailable), active
// ingest segments are frozen behind a final synced manifest write, and
// only then do the threads join. SIGINT stops abruptly (in-flight
// queries fail with Cancelled). Both paths print the metrics snapshot.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "server/server.h"

using namespace rodb;  // NOLINT

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_drain = 0;

void HandleStop(int) { g_stop = 1; }
void HandleDrain(int) { g_drain = 1; }

bool ParseIntFlag(const char* arg, const char* flag, int* out) {
  const size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0) return false;
  *out = std::atoi(arg + n);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: rodb_server <dir> [--host=ADDR] [--port=N] "
                 "[--cache-mb=N]\n"
                 "                   [--no-scan-sharing] "
                 "[--shared-block-tuples=N]\n"
                 "                   [--max-shared=N] [--max-exclusive=N]\n"
                 "                   [--drain-timeout-ms=N] "
                 "[--idle-timeout-ms=N]\n");
    return 2;
  }
  ServerOptions options;
  int cache_mb = 0;
  int shared_block_tuples = 0;
  int max_shared = 0;
  int max_exclusive = 0;
  for (int i = 2; i < argc; ++i) {
    if (ParseIntFlag(argv[i], "--port=", &options.port) ||
        ParseIntFlag(argv[i], "--drain-timeout-ms=",
                     &options.drain_timeout_ms) ||
        ParseIntFlag(argv[i], "--idle-timeout-ms=",
                     &options.idle_timeout_ms) ||
        ParseIntFlag(argv[i], "--cache-mb=", &cache_mb) ||
        ParseIntFlag(argv[i], "--shared-block-tuples=",
                     &shared_block_tuples) ||
        ParseIntFlag(argv[i], "--max-shared=", &max_shared) ||
        ParseIntFlag(argv[i], "--max-exclusive=", &max_exclusive)) {
      continue;
    }
    if (std::strncmp(argv[i], "--host=", 7) == 0) {
      options.host = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--no-scan-sharing") == 0) {
      options.engine.scan_sharing = false;
    } else {
      std::fprintf(stderr, "rodb_server: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (cache_mb > 0) {
    options.engine.cache_bytes = static_cast<uint64_t>(cache_mb) << 20;
  }
  if (shared_block_tuples > 0) {
    options.engine.shared_block_tuples =
        static_cast<uint32_t>(shared_block_tuples);
  }
  if (max_shared > 0) {
    options.engine.shared.max_concurrent = max_shared;
    options.engine.shared.max_queue = max_shared;
  }
  if (max_exclusive > 0) options.engine.exclusive.max_concurrent = max_exclusive;

  QueryServer server(argv[1], options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "rodb_server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%d\n", options.host.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleDrain);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0 && g_drain == 0) {
    // Sleep until any signal arrives; the handlers above set the flag.
    sigsuspend(&empty);
  }
  int rc = 0;
  if (g_drain != 0 && g_stop == 0) {
    std::printf("draining (timeout %d ms)\n", options.drain_timeout_ms);
    std::fflush(stdout);
    const Status drained = server.Drain();
    if (!drained.ok()) {
      std::fprintf(stderr, "rodb_server: drain flush: %s\n",
                   drained.ToString().c_str());
      rc = 1;
    }
  } else {
    server.Stop();
  }
  std::printf("%s", obs::MetricsRegistry::Default().ExportText().c_str());
  return rc;
}
