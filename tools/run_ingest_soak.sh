#!/usr/bin/env bash
# Bounded TSan soak of the continuous-ingest path.
#
# Builds bench/ingest_soak with ThreadSanitizer and runs it: one writer
# streams kIngest batches (periodic freezes + background-merge
# triggers) while N closed-loop socket clients run snapshot queries
# against the same table. Connection handler threads race
# QueryEngine::Ingest against Execute, the freeze seal/persist path
# races Acquire(), and the background merge publishes generations under
# live snapshots -- any data race fails the run, as does any client
# error, a snapshot moving backwards, or a final drain that does not
# see every acknowledged tuple. `timeout` bounds the wall clock so a
# wedged merge or connection fails instead of idling.
#
# Usage: tools/run_ingest_soak.sh [duration-ms] [clients] [batch]
#   duration-ms   soak length (default 2000)
#   clients       query clients alongside the writer (default 16)
#   batch         tuples per ingest batch (default 500)
set -euo pipefail

cd "$(dirname "$0")/.."
DURATION_MS="${1:-2000}"
CLIENTS="${2:-16}"
BATCH="${3:-500}"
BUILD_DIR=build-tsan

cmake -B "$BUILD_DIR" -S . -DRODB_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target ingest_soak

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "=== TSan ingest soak: ${DURATION_MS} ms, 1 writer +" \
     "${CLIENTS} query clients, batch ${BATCH} ==="
RODB_BENCH_DIR="$workdir" \
  timeout 600 "$BUILD_DIR/bench/ingest_soak" \
  --duration-ms="$DURATION_MS" --clients="$CLIENTS" --batch="$BATCH" \
  | tee "$workdir/ingest_soak.json"

# The binary exits nonzero on any error/violation; double-check the
# JSON says real work happened on both sides of the race.
python3 - "$workdir/ingest_soak.json" <<'EOF'
import json, sys
points = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert points, "soak produced no output"
for p in points:
    assert p["batches"] > 0, f"writer made no progress: {p}"
    assert p["queries"] > 0, f"no snapshot queries completed: {p}"
    assert p["errors"] == 0, f"client errors under soak: {p}"
    assert p["monotonicity_violations"] == 0, f"snapshot went backwards: {p}"
    assert p["drain_ok"], f"drain lost acknowledged tuples: {p}"
print(f"soak ok: {sum(p['batches'] for p in points)} batches, "
      f"{sum(p['queries'] for p in points)} queries, 0 errors")
EOF
echo "Ingest soak clean."
