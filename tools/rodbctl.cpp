// rodbctl: command-line inspection of a rodb database directory.
//
//   rodbctl tables <dir>
//       list every table in the catalog with layout, cardinality, bytes
//   rodbctl describe <dir> <table>
//       schema, compression specs, per-file page counts
//   rodbctl verify <dir> <table>
//       re-read every page of every file with checksum verification
//   rodbctl scan <dir> <table> [limit [attr op value]] [--trace]
//       print tuples (optionally filtered by one predicate); `op` is one
//       of = != < <= > >=; --trace drains the whole scan and prints the
//       span tree plus the predicted-vs-measured model comparison.
//       Predicated scans consult the table's zone-map synopsis and skip
//       pages proven predicate-free before any I/O; --no-prune forces
//       the full scan (output is identical either way).
//       --deadline-ms / --max-retries / --mem-budget-mb run the scan
//       under a QueryContext: it stops with DeadlineExceeded past the
//       deadline, retries transient I/O errors with bounded backoff,
//       and fails with ResourceExhausted past the memory budget (the
//       scan's post-prune working set is reserved up front via the
//       admission controller).
//   rodbctl advise <dir> <table>
//       run the compression advisor over a sample of the stored data

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "advisor/compression_advisor.h"
#include "common/bytes.h"
#include "common/file_util.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "engine/admission.h"
#include "engine/executor.h"
#include "engine/plan_builder.h"
#include "engine/query_context.h"
#include "engine/zone_pruner.h"
#include "io/block_cache.h"
#include "io/file_backend.h"
#include "kernels/scan_kernels.h"
#include "obs/model_comparison.h"
#include "obs/scan_physics.h"
#include "obs/span.h"
#include "storage/catalog.h"
#include "storage/table_files.h"
#include "wos/merge.h"

using namespace rodb;  // NOLINT

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "rodbctl: %s\n", status.ToString().c_str());
  return 1;
}

Status CmdTables(const std::string& dir) {
  std::printf("%-24s %-7s %12s %14s %6s\n", "table", "layout", "tuples",
              "bytes", "files");
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string file = entry.path().filename().string();
    if (file.size() > 5 && file.substr(file.size() - 5) == ".meta") {
      names.push_back(file.substr(0, file.size() - 5));
    }
  }
  if (ec) return Status::IoError("cannot list " + dir);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    RODB_ASSIGN_OR_RETURN(TableMeta meta, Catalog::LoadTableMeta(dir, name));
    std::printf("%-24s %-7s %12llu %14llu %6zu\n", meta.name.c_str(),
                std::string(LayoutName(meta.layout)).c_str(),
                static_cast<unsigned long long>(meta.num_tuples),
                static_cast<unsigned long long>(meta.TotalBytes()),
                meta.file_pages.size());
  }
  return Status::OK();
}

Status CmdDescribe(const std::string& dir, const std::string& name) {
  RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir, name));
  const TableMeta& meta = table.meta();
  std::printf("table      : %s\n", meta.name.c_str());
  std::printf("layout     : %s\n", std::string(LayoutName(meta.layout)).c_str());
  std::printf("tuples     : %llu\n",
              static_cast<unsigned long long>(meta.num_tuples));
  std::printf("page size  : %zu\n", meta.page_size);
  std::printf("raw width  : %d bytes/tuple\n",
              meta.schema.raw_tuple_width());
  std::printf("attributes :\n");
  for (size_t a = 0; a < meta.schema.num_attributes(); ++a) {
    const AttributeDesc& attr = meta.schema.attribute(a);
    char codec[64] = "-";
    if (attr.codec.kind != CompressionKind::kNone) {
      std::snprintf(codec, sizeof(codec), "%s:%d%s",
                    std::string(CompressionKindName(attr.codec.kind)).c_str(),
                    attr.codec.bits,
                    attr.codec.kind == CompressionKind::kDict &&
                            table.dict(a) != nullptr
                        ? (" (" + std::to_string(table.dict(a)->size()) +
                           " entries)")
                              .c_str()
                        : "");
    }
    char stats[64] = "";
    if (a < meta.column_stats.size() && meta.column_stats[a].valid) {
      const ColumnStats& s = meta.column_stats[a];
      std::snprintf(stats, sizeof(stats), "  [%d..%d] ndv%s%llu", s.min,
                    s.max, s.ndv > ColumnStats::kNdvCap ? ">" : "=",
                    static_cast<unsigned long long>(
                        std::min<uint64_t>(s.ndv, ColumnStats::kNdvCap)));
    }
    std::printf("  %2zu %-18s %-6s %3dB  %s%s\n", a + 1, attr.name.c_str(),
                std::string(AttrTypeName(attr.type)).c_str(), attr.width,
                codec, stats);
  }
  std::printf("files      :\n");
  const size_t n_files = meta.file_pages.size();
  for (size_t f = 0; f < n_files; ++f) {
    std::printf("  %-40s %8llu pages %12llu bytes\n",
                table.FilePath(n_files == 1 ? 0 : f).c_str(),
                static_cast<unsigned long long>(meta.file_pages[f]),
                static_cast<unsigned long long>(meta.file_bytes[f]));
  }
  return Status::OK();
}

Status CmdVerify(const std::string& dir, const std::string& name) {
  RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir, name));
  const TableMeta& meta = table.meta();
  uint64_t pages = 0, tuples = 0;
  const size_t n_files = meta.file_pages.size();
  for (size_t f = 0; f < n_files; ++f) {
    const std::string path = table.FilePath(n_files == 1 ? 0 : f);
    RODB_ASSIGN_OR_RETURN(std::string blob, ReadFileToString(path));
    if (blob.size() != meta.file_bytes[f]) {
      return Status::Corruption(path + ": size " +
                                std::to_string(blob.size()) +
                                " != catalog " +
                                std::to_string(meta.file_bytes[f]));
    }
    for (uint64_t p = 0; p < meta.file_pages[f]; ++p) {
      auto view = PageView::Parse(
          reinterpret_cast<const uint8_t*>(blob.data()) + p * meta.page_size,
          meta.page_size, /*verify_checksum=*/true);
      if (!view.ok()) {
        return Status::Corruption(path + " page " + std::to_string(p) + ": " +
                                  view.status().ToString());
      }
      ++pages;
      // Cardinality is counted once: the single file for row/PAX, the
      // first column file otherwise.
      if (f == 0) tuples += view->count();
    }
  }
  if (tuples != meta.num_tuples) {
    return Status::Corruption("tuple count " + std::to_string(tuples) +
                              " != catalog " +
                              std::to_string(meta.num_tuples));
  }
  // Full decode pass through every codec.
  RODB_ASSIGN_OR_RETURN(auto all, ReadAllTuples(table));
  if (all.size() != meta.num_tuples) {
    return Status::Corruption("decoded tuple count mismatch");
  }
  std::printf("%s: OK -- %llu pages verified, %llu tuples decoded\n",
              name.c_str(), static_cast<unsigned long long>(pages),
              static_cast<unsigned long long>(all.size()));
  return Status::OK();
}

void PrintValue(const AttributeDesc& attr, const uint8_t* value) {
  if (attr.type == AttrType::kInt32) {
    std::printf("%11d", LoadLE32s(value));
    return;
  }
  std::printf("\"%.*s\"", attr.width, reinterpret_cast<const char*>(value));
}

/// Per-scan resilience knobs (see docs/RESILIENCE.md). Zero = off.
struct ResilienceFlags {
  int deadline_ms = 0;
  int max_retries = 0;
  int mem_budget_mb = 0;
};

Status CmdScan(const std::string& dir, const std::string& name,
               uint64_t limit, const char* where_attr, const char* where_op,
               const char* where_value, int cache_mb, bool trace,
               bool no_prune, const ResilienceFlags& resilience) {
  RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir, name));
  const Schema& schema = table.schema();
  std::unique_ptr<BlockCache> cache;
  if (cache_mb > 0) {
    cache = std::make_unique<BlockCache>(static_cast<uint64_t>(cache_mb)
                                         << 20);
  }
  ScanSpec spec;
  spec.read.cache = cache.get();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    spec.projection.push_back(static_cast<int>(a));
  }
  spec.read.io_unit_bytes =
      RoundUp(table.meta().page_size * 32, table.meta().page_size);
  if (where_attr != nullptr) {
    const int attr = schema.FindAttribute(where_attr);
    if (attr < 0) {
      return Status::NotFound(std::string("no attribute named ") +
                              where_attr);
    }
    CompareOp op;
    const std::string ops = where_op;
    if (ops == "=") {
      op = CompareOp::kEq;
    } else if (ops == "!=") {
      op = CompareOp::kNe;
    } else if (ops == "<") {
      op = CompareOp::kLt;
    } else if (ops == "<=") {
      op = CompareOp::kLe;
    } else if (ops == ">") {
      op = CompareOp::kGt;
    } else if (ops == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator " + ops);
    }
    const AttributeDesc& desc = schema.attribute(static_cast<size_t>(attr));
    spec.predicates = {desc.type == AttrType::kInt32
                           ? Predicate::Int32(attr, op, std::atoi(where_value))
                           : Predicate::Text(attr, op, where_value)};
  }
  // Zone-map pruning defaults on for predicated scans; the synopsis layer
  // makes the pruned scan return exactly the unpruned tuples.
  spec.prune = !spec.predicates.empty() && !no_prune;
  FileBackend backend;
  ExecStats stats;
  obs::QueryTrace qtrace;
  if (trace) stats.set_trace(&qtrace);
  QueryContext ctx;
  if (resilience.deadline_ms > 0) {
    ctx.set_deadline(std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(resilience.deadline_ms));
  }
  if (resilience.max_retries > 0) {
    ctx.set_retry_policy(
        RetryPolicy::BoundedBackoff(resilience.max_retries));
  }
  // The memory budget is enforced through the admission controller: the
  // scan's estimated working set -- shrunk by the zone-map prune plan
  // when one applies -- is reserved up front, and the same budget backs
  // the query's runtime reservations.
  std::unique_ptr<AdmissionController> admission;
  AdmissionTicket ticket;
  if (resilience.mem_budget_mb > 0) {
    AdmissionOptions admission_options;
    admission_options.max_concurrent = 1;
    admission_options.memory_budget_bytes =
        static_cast<uint64_t>(resilience.mem_budget_mb) << 20;
    admission = std::make_unique<AdmissionController>(admission_options);
    ctx.set_memory_budget(admission->memory_budget());
    const uint64_t working_set = EstimateScanWorkingSet(table, spec);
    RODB_ASSIGN_OR_RETURN(ticket, admission->Admit(working_set, ctx));
  }
  stats.set_context(&ctx);
  RODB_ASSIGN_OR_RETURN(OperatorPtr plan,
                        PlanBuilder::Scan(&table, spec, &backend, &stats)
                            .Build());
  IntervalTimer timer;
  uint64_t printed = 0;
  {
    // Mirror Execute()'s span structure so the manual pull loop below
    // produces the same trace shape: open under the query span, then the
    // operator pulls (which time their own phases).
    obs::SpanTimer query_span(stats.trace(), obs::TracePhase::kQuery);
    {
      obs::SpanTimer open_span(stats.trace(), obs::TracePhase::kOpen);
      RODB_RETURN_IF_ERROR(plan->Open());
    }
    bool done = false;
    while (!done) {
      RODB_RETURN_IF_ERROR(stats.CheckAlive());
      RODB_ASSIGN_OR_RETURN(TupleBlock * block, plan->Next());
      if (block == nullptr) break;
      for (uint32_t i = 0; i < block->size() && printed < limit; ++i) {
        std::printf("[%6llu] ", static_cast<unsigned long long>(printed));
        for (size_t a = 0; a < schema.num_attributes(); ++a) {
          if (a > 0) std::printf("  ");
          PrintValue(schema.attribute(a), block->attr(i, a));
        }
        std::printf("\n");
        ++printed;
      }
      // Without --trace, stop pulling once the limit is shown; a traced
      // run drains the scan so the measured counters and the model both
      // cover the whole table.
      done = printed >= limit && !trace;
    }
    plan->Close();
    stats.FoldIo();
  }
  const MeasuredInterval wall = timer.Lap();
  std::printf("(%llu tuples shown)\n",
              static_cast<unsigned long long>(printed));
  if (cache != nullptr) {
    const BlockCache::Stats cs = cache->stats();
    std::printf("cache: %llu hits, %llu misses (%.0f%% hit rate), "
                "%llu bytes from cache, %llu bytes from disk\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                cs.hit_rate() * 100,
                static_cast<unsigned long long>(
                    stats.counters().io_bytes_from_cache),
                static_cast<unsigned long long>(
                    stats.counters().io_bytes_read));
  }
  if (trace) {
    qtrace.FinalizeFromCounters(stats.counters());
    std::printf("\ntrace:\n%s", qtrace.ToText().c_str());
    const ExecCounters& cc = stats.counters();
    if (cc.kernel_batches > 0) {
      std::printf("vectorized: isa=%s batches=%llu values=%llu "
                  "mask_skipped=%llu\n",
                  std::string(kernels::ActiveKernelIsa()).c_str(),
                  static_cast<unsigned long long>(cc.kernel_batches),
                  static_cast<unsigned long long>(
                      cc.values_scanned_vectorized),
                  static_cast<unsigned long long>(cc.mask_skipped_values));
    }
    if (cc.prune_plans > 0 || cc.prune_declined > 0 ||
        cc.synopsis_corrupt > 0) {
      std::printf("pruning: plans=%llu declined=%llu pages_pruned=%llu "
                  "pages_retained=%llu zone_rejects=%llu "
                  "synopsis_corrupt=%llu\n",
                  static_cast<unsigned long long>(cc.prune_plans),
                  static_cast<unsigned long long>(cc.prune_declined),
                  static_cast<unsigned long long>(cc.pages_pruned),
                  static_cast<unsigned long long>(cc.pages_retained),
                  static_cast<unsigned long long>(cc.prune_zone_rejects),
                  static_cast<unsigned long long>(cc.synopsis_corrupt));
    }
    const PrunePlan prune_plan = BuildPrunePlan(table, spec);
    const auto physics = obs::PredictScanPhysics(
        table, spec, ScannerImpl::kAuto, obs::ScanPhysicsHints{},
        &prune_plan);
    if (physics.ok()) {
      const HardwareConfig hw = HardwareConfig::Paper2006();
      const ModeledTiming timing = ModelQueryTiming(
          stats.counters(), hw, spec.read.prefetch_depth,
          CacheAdjustedStreams(ScanStreams(table, spec), stats.counters()));
      const obs::ModelComparison cmp = obs::BuildModelComparison(
          *physics, stats.counters(), qtrace, timing, wall.wall_seconds, hw);
      std::printf("\nmodel vs measured:\n%s", cmp.ToText().c_str());
    } else {
      std::printf("\nmodel comparison unavailable: %s\n",
                  physics.status().ToString().c_str());
    }
  }
  return Status::OK();
}

Status CmdAdvise(const std::string& dir, const std::string& name) {
  RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir, name));
  RODB_ASSIGN_OR_RETURN(auto tuples, ReadAllTuples(table));
  constexpr size_t kSample = 20000;
  if (tuples.size() > kSample) tuples.resize(kSample);
  CompressionAdvisor advisor;
  RODB_ASSIGN_OR_RETURN(Schema advised,
                        advisor.AdviseSchema(table.schema(), tuples));
  std::printf("%-18s %-10s %-14s\n", "attribute", "current", "advised");
  for (size_t a = 0; a < advised.num_attributes(); ++a) {
    const CodecSpec current = table.schema().attribute(a).codec;
    const CodecSpec next = advised.attribute(a).codec;
    char cur_s[32], next_s[32];
    std::snprintf(cur_s, sizeof(cur_s), "%s:%d",
                  std::string(CompressionKindName(current.kind)).c_str(),
                  current.bits);
    std::snprintf(next_s, sizeof(next_s), "%s:%d",
                  std::string(CompressionKindName(next.kind)).c_str(),
                  next.bits);
    std::printf("%-18s %-10s %-14s\n",
                advised.attribute(a).name.c_str(), cur_s, next_s);
  }
  return Status::OK();
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rodbctl tables <dir>\n"
               "  rodbctl describe <dir> <table>\n"
               "  rodbctl verify <dir> <table>\n"
               "  rodbctl scan <dir> <table> [limit [attr op value]]"
               " [--cache-mb=N] [--trace]\n"
               "              [--no-prune] [--deadline-ms=N]"
               " [--max-retries=N] [--mem-budget-mb=N]\n"
               "  rodbctl advise <dir> <table>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const std::string dir = argv[2];
  if (cmd == "tables") {
    const Status s = CmdTables(dir);
    return s.ok() ? 0 : Fail(s);
  }
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string table = argv[3];
  if (cmd == "describe") {
    const Status s = CmdDescribe(dir, table);
    return s.ok() ? 0 : Fail(s);
  }
  if (cmd == "verify") {
    const Status s = CmdVerify(dir, table);
    return s.ok() ? 0 : Fail(s);
  }
  if (cmd == "advise") {
    const Status s = CmdAdvise(dir, table);
    return s.ok() ? 0 : Fail(s);
  }
  if (cmd == "scan") {
    // Split out --cache-mb=N and --trace (anywhere after <table>) from
    // the positional [limit [attr op value]] arguments.
    int cache_mb = 0;
    bool trace = false;
    bool no_prune = false;
    ResilienceFlags resilience;
    // Positive-integer --flag=N parser shared by the resilience knobs.
    const auto parse_int_flag = [](const char* arg, const char* flag,
                                   int* out) {
      const size_t n = std::strlen(flag);
      if (std::strncmp(arg, flag, n) != 0) return false;
      *out = std::atoi(arg + n);
      if (*out <= 0) {
        std::fprintf(stderr, "rodbctl: bad %.*s value: %s\n",
                     static_cast<int>(n - 1), flag, arg + n);
        std::exit(2);
      }
      return true;
    };
    std::vector<const char*> pos;
    for (int i = 4; i < argc; ++i) {
      if (parse_int_flag(argv[i], "--cache-mb=", &cache_mb) ||
          parse_int_flag(argv[i], "--deadline-ms=",
                         &resilience.deadline_ms) ||
          parse_int_flag(argv[i], "--max-retries=",
                         &resilience.max_retries) ||
          parse_int_flag(argv[i], "--mem-budget-mb=",
                         &resilience.mem_budget_mb)) {
        continue;
      }
      if (std::strcmp(argv[i], "--trace") == 0) {
        trace = true;
      } else if (std::strcmp(argv[i], "--no-prune") == 0) {
        no_prune = true;
      } else {
        pos.push_back(argv[i]);
      }
    }
    const uint64_t limit =
        !pos.empty() ? static_cast<uint64_t>(std::atoll(pos[0])) : 20;
    const char* attr = pos.size() > 3 ? pos[1] : nullptr;
    const char* op = pos.size() > 3 ? pos[2] : nullptr;
    const char* value = pos.size() > 3 ? pos[3] : nullptr;
    const Status s = CmdScan(dir, table, limit, attr, op, value, cache_mb,
                             trace, no_prune, resilience);
    return s.ok() ? 0 : Fail(s);
  }
  Usage();
  return 2;
}
