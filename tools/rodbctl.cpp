// rodbctl: command-line inspection of a rodb database directory.
//
//   rodbctl tables <dir>
//       list every table in the catalog with layout, cardinality, bytes
//   rodbctl describe <dir> <table>
//       schema, compression specs, per-file page counts
//   rodbctl verify <dir> <table>
//       re-read every page of every file with checksum verification
//   rodbctl scan <dir> <table> [limit [attr op value]] [--trace]
//       print tuples (optionally filtered by one predicate); `op` is one
//       of = != < <= > >=; --trace prints the span tree plus the
//       predicted-vs-measured model comparison. The scan goes through
//       Database::Execute (the same QueryRequest facade the server
//       runs): zone-map pruning, deadlines, retries and the memory
//       budget all map onto request/engine options. --no-prune forces
//       the full scan (output is identical either way).
//   rodbctl query --connect HOST:PORT <table> [limit [attr op value]]
//       run one query against a running rodb_server over the socket
//       protocol. `attr` is a zero-based attribute index (the client
//       has no schema); an integer value makes an int32 predicate,
//       anything else a text predicate. --shared / --exclusive pin the
//       execution mode (default auto = join the circulating scan).
//   rodbctl advise <dir> <table>
//       run the compression advisor over a sample of the stored data
//   rodbctl ingest <dir> <table> [csv] --schema=SPEC [--batch=N] [--rate=N]
//   rodbctl ingest --connect HOST:PORT <table> [csv] --schema=SPEC ...
//       stream CSV rows (file, or stdin when omitted/"-") into a
//       continuous-ingest table, batched and optionally rate-limited,
//       either through the embedded engine or against a running
//       rodb_server over kIngest frames. SPEC is comma-separated
//       name:int32 / name:textN attributes; --freeze-every=N freezes
//       after every Nth batch, --merge triggers a background merge with
//       the final batch.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "advisor/compression_advisor.h"
#include "common/bytes.h"
#include "common/file_util.h"
#include "common/macros.h"
#include "engine/executor.h"
#include "engine/zone_pruner.h"
#include "io/block_cache.h"
#include "kernels/scan_kernels.h"
#include "obs/model_comparison.h"
#include "obs/scan_physics.h"
#include "obs/span.h"
#include "server/client.h"
#include "server/query_engine.h"
#include "storage/catalog.h"
#include "storage/database.h"
#include "storage/table_files.h"
#include "wos/ingest_store.h"
#include "wos/manifest.h"
#include "wos/merge.h"

using namespace rodb;  // NOLINT

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "rodbctl: %s\n", status.ToString().c_str());
  return 1;
}

Status CmdTables(const std::string& dir) {
  std::printf("%-24s %-7s %12s %14s %6s\n", "table", "layout", "tuples",
              "bytes", "files");
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string file = entry.path().filename().string();
    if (file.size() > 5 && file.substr(file.size() - 5) == ".meta") {
      names.push_back(file.substr(0, file.size() - 5));
    }
  }
  if (ec) return Status::IoError("cannot list " + dir);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    RODB_ASSIGN_OR_RETURN(TableMeta meta, Catalog::LoadTableMeta(dir, name));
    std::printf("%-24s %-7s %12llu %14llu %6zu\n", meta.name.c_str(),
                std::string(LayoutName(meta.layout)).c_str(),
                static_cast<unsigned long long>(meta.num_tuples),
                static_cast<unsigned long long>(meta.TotalBytes()),
                meta.file_pages.size());
  }
  return Status::OK();
}

Status CmdDescribe(const std::string& dir, const std::string& name) {
  RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir, name));
  const TableMeta& meta = table.meta();
  std::printf("table      : %s\n", meta.name.c_str());
  std::printf("layout     : %s\n", std::string(LayoutName(meta.layout)).c_str());
  std::printf("tuples     : %llu\n",
              static_cast<unsigned long long>(meta.num_tuples));
  std::printf("page size  : %zu\n", meta.page_size);
  std::printf("raw width  : %d bytes/tuple\n",
              meta.schema.raw_tuple_width());
  std::printf("attributes :\n");
  for (size_t a = 0; a < meta.schema.num_attributes(); ++a) {
    const AttributeDesc& attr = meta.schema.attribute(a);
    char codec[64] = "-";
    if (attr.codec.kind != CompressionKind::kNone) {
      std::snprintf(codec, sizeof(codec), "%s:%d%s",
                    std::string(CompressionKindName(attr.codec.kind)).c_str(),
                    attr.codec.bits,
                    attr.codec.kind == CompressionKind::kDict &&
                            table.dict(a) != nullptr
                        ? (" (" + std::to_string(table.dict(a)->size()) +
                           " entries)")
                              .c_str()
                        : "");
    }
    char stats[64] = "";
    if (a < meta.column_stats.size() && meta.column_stats[a].valid) {
      const ColumnStats& s = meta.column_stats[a];
      std::snprintf(stats, sizeof(stats), "  [%d..%d] ndv%s%llu", s.min,
                    s.max, s.ndv > ColumnStats::kNdvCap ? ">" : "=",
                    static_cast<unsigned long long>(
                        std::min<uint64_t>(s.ndv, ColumnStats::kNdvCap)));
    }
    std::printf("  %2zu %-18s %-6s %3dB  %s%s\n", a + 1, attr.name.c_str(),
                std::string(AttrTypeName(attr.type)).c_str(), attr.width,
                codec, stats);
  }
  std::printf("files      :\n");
  const size_t n_files = meta.file_pages.size();
  for (size_t f = 0; f < n_files; ++f) {
    std::printf("  %-40s %8llu pages %12llu bytes\n",
                table.FilePath(n_files == 1 ? 0 : f).c_str(),
                static_cast<unsigned long long>(meta.file_pages[f]),
                static_cast<unsigned long long>(meta.file_bytes[f]));
  }
  return Status::OK();
}

Status CmdVerify(const std::string& dir, const std::string& name) {
  RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir, name));
  const TableMeta& meta = table.meta();
  uint64_t pages = 0, tuples = 0;
  const size_t n_files = meta.file_pages.size();
  for (size_t f = 0; f < n_files; ++f) {
    const std::string path = table.FilePath(n_files == 1 ? 0 : f);
    RODB_ASSIGN_OR_RETURN(std::string blob, ReadFileToString(path));
    if (blob.size() != meta.file_bytes[f]) {
      return Status::Corruption(path + ": size " +
                                std::to_string(blob.size()) +
                                " != catalog " +
                                std::to_string(meta.file_bytes[f]));
    }
    for (uint64_t p = 0; p < meta.file_pages[f]; ++p) {
      auto view = PageView::Parse(
          reinterpret_cast<const uint8_t*>(blob.data()) + p * meta.page_size,
          meta.page_size, /*verify_checksum=*/true);
      if (!view.ok()) {
        return Status::Corruption(path + " page " + std::to_string(p) + ": " +
                                  view.status().ToString());
      }
      ++pages;
      // Cardinality is counted once: the single file for row/PAX, the
      // first column file otherwise.
      if (f == 0) tuples += view->count();
    }
  }
  if (tuples != meta.num_tuples) {
    return Status::Corruption("tuple count " + std::to_string(tuples) +
                              " != catalog " +
                              std::to_string(meta.num_tuples));
  }
  // Full decode pass through every codec.
  RODB_ASSIGN_OR_RETURN(auto all, ReadAllTuples(table));
  if (all.size() != meta.num_tuples) {
    return Status::Corruption("decoded tuple count mismatch");
  }
  std::printf("%s: OK -- %llu pages verified, %llu tuples decoded\n",
              name.c_str(), static_cast<unsigned long long>(pages),
              static_cast<unsigned long long>(all.size()));
  return Status::OK();
}

void PrintValue(const AttributeDesc& attr, const uint8_t* value) {
  if (attr.type == AttrType::kInt32) {
    std::printf("%11d", LoadLE32s(value));
    return;
  }
  std::printf("\"%.*s\"", attr.width, reinterpret_cast<const char*>(value));
}

/// Per-scan resilience knobs (see docs/RESILIENCE.md). Zero = off.
struct ResilienceFlags {
  int deadline_ms = 0;
  int max_retries = 0;
  int mem_budget_mb = 0;
};

/// Parses the `attr op value` positional triple into one predicate,
/// resolving `attr` against `schema`.
Result<Predicate> ParsePredicate(const Schema& schema, const char* where_attr,
                                 const char* where_op,
                                 const char* where_value) {
  const int attr = schema.FindAttribute(where_attr);
  if (attr < 0) {
    return Status::NotFound(std::string("no attribute named ") + where_attr);
  }
  CompareOp op;
  const std::string ops = where_op;
  if (ops == "=") {
    op = CompareOp::kEq;
  } else if (ops == "!=") {
    op = CompareOp::kNe;
  } else if (ops == "<") {
    op = CompareOp::kLt;
  } else if (ops == "<=") {
    op = CompareOp::kLe;
  } else if (ops == ">") {
    op = CompareOp::kGt;
  } else if (ops == ">=") {
    op = CompareOp::kGe;
  } else {
    return Status::InvalidArgument("unknown operator " + ops);
  }
  const AttributeDesc& desc = schema.attribute(static_cast<size_t>(attr));
  return desc.type == AttrType::kInt32
             ? Predicate::Int32(attr, op, std::atoi(where_value))
             : Predicate::Text(attr, op, where_value);
}

Status CmdScan(const std::string& dir, const std::string& name,
               uint64_t limit, const char* where_attr, const char* where_op,
               const char* where_value, int cache_mb, bool trace,
               bool no_prune, const ResilienceFlags& resilience) {
  RODB_ASSIGN_OR_RETURN(Database db, Database::Open(dir));
  // An ingest table is a manifest, not a catalog entry; recover its
  // schema from a persisted part (the manifest stores names only) and
  // attach the lifecycle so Execute reads an epoch-pinned snapshot.
  const bool is_ingest = IngestManifestExists(dir, name);
  TableMeta meta;
  if (is_ingest) {
    RODB_ASSIGN_OR_RETURN(IngestManifest manifest,
                          LoadIngestManifest(dir, name));
    const std::string source = !manifest.ros_table.empty()
                                   ? manifest.ros_table
                                   : (!manifest.frozen.empty()
                                          ? manifest.frozen.front()
                                          : "");
    if (source.empty()) {
      return Status::NotFound("ingest table '" + name +
                              "' has no persisted segments yet");
    }
    RODB_ASSIGN_OR_RETURN(meta, db.Meta(source));
  } else {
    RODB_ASSIGN_OR_RETURN(meta, db.Meta(name));
  }
  const Schema& schema = meta.schema;

  EngineOptions engine_options;
  if (cache_mb > 0) {
    engine_options.cache_bytes = static_cast<uint64_t>(cache_mb) << 20;
  }
  if (resilience.mem_budget_mb > 0) {
    engine_options.exclusive.memory_budget_bytes =
        static_cast<uint64_t>(resilience.mem_budget_mb) << 20;
  }
  db.ConfigureEngine(engine_options);
  if (is_ingest) {
    IngestOptions ingest_options;
    ingest_options.layout = meta.layout;
    RODB_RETURN_IF_ERROR(db.EnsureIngest(name, schema, ingest_options));
  }

  QueryRequest request;
  request.table = name;
  request.read.io_unit_bytes =
      RoundUp(meta.page_size * 32, meta.page_size);
  if (where_attr != nullptr) {
    RODB_ASSIGN_OR_RETURN(
        Predicate pred,
        ParsePredicate(schema, where_attr, where_op, where_value));
    request.predicates.push_back(std::move(pred));
  }
  // Zone-map pruning defaults on for predicated scans; the synopsis layer
  // makes the pruned scan return exactly the unpruned tuples.
  request.prune = !no_prune;
  // Print in table order; also keeps the traced run exclusive so the
  // span tree covers a private scan.
  request.ordered = true;
  request.collect_rows = true;
  request.limit_rows = limit;
  if (resilience.deadline_ms > 0) {
    request.timeout = std::chrono::milliseconds(resilience.deadline_ms);
  }
  request.max_retries = resilience.max_retries;
  obs::QueryTrace qtrace;
  if (trace) request.trace = &qtrace;

  RODB_ASSIGN_OR_RETURN(QueryResult result, db.Execute(request));

  for (uint64_t i = 0; i < result.rows_collected; ++i) {
    const uint8_t* tuple = result.collected_tuple(i);
    std::printf("[%6llu] ", static_cast<unsigned long long>(i));
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (a > 0) std::printf("  ");
      PrintValue(schema.attribute(a), tuple + result.row_layout.offsets[a]);
    }
    std::printf("\n");
  }
  std::printf("(%llu tuples shown of %llu qualifying)\n",
              static_cast<unsigned long long>(result.rows_collected),
              static_cast<unsigned long long>(result.rows));
  if (db.engine()->cache() != nullptr) {
    const BlockCache::Stats cs = db.engine()->cache()->stats();
    std::printf("cache: %llu hits, %llu misses (%.0f%% hit rate), "
                "%llu bytes from cache, %llu bytes from disk\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                cs.hit_rate() * 100,
                static_cast<unsigned long long>(
                    result.counters.io_bytes_from_cache),
                static_cast<unsigned long long>(
                    result.counters.io_bytes_read));
  }
  if (trace) {
    std::printf("\ntrace:\n%s", qtrace.ToText().c_str());
    const ExecCounters& cc = result.counters;
    if (cc.kernel_batches > 0) {
      std::printf("vectorized: isa=%s batches=%llu values=%llu "
                  "mask_skipped=%llu\n",
                  std::string(kernels::ActiveKernelIsa()).c_str(),
                  static_cast<unsigned long long>(cc.kernel_batches),
                  static_cast<unsigned long long>(
                      cc.values_scanned_vectorized),
                  static_cast<unsigned long long>(cc.mask_skipped_values));
    }
    if (cc.prune_plans > 0 || cc.prune_declined > 0 ||
        cc.synopsis_corrupt > 0) {
      std::printf("pruning: plans=%llu declined=%llu pages_pruned=%llu "
                  "pages_retained=%llu zone_rejects=%llu "
                  "synopsis_corrupt=%llu\n",
                  static_cast<unsigned long long>(cc.prune_plans),
                  static_cast<unsigned long long>(cc.prune_declined),
                  static_cast<unsigned long long>(cc.pages_pruned),
                  static_cast<unsigned long long>(cc.pages_retained),
                  static_cast<unsigned long long>(cc.prune_zone_rejects),
                  static_cast<unsigned long long>(cc.synopsis_corrupt));
    }
    if (is_ingest) {
      // The physics model wants one physical table; a snapshot spans
      // ROS + segments + the in-memory tail.
      std::printf("\nmodel comparison unavailable for ingest tables\n");
      return Status::OK();
    }
    // The model comparison predicts from the physical table + spec; the
    // handle here is display-only (the engine keeps its own).
    RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir, name));
    ScanSpec spec;
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      spec.projection.push_back(static_cast<int>(a));
    }
    spec.predicates = request.predicates;
    spec.read = request.read;
    spec.prune = request.prune && !request.predicates.empty();
    const PrunePlan prune_plan = BuildPrunePlan(table, spec);
    const auto physics = obs::PredictScanPhysics(
        table, spec, ScannerImpl::kAuto, obs::ScanPhysicsHints{},
        &prune_plan);
    if (physics.ok()) {
      const HardwareConfig hw = HardwareConfig::Paper2006();
      const ModeledTiming timing = ModelQueryTiming(
          result.counters, hw, spec.read.prefetch_depth,
          CacheAdjustedStreams(ScanStreams(table, spec), result.counters));
      const obs::ModelComparison cmp = obs::BuildModelComparison(
          *physics, result.counters, qtrace, timing, result.wall_seconds,
          hw);
      std::printf("\nmodel vs measured:\n%s", cmp.ToText().c_str());
    } else {
      std::printf("\nmodel comparison unavailable: %s\n",
                  physics.status().ToString().c_str());
    }
  }
  return Status::OK();
}

/// `rodbctl query --connect HOST:PORT ...`: one query over the socket
/// protocol against a running rodb_server.
Status CmdQuery(const std::string& endpoint, const std::string& table,
                uint64_t limit, const char* where_attr, const char* where_op,
                const char* where_value, QueryMode mode) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("--connect expects HOST:PORT");
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in --connect");
  }

  QueryRequest request;
  request.table = table;
  request.mode = mode;
  request.collect_rows = limit > 0;
  request.limit_rows = limit;
  if (where_attr != nullptr) {
    // No schema on this side of the socket: `attr` is a zero-based
    // index, and the value's shape picks the predicate type.
    char* end = nullptr;
    const long attr = std::strtol(where_attr, &end, 10);
    if (end == where_attr || *end != '\0' || attr < 0) {
      return Status::InvalidArgument(
          "query predicates use a zero-based attribute index");
    }
    CompareOp op;
    const std::string ops = where_op;
    if (ops == "=") {
      op = CompareOp::kEq;
    } else if (ops == "!=") {
      op = CompareOp::kNe;
    } else if (ops == "<") {
      op = CompareOp::kLt;
    } else if (ops == "<=") {
      op = CompareOp::kLe;
    } else if (ops == ">") {
      op = CompareOp::kGt;
    } else if (ops == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator " + ops);
    }
    const long value = std::strtol(where_value, &end, 10);
    request.predicates.push_back(
        end != where_value && *end == '\0'
            ? Predicate::Int32(static_cast<int>(attr), op,
                               static_cast<int32_t>(value))
            : Predicate::Text(static_cast<int>(attr), op, where_value));
  }

  QueryClient client;
  RODB_RETURN_IF_ERROR(client.Connect(host, port));
  RODB_ASSIGN_OR_RETURN(QueryResult result, client.Execute(request));

  for (uint64_t i = 0; i < result.rows_collected; ++i) {
    const uint8_t* tuple = result.collected_tuple(i);
    std::printf("[%6llu] ", static_cast<unsigned long long>(i));
    for (size_t a = 0; a < result.row_layout.num_attrs(); ++a) {
      if (a > 0) std::printf("  ");
      const uint8_t* value = tuple + result.row_layout.offsets[a];
      // Width 4 prints as int32, anything else as text -- the wire
      // carries no schema.
      if (result.row_layout.widths[a] == 4) {
        std::printf("%11d", LoadLE32s(value));
      } else {
        std::printf("\"%.*s\"", result.row_layout.widths[a],
                    reinterpret_cast<const char*>(value));
      }
    }
    std::printf("\n");
  }
  std::printf("%llu rows, checksum %016llx, digest %016llx\n",
              static_cast<unsigned long long>(result.rows),
              static_cast<unsigned long long>(result.output_checksum),
              static_cast<unsigned long long>(result.row_digest));
  std::printf("%s, wall %.3f ms\n",
              result.shared
                  ? ("shared scan (attached at tuple " +
                     std::to_string(result.attach_position) + ", lap " +
                     std::to_string(result.attach_lap) + ")")
                        .c_str()
                  : "exclusive scan",
              result.wall_seconds * 1e3);
  return Status::OK();
}

/// Parses "--schema=id:int32,name:text12" into a Schema.
Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<AttributeDesc> attrs;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(start, comma - start);
    start = comma + 1;
    if (field.empty()) continue;
    const size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("schema field needs name:type -- " +
                                     field);
    }
    const std::string name = field.substr(0, colon);
    const std::string type = field.substr(colon + 1);
    if (type == "int32") {
      attrs.push_back(AttributeDesc::Int32(name));
    } else if (type.rfind("text", 0) == 0) {
      const int width = std::atoi(type.c_str() + 4);
      if (width <= 0) {
        return Status::InvalidArgument("bad text width in " + field);
      }
      attrs.push_back(AttributeDesc::Text(name, width));
    } else {
      return Status::InvalidArgument("unknown attribute type " + type +
                                     " (int32 or textN)");
    }
  }
  return Schema::Make(std::move(attrs));
}

/// Encodes one CSV line as a raw tuple of `schema`. Fields are comma
/// separated, positional, unquoted; text is zero-padded/truncated to
/// the attribute width. Strict: the field count must match the schema
/// exactly and an int32 field must be a whole integer, so a malformed
/// row is reported by line and field instead of being half-parsed.
Status EncodeCsvTuple(const Schema& schema, const std::string& line,
                      uint64_t line_no, uint8_t* out) {
  const auto bad = [&](size_t field, const std::string& what) {
    return Status::InvalidArgument(
        "line " + std::to_string(line_no) + ", field " +
        std::to_string(field + 1) + ": " + what + " -- \"" + line + "\"");
  };
  size_t start = 0;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (start > line.size()) {
      return bad(a, "missing field (schema has " +
                        std::to_string(schema.num_attributes()) + ")");
    }
    size_t comma = line.find(',', start);
    if (comma == std::string::npos) comma = line.size();
    const AttributeDesc& attr = schema.attribute(a);
    uint8_t* dst = out + schema.attr_offset(a);
    if (attr.type == AttrType::kInt32) {
      char* end = nullptr;
      errno = 0;
      const long value = std::strtol(line.c_str() + start, &end, 10);
      if (end == line.c_str() + start) {
        return bad(a, "not an int32");
      }
      if (end != line.c_str() + comma) {
        return bad(a, "trailing garbage after int32");
      }
      if (errno == ERANGE || value < INT32_MIN || value > INT32_MAX) {
        return bad(a, "int32 out of range");
      }
      StoreLE32s(dst, static_cast<int32_t>(value));
    } else {
      const size_t len = std::min(comma - start,
                                  static_cast<size_t>(attr.width));
      std::memcpy(dst, line.data() + start, len);
      std::memset(dst + len, 0, static_cast<size_t>(attr.width) - len);
    }
    start = comma + 1;
  }
  if (start <= line.size()) {
    return bad(schema.num_attributes() - 1,
               "extra fields beyond the schema's " +
                   std::to_string(schema.num_attributes()));
  }
  return Status::OK();
}

/// Batch/rate/freeze knobs of `rodbctl ingest`.
struct IngestFlags {
  std::string schema_spec;
  uint64_t batch = 1024;
  uint64_t rate = 0;          ///< tuples/sec; 0 = unthrottled
  uint64_t freeze_every = 0;  ///< freeze after every Nth batch; 0 = never
  bool merge_at_end = false;
  int sort_attr = 0;
  Layout layout = Layout::kRow;
};

/// Streams CSV tuples from `in` through `sink` (the embedded engine or
/// a connected server -- both speak IngestRequest).
Status RunIngest(
    const std::string& table, const IngestFlags& flags, std::istream& in,
    const std::function<Result<IngestResult>(const IngestRequest&)>& sink) {
  if (flags.schema_spec.empty()) {
    return Status::InvalidArgument("ingest needs --schema=name:type,...");
  }
  RODB_ASSIGN_OR_RETURN(Schema schema, ParseSchemaSpec(flags.schema_spec));
  const size_t width = static_cast<size_t>(schema.raw_tuple_width());
  if (flags.sort_attr < 0 ||
      static_cast<size_t>(flags.sort_attr) >= schema.num_attributes() ||
      schema.attribute(static_cast<size_t>(flags.sort_attr)).type !=
          AttrType::kInt32) {
    return Status::InvalidArgument("--sort-attr must name an int32 attribute");
  }

  IngestRequest request;
  request.table = table;
  schema.AppendTo(&request.schema_text);  // attach on the first batch
  request.layout = flags.layout;
  request.sort_attr = flags.sort_attr;

  const auto start = std::chrono::steady_clock::now();
  uint64_t tuples = 0, batches = 0, line_no = 0;
  IngestResult last;
  bool done = false;
  std::string line;
  while (!done) {
    request.count = 0;
    request.data.clear();
    while (request.count < flags.batch) {
      if (!std::getline(in, line)) {
        done = true;
        break;
      }
      ++line_no;
      if (line.empty()) continue;
      request.data.resize(request.data.size() + width);
      RODB_RETURN_IF_ERROR(EncodeCsvTuple(
          schema, line, line_no, request.data.data() + request.count * width));
      ++request.count;
    }
    if (request.count == 0) break;
    ++batches;
    request.freeze =
        flags.freeze_every > 0 && batches % flags.freeze_every == 0;
    RODB_ASSIGN_OR_RETURN(last, sink(request));
    request.schema_text.clear();
    tuples += request.count;
    if (flags.rate > 0) {
      // Closed-loop throttle: sleep until the sent total matches the
      // target rate.
      const auto due = start + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(
                                       static_cast<double>(tuples) /
                                       static_cast<double>(flags.rate)));
      std::this_thread::sleep_until(due);
    }
  }
  if (flags.merge_at_end && batches > 0) {
    // A zero-count batch is a pure lifecycle nudge: nothing appends,
    // the merge flag starts the background fold.
    request.count = 0;
    request.data.clear();
    request.freeze = false;
    request.merge = true;
    RODB_ASSIGN_OR_RETURN(last, sink(request));
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("%llu tuples in %llu batches (%.0f tuples/s); "
              "table total %llu, epoch %llu, %llu frozen segments\n",
              static_cast<unsigned long long>(tuples),
              static_cast<unsigned long long>(batches),
              seconds > 0 ? static_cast<double>(tuples) / seconds : 0.0,
              static_cast<unsigned long long>(last.appended_total),
              static_cast<unsigned long long>(last.epoch),
              static_cast<unsigned long long>(last.frozen_segments));
  return Status::OK();
}

Status CmdAdvise(const std::string& dir, const std::string& name) {
  RODB_ASSIGN_OR_RETURN(OpenTable table, OpenTable::Open(dir, name));
  RODB_ASSIGN_OR_RETURN(auto tuples, ReadAllTuples(table));
  constexpr size_t kSample = 20000;
  if (tuples.size() > kSample) tuples.resize(kSample);
  CompressionAdvisor advisor;
  RODB_ASSIGN_OR_RETURN(Schema advised,
                        advisor.AdviseSchema(table.schema(), tuples));
  std::printf("%-18s %-10s %-14s\n", "attribute", "current", "advised");
  for (size_t a = 0; a < advised.num_attributes(); ++a) {
    const CodecSpec current = table.schema().attribute(a).codec;
    const CodecSpec next = advised.attribute(a).codec;
    char cur_s[32], next_s[32];
    std::snprintf(cur_s, sizeof(cur_s), "%s:%d",
                  std::string(CompressionKindName(current.kind)).c_str(),
                  current.bits);
    std::snprintf(next_s, sizeof(next_s), "%s:%d",
                  std::string(CompressionKindName(next.kind)).c_str(),
                  next.bits);
    std::printf("%-18s %-10s %-14s\n",
                advised.attribute(a).name.c_str(), cur_s, next_s);
  }
  return Status::OK();
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rodbctl tables <dir>\n"
               "  rodbctl describe <dir> <table>\n"
               "  rodbctl verify <dir> <table>\n"
               "  rodbctl scan <dir> <table> [limit [attr op value]]"
               " [--cache-mb=N] [--trace]\n"
               "              [--no-prune] [--deadline-ms=N]"
               " [--max-retries=N] [--mem-budget-mb=N]\n"
               "  rodbctl query --connect HOST:PORT <table>"
               " [limit [attr-index op value]]\n"
               "              [--shared|--exclusive]\n"
               "  rodbctl advise <dir> <table>\n"
               "  rodbctl ingest <dir> <table> [csv|-]"
               " --schema=name:int32,name:textN,...\n"
               "              [--batch=N] [--rate=TUPLES_PER_SEC]"
               " [--freeze-every=BATCHES]\n"
               "              [--merge] [--layout=row|column|pax]"
               " [--sort-attr=N]\n"
               "  rodbctl ingest --connect HOST:PORT <table> [csv|-]"
               " --schema=... [...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "query") {
    std::string endpoint;
    QueryMode mode = QueryMode::kAuto;
    std::vector<const char*> pos;
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--connect=", 10) == 0) {
        endpoint = argv[i] + 10;
      } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
        endpoint = argv[++i];
      } else if (std::strcmp(argv[i], "--shared") == 0) {
        mode = QueryMode::kShared;
      } else if (std::strcmp(argv[i], "--exclusive") == 0) {
        mode = QueryMode::kExclusive;
      } else {
        pos.push_back(argv[i]);
      }
    }
    if (endpoint.empty() || pos.empty()) {
      Usage();
      return 2;
    }
    const std::string table = pos[0];
    const uint64_t limit =
        pos.size() > 1 ? static_cast<uint64_t>(std::atoll(pos[1])) : 20;
    const char* attr = pos.size() > 4 ? pos[2] : nullptr;
    const char* op = pos.size() > 4 ? pos[3] : nullptr;
    const char* value = pos.size() > 4 ? pos[4] : nullptr;
    const Status s = CmdQuery(endpoint, table, limit, attr, op, value, mode);
    return s.ok() ? 0 : Fail(s);
  }
  if (cmd == "ingest") {
    std::string endpoint;
    IngestFlags flags;
    std::vector<const char*> pos;
    for (int i = 2; i < argc; ++i) {
      std::string value;
      if (std::strncmp(argv[i], "--connect=", 10) == 0) {
        endpoint = argv[i] + 10;
      } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
        endpoint = argv[++i];
      } else if (std::strncmp(argv[i], "--schema=", 9) == 0) {
        flags.schema_spec = argv[i] + 9;
      } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
        flags.batch = static_cast<uint64_t>(std::atoll(argv[i] + 8));
      } else if (std::strncmp(argv[i], "--rate=", 7) == 0) {
        flags.rate = static_cast<uint64_t>(std::atoll(argv[i] + 7));
      } else if (std::strncmp(argv[i], "--freeze-every=", 15) == 0) {
        flags.freeze_every = static_cast<uint64_t>(std::atoll(argv[i] + 15));
      } else if (std::strcmp(argv[i], "--merge") == 0) {
        flags.merge_at_end = true;
      } else if (std::strncmp(argv[i], "--sort-attr=", 12) == 0) {
        flags.sort_attr = std::atoi(argv[i] + 12);
      } else if (std::strncmp(argv[i], "--layout=", 9) == 0) {
        const std::string layout = argv[i] + 9;
        if (layout == "row") {
          flags.layout = Layout::kRow;
        } else if (layout == "column") {
          flags.layout = Layout::kColumn;
        } else if (layout == "pax") {
          flags.layout = Layout::kPax;
        } else {
          return Fail(Status::InvalidArgument("bad --layout " + layout));
        }
      } else {
        pos.push_back(argv[i]);
      }
    }
    if (flags.batch == 0) {
      return Fail(Status::InvalidArgument("--batch must be positive"));
    }
    // Embedded form: <dir> <table> [csv]. Remote: <table> [csv].
    const size_t min_pos = endpoint.empty() ? 2 : 1;
    if (pos.size() < min_pos || pos.size() > min_pos + 1) {
      Usage();
      return 2;
    }
    const std::string table = pos[min_pos - 1];
    const char* csv = pos.size() > min_pos ? pos[min_pos] : nullptr;
    std::ifstream file;
    if (csv != nullptr && std::strcmp(csv, "-") != 0) {
      file.open(csv);
      if (!file.is_open()) {
        return Fail(Status::IoError(std::string("cannot open ") + csv));
      }
    }
    std::istream& in = file.is_open() ? file : std::cin;

    Status s;
    if (endpoint.empty()) {
      const std::string ingest_dir = pos[0];
      std::error_code ec;
      std::filesystem::create_directories(ingest_dir, ec);
      auto db = Database::Open(ingest_dir);
      if (!db.ok()) return Fail(db.status());
      s = RunIngest(table, flags, in, [&](const IngestRequest& request) {
        return db->Ingest(request);
      });
      // An embedded --merge runs in the background; the engine teardown
      // below waits for it, so the generation is committed on exit.
      db->ConfigureEngine(EngineOptions());
    } else {
      const size_t colon = endpoint.rfind(':');
      const int port =
          colon == std::string::npos ? 0 : std::atoi(endpoint.c_str() + colon + 1);
      if (colon == std::string::npos || port <= 0 || port > 65535) {
        return Fail(Status::InvalidArgument("--connect expects HOST:PORT"));
      }
      QueryClient client;
      const Status connected =
          client.Connect(endpoint.substr(0, colon), port);
      if (!connected.ok()) return Fail(connected);
      s = RunIngest(table, flags, in, [&](const IngestRequest& request) {
        return client.Ingest(request);
      });
    }
    return s.ok() ? 0 : Fail(s);
  }
  const std::string dir = argv[2];
  if (cmd == "tables") {
    const Status s = CmdTables(dir);
    return s.ok() ? 0 : Fail(s);
  }
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string table = argv[3];
  if (cmd == "describe") {
    const Status s = CmdDescribe(dir, table);
    return s.ok() ? 0 : Fail(s);
  }
  if (cmd == "verify") {
    const Status s = CmdVerify(dir, table);
    return s.ok() ? 0 : Fail(s);
  }
  if (cmd == "advise") {
    const Status s = CmdAdvise(dir, table);
    return s.ok() ? 0 : Fail(s);
  }
  if (cmd == "scan") {
    // Split out --cache-mb=N and --trace (anywhere after <table>) from
    // the positional [limit [attr op value]] arguments.
    int cache_mb = 0;
    bool trace = false;
    bool no_prune = false;
    ResilienceFlags resilience;
    // Positive-integer --flag=N parser shared by the resilience knobs.
    const auto parse_int_flag = [](const char* arg, const char* flag,
                                   int* out) {
      const size_t n = std::strlen(flag);
      if (std::strncmp(arg, flag, n) != 0) return false;
      *out = std::atoi(arg + n);
      if (*out <= 0) {
        std::fprintf(stderr, "rodbctl: bad %.*s value: %s\n",
                     static_cast<int>(n - 1), flag, arg + n);
        std::exit(2);
      }
      return true;
    };
    std::vector<const char*> pos;
    for (int i = 4; i < argc; ++i) {
      if (parse_int_flag(argv[i], "--cache-mb=", &cache_mb) ||
          parse_int_flag(argv[i], "--deadline-ms=",
                         &resilience.deadline_ms) ||
          parse_int_flag(argv[i], "--max-retries=",
                         &resilience.max_retries) ||
          parse_int_flag(argv[i], "--mem-budget-mb=",
                         &resilience.mem_budget_mb)) {
        continue;
      }
      if (std::strcmp(argv[i], "--trace") == 0) {
        trace = true;
      } else if (std::strcmp(argv[i], "--no-prune") == 0) {
        no_prune = true;
      } else {
        pos.push_back(argv[i]);
      }
    }
    const uint64_t limit =
        !pos.empty() ? static_cast<uint64_t>(std::atoll(pos[0])) : 20;
    const char* attr = pos.size() > 3 ? pos[1] : nullptr;
    const char* op = pos.size() > 3 ? pos[2] : nullptr;
    const char* value = pos.size() > 3 ? pos[3] : nullptr;
    const Status s = CmdScan(dir, table, limit, attr, op, value, cache_mb,
                             trace, no_prune, resilience);
    return s.ok() ? 0 : Fail(s);
  }
  Usage();
  return 2;
}
