file(REMOVE_RECURSE
  "CMakeFiles/union_all_test.dir/union_all_test.cc.o"
  "CMakeFiles/union_all_test.dir/union_all_test.cc.o.d"
  "union_all_test"
  "union_all_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_all_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
