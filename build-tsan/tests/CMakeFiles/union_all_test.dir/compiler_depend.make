# Empty compiler generated dependencies file for union_all_test.
# This may be replaced when dependencies are built.
