# Empty dependencies file for scanner_equivalence_test.
# This may be replaced when dependencies are built.
