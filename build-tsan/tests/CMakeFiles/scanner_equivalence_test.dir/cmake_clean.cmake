file(REMOVE_RECURSE
  "CMakeFiles/scanner_equivalence_test.dir/scanner_equivalence_test.cc.o"
  "CMakeFiles/scanner_equivalence_test.dir/scanner_equivalence_test.cc.o.d"
  "scanner_equivalence_test"
  "scanner_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanner_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
