file(REMOVE_RECURSE
  "CMakeFiles/analytical_model_test.dir/analytical_model_test.cc.o"
  "CMakeFiles/analytical_model_test.dir/analytical_model_test.cc.o.d"
  "analytical_model_test"
  "analytical_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytical_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
