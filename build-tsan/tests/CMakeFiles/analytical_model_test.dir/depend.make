# Empty dependencies file for analytical_model_test.
# This may be replaced when dependencies are built.
