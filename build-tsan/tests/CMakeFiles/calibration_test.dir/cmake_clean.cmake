file(REMOVE_RECURSE
  "CMakeFiles/calibration_test.dir/calibration_test.cc.o"
  "CMakeFiles/calibration_test.dir/calibration_test.cc.o.d"
  "calibration_test"
  "calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
