# Empty dependencies file for calibration_test.
# This may be replaced when dependencies are built.
