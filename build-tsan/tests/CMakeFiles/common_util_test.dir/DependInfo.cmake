
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_util_test.cc" "tests/CMakeFiles/common_util_test.dir/common_util_test.cc.o" "gcc" "tests/CMakeFiles/common_util_test.dir/common_util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rodb_tpch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_wos.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_advisor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_compression.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
