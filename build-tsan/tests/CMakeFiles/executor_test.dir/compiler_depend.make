# Empty compiler generated dependencies file for executor_test.
# This may be replaced when dependencies are built.
