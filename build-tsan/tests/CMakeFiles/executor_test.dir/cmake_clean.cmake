file(REMOVE_RECURSE
  "CMakeFiles/executor_test.dir/executor_test.cc.o"
  "CMakeFiles/executor_test.dir/executor_test.cc.o.d"
  "executor_test"
  "executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
