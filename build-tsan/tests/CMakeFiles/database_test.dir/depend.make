# Empty dependencies file for database_test.
# This may be replaced when dependencies are built.
