file(REMOVE_RECURSE
  "CMakeFiles/row_page_test.dir/row_page_test.cc.o"
  "CMakeFiles/row_page_test.dir/row_page_test.cc.o.d"
  "row_page_test"
  "row_page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
