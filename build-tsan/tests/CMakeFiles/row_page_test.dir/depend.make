# Empty dependencies file for row_page_test.
# This may be replaced when dependencies are built.
