file(REMOVE_RECURSE
  "CMakeFiles/codec_test.dir/codec_test.cc.o"
  "CMakeFiles/codec_test.dir/codec_test.cc.o.d"
  "codec_test"
  "codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
