# Empty compiler generated dependencies file for operators_test.
# This may be replaced when dependencies are built.
