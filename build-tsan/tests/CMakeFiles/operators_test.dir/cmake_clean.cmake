file(REMOVE_RECURSE
  "CMakeFiles/operators_test.dir/operators_test.cc.o"
  "CMakeFiles/operators_test.dir/operators_test.cc.o.d"
  "operators_test"
  "operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
