file(REMOVE_RECURSE
  "CMakeFiles/wos_test.dir/wos_test.cc.o"
  "CMakeFiles/wos_test.dir/wos_test.cc.o.d"
  "wos_test"
  "wos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
