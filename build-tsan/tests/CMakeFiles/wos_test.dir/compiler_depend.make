# Empty compiler generated dependencies file for wos_test.
# This may be replaced when dependencies are built.
