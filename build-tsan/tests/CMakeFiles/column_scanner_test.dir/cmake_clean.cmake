file(REMOVE_RECURSE
  "CMakeFiles/column_scanner_test.dir/column_scanner_test.cc.o"
  "CMakeFiles/column_scanner_test.dir/column_scanner_test.cc.o.d"
  "column_scanner_test"
  "column_scanner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
