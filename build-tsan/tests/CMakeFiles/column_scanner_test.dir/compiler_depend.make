# Empty compiler generated dependencies file for column_scanner_test.
# This may be replaced when dependencies are built.
