file(REMOVE_RECURSE
  "CMakeFiles/tpch_test.dir/tpch_test.cc.o"
  "CMakeFiles/tpch_test.dir/tpch_test.cc.o.d"
  "tpch_test"
  "tpch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
