# Empty compiler generated dependencies file for tpch_test.
# This may be replaced when dependencies are built.
