file(REMOVE_RECURSE
  "CMakeFiles/predicate_test.dir/predicate_test.cc.o"
  "CMakeFiles/predicate_test.dir/predicate_test.cc.o.d"
  "predicate_test"
  "predicate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
