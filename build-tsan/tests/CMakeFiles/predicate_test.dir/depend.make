# Empty dependencies file for predicate_test.
# This may be replaced when dependencies are built.
