file(REMOVE_RECURSE
  "CMakeFiles/stats_test.dir/stats_test.cc.o"
  "CMakeFiles/stats_test.dir/stats_test.cc.o.d"
  "stats_test"
  "stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
