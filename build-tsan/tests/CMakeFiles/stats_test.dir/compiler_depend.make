# Empty compiler generated dependencies file for stats_test.
# This may be replaced when dependencies are built.
