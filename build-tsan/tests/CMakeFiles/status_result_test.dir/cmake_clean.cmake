file(REMOVE_RECURSE
  "CMakeFiles/status_result_test.dir/status_result_test.cc.o"
  "CMakeFiles/status_result_test.dir/status_result_test.cc.o.d"
  "status_result_test"
  "status_result_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/status_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
