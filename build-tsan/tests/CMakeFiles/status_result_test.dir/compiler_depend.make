# Empty compiler generated dependencies file for status_result_test.
# This may be replaced when dependencies are built.
