file(REMOVE_RECURSE
  "CMakeFiles/schema_test.dir/schema_test.cc.o"
  "CMakeFiles/schema_test.dir/schema_test.cc.o.d"
  "schema_test"
  "schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
