# Empty compiler generated dependencies file for schema_test.
# This may be replaced when dependencies are built.
