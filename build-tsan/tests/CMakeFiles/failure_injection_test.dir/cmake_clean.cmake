file(REMOVE_RECURSE
  "CMakeFiles/failure_injection_test.dir/failure_injection_test.cc.o"
  "CMakeFiles/failure_injection_test.dir/failure_injection_test.cc.o.d"
  "failure_injection_test"
  "failure_injection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
