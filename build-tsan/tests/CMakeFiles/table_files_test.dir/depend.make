# Empty dependencies file for table_files_test.
# This may be replaced when dependencies are built.
