file(REMOVE_RECURSE
  "CMakeFiles/table_files_test.dir/table_files_test.cc.o"
  "CMakeFiles/table_files_test.dir/table_files_test.cc.o.d"
  "table_files_test"
  "table_files_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
