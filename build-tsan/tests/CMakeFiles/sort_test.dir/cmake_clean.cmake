file(REMOVE_RECURSE
  "CMakeFiles/sort_test.dir/sort_test.cc.o"
  "CMakeFiles/sort_test.dir/sort_test.cc.o.d"
  "sort_test"
  "sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
