# Empty compiler generated dependencies file for sort_test.
# This may be replaced when dependencies are built.
