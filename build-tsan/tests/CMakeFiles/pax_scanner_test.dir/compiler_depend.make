# Empty compiler generated dependencies file for pax_scanner_test.
# This may be replaced when dependencies are built.
