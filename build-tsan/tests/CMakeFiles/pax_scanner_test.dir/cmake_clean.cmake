file(REMOVE_RECURSE
  "CMakeFiles/pax_scanner_test.dir/pax_scanner_test.cc.o"
  "CMakeFiles/pax_scanner_test.dir/pax_scanner_test.cc.o.d"
  "pax_scanner_test"
  "pax_scanner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pax_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
