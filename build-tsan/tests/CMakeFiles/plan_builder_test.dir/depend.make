# Empty dependencies file for plan_builder_test.
# This may be replaced when dependencies are built.
