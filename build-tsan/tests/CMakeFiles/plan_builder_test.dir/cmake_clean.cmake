file(REMOVE_RECURSE
  "CMakeFiles/plan_builder_test.dir/plan_builder_test.cc.o"
  "CMakeFiles/plan_builder_test.dir/plan_builder_test.cc.o.d"
  "plan_builder_test"
  "plan_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
