# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for column_page_test.
