# Empty dependencies file for column_page_test.
# This may be replaced when dependencies are built.
