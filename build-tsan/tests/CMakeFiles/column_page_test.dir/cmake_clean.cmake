file(REMOVE_RECURSE
  "CMakeFiles/column_page_test.dir/column_page_test.cc.o"
  "CMakeFiles/column_page_test.dir/column_page_test.cc.o.d"
  "column_page_test"
  "column_page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
