# Empty dependencies file for compressed_eval_test.
# This may be replaced when dependencies are built.
