file(REMOVE_RECURSE
  "CMakeFiles/compressed_eval_test.dir/compressed_eval_test.cc.o"
  "CMakeFiles/compressed_eval_test.dir/compressed_eval_test.cc.o.d"
  "compressed_eval_test"
  "compressed_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
