file(REMOVE_RECURSE
  "CMakeFiles/tuple_block_test.dir/tuple_block_test.cc.o"
  "CMakeFiles/tuple_block_test.dir/tuple_block_test.cc.o.d"
  "tuple_block_test"
  "tuple_block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
