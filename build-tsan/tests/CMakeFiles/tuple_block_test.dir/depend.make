# Empty dependencies file for tuple_block_test.
# This may be replaced when dependencies are built.
