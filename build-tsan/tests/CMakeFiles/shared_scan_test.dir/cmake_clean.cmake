file(REMOVE_RECURSE
  "CMakeFiles/shared_scan_test.dir/shared_scan_test.cc.o"
  "CMakeFiles/shared_scan_test.dir/shared_scan_test.cc.o.d"
  "shared_scan_test"
  "shared_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
