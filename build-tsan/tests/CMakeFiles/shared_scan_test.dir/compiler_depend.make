# Empty compiler generated dependencies file for shared_scan_test.
# This may be replaced when dependencies are built.
