# Empty dependencies file for merge_join_test.
# This may be replaced when dependencies are built.
