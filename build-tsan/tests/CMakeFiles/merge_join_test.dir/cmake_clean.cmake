file(REMOVE_RECURSE
  "CMakeFiles/merge_join_test.dir/merge_join_test.cc.o"
  "CMakeFiles/merge_join_test.dir/merge_join_test.cc.o.d"
  "merge_join_test"
  "merge_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
