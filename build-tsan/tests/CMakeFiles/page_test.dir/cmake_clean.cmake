file(REMOVE_RECURSE
  "CMakeFiles/page_test.dir/page_test.cc.o"
  "CMakeFiles/page_test.dir/page_test.cc.o.d"
  "page_test"
  "page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
