# Empty dependencies file for page_test.
# This may be replaced when dependencies are built.
