# Empty compiler generated dependencies file for robustness_sweep_test.
# This may be replaced when dependencies are built.
