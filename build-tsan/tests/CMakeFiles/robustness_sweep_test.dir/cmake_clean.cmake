file(REMOVE_RECURSE
  "CMakeFiles/robustness_sweep_test.dir/robustness_sweep_test.cc.o"
  "CMakeFiles/robustness_sweep_test.dir/robustness_sweep_test.cc.o.d"
  "robustness_sweep_test"
  "robustness_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
