# Empty compiler generated dependencies file for pax_page_test.
# This may be replaced when dependencies are built.
