file(REMOVE_RECURSE
  "CMakeFiles/pax_page_test.dir/pax_page_test.cc.o"
  "CMakeFiles/pax_page_test.dir/pax_page_test.cc.o.d"
  "pax_page_test"
  "pax_page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pax_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
