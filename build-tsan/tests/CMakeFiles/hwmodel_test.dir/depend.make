# Empty dependencies file for hwmodel_test.
# This may be replaced when dependencies are built.
