file(REMOVE_RECURSE
  "CMakeFiles/hwmodel_test.dir/hwmodel_test.cc.o"
  "CMakeFiles/hwmodel_test.dir/hwmodel_test.cc.o.d"
  "hwmodel_test"
  "hwmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
