# Empty dependencies file for bitio_test.
# This may be replaced when dependencies are built.
