file(REMOVE_RECURSE
  "CMakeFiles/bitio_test.dir/bitio_test.cc.o"
  "CMakeFiles/bitio_test.dir/bitio_test.cc.o.d"
  "bitio_test"
  "bitio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
