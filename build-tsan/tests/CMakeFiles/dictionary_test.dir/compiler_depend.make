# Empty compiler generated dependencies file for dictionary_test.
# This may be replaced when dependencies are built.
