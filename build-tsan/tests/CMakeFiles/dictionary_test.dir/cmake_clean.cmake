file(REMOVE_RECURSE
  "CMakeFiles/dictionary_test.dir/dictionary_test.cc.o"
  "CMakeFiles/dictionary_test.dir/dictionary_test.cc.o.d"
  "dictionary_test"
  "dictionary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
