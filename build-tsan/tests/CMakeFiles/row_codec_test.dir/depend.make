# Empty dependencies file for row_codec_test.
# This may be replaced when dependencies are built.
