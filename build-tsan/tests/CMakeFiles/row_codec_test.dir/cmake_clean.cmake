file(REMOVE_RECURSE
  "CMakeFiles/row_codec_test.dir/row_codec_test.cc.o"
  "CMakeFiles/row_codec_test.dir/row_codec_test.cc.o.d"
  "row_codec_test"
  "row_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
