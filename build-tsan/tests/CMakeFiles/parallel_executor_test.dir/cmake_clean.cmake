file(REMOVE_RECURSE
  "CMakeFiles/parallel_executor_test.dir/parallel_executor_test.cc.o"
  "CMakeFiles/parallel_executor_test.dir/parallel_executor_test.cc.o.d"
  "parallel_executor_test"
  "parallel_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
