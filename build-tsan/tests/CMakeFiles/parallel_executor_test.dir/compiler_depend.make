# Empty compiler generated dependencies file for parallel_executor_test.
# This may be replaced when dependencies are built.
