file(REMOVE_RECURSE
  "CMakeFiles/disk_model_test.dir/disk_model_test.cc.o"
  "CMakeFiles/disk_model_test.dir/disk_model_test.cc.o.d"
  "disk_model_test"
  "disk_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
