# Empty dependencies file for disk_model_test.
# This may be replaced when dependencies are built.
