# Empty compiler generated dependencies file for row_scanner_test.
# This may be replaced when dependencies are built.
