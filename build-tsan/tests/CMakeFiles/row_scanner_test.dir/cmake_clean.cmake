file(REMOVE_RECURSE
  "CMakeFiles/row_scanner_test.dir/row_scanner_test.cc.o"
  "CMakeFiles/row_scanner_test.dir/row_scanner_test.cc.o.d"
  "row_scanner_test"
  "row_scanner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
