# Empty dependencies file for rodb_tpch.
# This may be replaced when dependencies are built.
