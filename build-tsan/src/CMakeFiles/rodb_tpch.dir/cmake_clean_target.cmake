file(REMOVE_RECURSE
  "librodb_tpch.a"
)
