file(REMOVE_RECURSE
  "CMakeFiles/rodb_tpch.dir/tpch/generator.cc.o"
  "CMakeFiles/rodb_tpch.dir/tpch/generator.cc.o.d"
  "CMakeFiles/rodb_tpch.dir/tpch/loader.cc.o"
  "CMakeFiles/rodb_tpch.dir/tpch/loader.cc.o.d"
  "CMakeFiles/rodb_tpch.dir/tpch/tpch_schema.cc.o"
  "CMakeFiles/rodb_tpch.dir/tpch/tpch_schema.cc.o.d"
  "librodb_tpch.a"
  "librodb_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
