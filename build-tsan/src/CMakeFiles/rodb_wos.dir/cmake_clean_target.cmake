file(REMOVE_RECURSE
  "librodb_wos.a"
)
