# Empty dependencies file for rodb_wos.
# This may be replaced when dependencies are built.
