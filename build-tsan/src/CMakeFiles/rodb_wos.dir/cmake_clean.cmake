file(REMOVE_RECURSE
  "CMakeFiles/rodb_wos.dir/wos/merge.cc.o"
  "CMakeFiles/rodb_wos.dir/wos/merge.cc.o.d"
  "CMakeFiles/rodb_wos.dir/wos/write_store.cc.o"
  "CMakeFiles/rodb_wos.dir/wos/write_store.cc.o.d"
  "librodb_wos.a"
  "librodb_wos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_wos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
