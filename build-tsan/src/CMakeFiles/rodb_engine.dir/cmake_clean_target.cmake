file(REMOVE_RECURSE
  "librodb_engine.a"
)
