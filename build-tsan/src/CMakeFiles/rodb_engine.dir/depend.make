# Empty dependencies file for rodb_engine.
# This may be replaced when dependencies are built.
