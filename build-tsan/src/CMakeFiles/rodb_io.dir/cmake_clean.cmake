file(REMOVE_RECURSE
  "CMakeFiles/rodb_io.dir/io/file_backend.cc.o"
  "CMakeFiles/rodb_io.dir/io/file_backend.cc.o.d"
  "CMakeFiles/rodb_io.dir/io/mem_backend.cc.o"
  "CMakeFiles/rodb_io.dir/io/mem_backend.cc.o.d"
  "librodb_io.a"
  "librodb_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
