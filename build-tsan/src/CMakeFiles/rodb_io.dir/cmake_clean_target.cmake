file(REMOVE_RECURSE
  "librodb_io.a"
)
