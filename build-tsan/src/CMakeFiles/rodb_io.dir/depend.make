# Empty dependencies file for rodb_io.
# This may be replaced when dependencies are built.
