file(REMOVE_RECURSE
  "librodb_model.a"
)
