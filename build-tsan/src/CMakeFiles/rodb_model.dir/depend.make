# Empty dependencies file for rodb_model.
# This may be replaced when dependencies are built.
