file(REMOVE_RECURSE
  "CMakeFiles/rodb_model.dir/model/analytical_model.cc.o"
  "CMakeFiles/rodb_model.dir/model/analytical_model.cc.o.d"
  "CMakeFiles/rodb_model.dir/model/contour.cc.o"
  "CMakeFiles/rodb_model.dir/model/contour.cc.o.d"
  "librodb_model.a"
  "librodb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
