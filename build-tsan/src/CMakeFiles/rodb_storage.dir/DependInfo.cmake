
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/rodb_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/rodb_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/column_page.cc" "src/CMakeFiles/rodb_storage.dir/storage/column_page.cc.o" "gcc" "src/CMakeFiles/rodb_storage.dir/storage/column_page.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/rodb_storage.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/rodb_storage.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/rodb_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/rodb_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/pax_page.cc" "src/CMakeFiles/rodb_storage.dir/storage/pax_page.cc.o" "gcc" "src/CMakeFiles/rodb_storage.dir/storage/pax_page.cc.o.d"
  "/root/repo/src/storage/row_page.cc" "src/CMakeFiles/rodb_storage.dir/storage/row_page.cc.o" "gcc" "src/CMakeFiles/rodb_storage.dir/storage/row_page.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/rodb_storage.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/rodb_storage.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table_files.cc" "src/CMakeFiles/rodb_storage.dir/storage/table_files.cc.o" "gcc" "src/CMakeFiles/rodb_storage.dir/storage/table_files.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rodb_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/rodb_compression.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
