# Empty dependencies file for rodb_storage.
# This may be replaced when dependencies are built.
