file(REMOVE_RECURSE
  "librodb_storage.a"
)
