file(REMOVE_RECURSE
  "CMakeFiles/rodb_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/rodb_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/rodb_storage.dir/storage/column_page.cc.o"
  "CMakeFiles/rodb_storage.dir/storage/column_page.cc.o.d"
  "CMakeFiles/rodb_storage.dir/storage/database.cc.o"
  "CMakeFiles/rodb_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/rodb_storage.dir/storage/page.cc.o"
  "CMakeFiles/rodb_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/rodb_storage.dir/storage/pax_page.cc.o"
  "CMakeFiles/rodb_storage.dir/storage/pax_page.cc.o.d"
  "CMakeFiles/rodb_storage.dir/storage/row_page.cc.o"
  "CMakeFiles/rodb_storage.dir/storage/row_page.cc.o.d"
  "CMakeFiles/rodb_storage.dir/storage/schema.cc.o"
  "CMakeFiles/rodb_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/rodb_storage.dir/storage/table_files.cc.o"
  "CMakeFiles/rodb_storage.dir/storage/table_files.cc.o.d"
  "librodb_storage.a"
  "librodb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
