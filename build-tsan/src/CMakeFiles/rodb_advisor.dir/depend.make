# Empty dependencies file for rodb_advisor.
# This may be replaced when dependencies are built.
