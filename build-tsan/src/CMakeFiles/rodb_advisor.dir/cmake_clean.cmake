file(REMOVE_RECURSE
  "CMakeFiles/rodb_advisor.dir/advisor/compression_advisor.cc.o"
  "CMakeFiles/rodb_advisor.dir/advisor/compression_advisor.cc.o.d"
  "CMakeFiles/rodb_advisor.dir/advisor/layout_advisor.cc.o"
  "CMakeFiles/rodb_advisor.dir/advisor/layout_advisor.cc.o.d"
  "CMakeFiles/rodb_advisor.dir/advisor/selectivity.cc.o"
  "CMakeFiles/rodb_advisor.dir/advisor/selectivity.cc.o.d"
  "librodb_advisor.a"
  "librodb_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
