file(REMOVE_RECURSE
  "librodb_advisor.a"
)
