
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitio.cc" "src/CMakeFiles/rodb_common.dir/common/bitio.cc.o" "gcc" "src/CMakeFiles/rodb_common.dir/common/bitio.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/rodb_common.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/rodb_common.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rodb_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rodb_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/rodb_common.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/rodb_common.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/rodb_common.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/rodb_common.dir/common/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
