# Empty dependencies file for rodb_common.
# This may be replaced when dependencies are built.
