file(REMOVE_RECURSE
  "librodb_common.a"
)
