file(REMOVE_RECURSE
  "CMakeFiles/rodb_common.dir/common/bitio.cc.o"
  "CMakeFiles/rodb_common.dir/common/bitio.cc.o.d"
  "CMakeFiles/rodb_common.dir/common/crc32.cc.o"
  "CMakeFiles/rodb_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/rodb_common.dir/common/status.cc.o"
  "CMakeFiles/rodb_common.dir/common/status.cc.o.d"
  "CMakeFiles/rodb_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/rodb_common.dir/common/stopwatch.cc.o.d"
  "CMakeFiles/rodb_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/rodb_common.dir/common/thread_pool.cc.o.d"
  "librodb_common.a"
  "librodb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
