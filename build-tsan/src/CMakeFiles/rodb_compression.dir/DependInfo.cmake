
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compression/bitpack_codec.cc" "src/CMakeFiles/rodb_compression.dir/compression/bitpack_codec.cc.o" "gcc" "src/CMakeFiles/rodb_compression.dir/compression/bitpack_codec.cc.o.d"
  "/root/repo/src/compression/codec.cc" "src/CMakeFiles/rodb_compression.dir/compression/codec.cc.o" "gcc" "src/CMakeFiles/rodb_compression.dir/compression/codec.cc.o.d"
  "/root/repo/src/compression/dictionary.cc" "src/CMakeFiles/rodb_compression.dir/compression/dictionary.cc.o" "gcc" "src/CMakeFiles/rodb_compression.dir/compression/dictionary.cc.o.d"
  "/root/repo/src/compression/for_codec.cc" "src/CMakeFiles/rodb_compression.dir/compression/for_codec.cc.o" "gcc" "src/CMakeFiles/rodb_compression.dir/compression/for_codec.cc.o.d"
  "/root/repo/src/compression/row_codec.cc" "src/CMakeFiles/rodb_compression.dir/compression/row_codec.cc.o" "gcc" "src/CMakeFiles/rodb_compression.dir/compression/row_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
