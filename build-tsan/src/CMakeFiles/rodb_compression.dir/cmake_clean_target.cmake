file(REMOVE_RECURSE
  "librodb_compression.a"
)
