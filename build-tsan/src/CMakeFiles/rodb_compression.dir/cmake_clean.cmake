file(REMOVE_RECURSE
  "CMakeFiles/rodb_compression.dir/compression/bitpack_codec.cc.o"
  "CMakeFiles/rodb_compression.dir/compression/bitpack_codec.cc.o.d"
  "CMakeFiles/rodb_compression.dir/compression/codec.cc.o"
  "CMakeFiles/rodb_compression.dir/compression/codec.cc.o.d"
  "CMakeFiles/rodb_compression.dir/compression/dictionary.cc.o"
  "CMakeFiles/rodb_compression.dir/compression/dictionary.cc.o.d"
  "CMakeFiles/rodb_compression.dir/compression/for_codec.cc.o"
  "CMakeFiles/rodb_compression.dir/compression/for_codec.cc.o.d"
  "CMakeFiles/rodb_compression.dir/compression/row_codec.cc.o"
  "CMakeFiles/rodb_compression.dir/compression/row_codec.cc.o.d"
  "librodb_compression.a"
  "librodb_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
