# Empty dependencies file for rodb_compression.
# This may be replaced when dependencies are built.
