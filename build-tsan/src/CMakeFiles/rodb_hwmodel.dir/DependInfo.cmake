
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwmodel/cpu_model.cc" "src/CMakeFiles/rodb_hwmodel.dir/hwmodel/cpu_model.cc.o" "gcc" "src/CMakeFiles/rodb_hwmodel.dir/hwmodel/cpu_model.cc.o.d"
  "/root/repo/src/hwmodel/disk_model.cc" "src/CMakeFiles/rodb_hwmodel.dir/hwmodel/disk_model.cc.o" "gcc" "src/CMakeFiles/rodb_hwmodel.dir/hwmodel/disk_model.cc.o.d"
  "/root/repo/src/hwmodel/hardware_config.cc" "src/CMakeFiles/rodb_hwmodel.dir/hwmodel/hardware_config.cc.o" "gcc" "src/CMakeFiles/rodb_hwmodel.dir/hwmodel/hardware_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/rodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
