# Empty dependencies file for rodb_hwmodel.
# This may be replaced when dependencies are built.
