file(REMOVE_RECURSE
  "librodb_hwmodel.a"
)
