file(REMOVE_RECURSE
  "CMakeFiles/rodb_hwmodel.dir/hwmodel/cpu_model.cc.o"
  "CMakeFiles/rodb_hwmodel.dir/hwmodel/cpu_model.cc.o.d"
  "CMakeFiles/rodb_hwmodel.dir/hwmodel/disk_model.cc.o"
  "CMakeFiles/rodb_hwmodel.dir/hwmodel/disk_model.cc.o.d"
  "CMakeFiles/rodb_hwmodel.dir/hwmodel/hardware_config.cc.o"
  "CMakeFiles/rodb_hwmodel.dir/hwmodel/hardware_config.cc.o.d"
  "librodb_hwmodel.a"
  "librodb_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
