file(REMOVE_RECURSE
  "CMakeFiles/micro_scan_bench.dir/bench/micro_scan_bench.cc.o"
  "CMakeFiles/micro_scan_bench.dir/bench/micro_scan_bench.cc.o.d"
  "bench/micro_scan_bench"
  "bench/micro_scan_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scan_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
