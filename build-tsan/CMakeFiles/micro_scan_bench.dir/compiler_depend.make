# Empty compiler generated dependencies file for micro_scan_bench.
# This may be replaced when dependencies are built.
