# Empty dependencies file for parallel_scan_bench.
# This may be replaced when dependencies are built.
