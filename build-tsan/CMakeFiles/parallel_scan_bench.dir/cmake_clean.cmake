file(REMOVE_RECURSE
  "CMakeFiles/parallel_scan_bench.dir/bench/parallel_scan_bench.cc.o"
  "CMakeFiles/parallel_scan_bench.dir/bench/parallel_scan_bench.cc.o.d"
  "bench/parallel_scan_bench"
  "bench/parallel_scan_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_scan_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
