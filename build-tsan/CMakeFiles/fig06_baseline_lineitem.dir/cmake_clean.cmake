file(REMOVE_RECURSE
  "CMakeFiles/fig06_baseline_lineitem.dir/bench/fig06_baseline_lineitem.cc.o"
  "CMakeFiles/fig06_baseline_lineitem.dir/bench/fig06_baseline_lineitem.cc.o.d"
  "bench/fig06_baseline_lineitem"
  "bench/fig06_baseline_lineitem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_baseline_lineitem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
