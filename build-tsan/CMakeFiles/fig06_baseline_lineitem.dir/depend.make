# Empty dependencies file for fig06_baseline_lineitem.
# This may be replaced when dependencies are built.
