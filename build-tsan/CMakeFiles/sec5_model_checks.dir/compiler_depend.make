# Empty compiler generated dependencies file for sec5_model_checks.
# This may be replaced when dependencies are built.
