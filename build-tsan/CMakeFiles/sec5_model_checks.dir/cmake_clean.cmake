file(REMOVE_RECURSE
  "CMakeFiles/sec5_model_checks.dir/bench/sec5_model_checks.cc.o"
  "CMakeFiles/sec5_model_checks.dir/bench/sec5_model_checks.cc.o.d"
  "bench/sec5_model_checks"
  "bench/sec5_model_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_model_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
