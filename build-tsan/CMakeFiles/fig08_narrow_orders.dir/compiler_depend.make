# Empty compiler generated dependencies file for fig08_narrow_orders.
# This may be replaced when dependencies are built.
