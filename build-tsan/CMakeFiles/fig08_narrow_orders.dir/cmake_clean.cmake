file(REMOVE_RECURSE
  "CMakeFiles/fig08_narrow_orders.dir/bench/fig08_narrow_orders.cc.o"
  "CMakeFiles/fig08_narrow_orders.dir/bench/fig08_narrow_orders.cc.o.d"
  "bench/fig08_narrow_orders"
  "bench/fig08_narrow_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_narrow_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
