file(REMOVE_RECURSE
  "CMakeFiles/micro_codec_bench.dir/bench/micro_codec_bench.cc.o"
  "CMakeFiles/micro_codec_bench.dir/bench/micro_codec_bench.cc.o.d"
  "bench/micro_codec_bench"
  "bench/micro_codec_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_codec_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
