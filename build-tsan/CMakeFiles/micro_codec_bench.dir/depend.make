# Empty dependencies file for micro_codec_bench.
# This may be replaced when dependencies are built.
