file(REMOVE_RECURSE
  "CMakeFiles/ablation_scanners.dir/bench/ablation_scanners.cc.o"
  "CMakeFiles/ablation_scanners.dir/bench/ablation_scanners.cc.o.d"
  "bench/ablation_scanners"
  "bench/ablation_scanners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scanners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
