# Empty dependencies file for ablation_scanners.
# This may be replaced when dependencies are built.
