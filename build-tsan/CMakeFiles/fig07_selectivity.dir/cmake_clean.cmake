file(REMOVE_RECURSE
  "CMakeFiles/fig07_selectivity.dir/bench/fig07_selectivity.cc.o"
  "CMakeFiles/fig07_selectivity.dir/bench/fig07_selectivity.cc.o.d"
  "bench/fig07_selectivity"
  "bench/fig07_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
