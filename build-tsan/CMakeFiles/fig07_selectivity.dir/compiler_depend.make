# Empty compiler generated dependencies file for fig07_selectivity.
# This may be replaced when dependencies are built.
