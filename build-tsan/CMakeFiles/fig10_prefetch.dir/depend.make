# Empty dependencies file for fig10_prefetch.
# This may be replaced when dependencies are built.
