file(REMOVE_RECURSE
  "CMakeFiles/fig10_prefetch.dir/bench/fig10_prefetch.cc.o"
  "CMakeFiles/fig10_prefetch.dir/bench/fig10_prefetch.cc.o.d"
  "bench/fig10_prefetch"
  "bench/fig10_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
