# Empty dependencies file for ablation_compressed_eval.
# This may be replaced when dependencies are built.
