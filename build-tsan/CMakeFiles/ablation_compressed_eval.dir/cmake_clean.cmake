file(REMOVE_RECURSE
  "CMakeFiles/ablation_compressed_eval.dir/bench/ablation_compressed_eval.cc.o"
  "CMakeFiles/ablation_compressed_eval.dir/bench/ablation_compressed_eval.cc.o.d"
  "bench/ablation_compressed_eval"
  "bench/ablation_compressed_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compressed_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
