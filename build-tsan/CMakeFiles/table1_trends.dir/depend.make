# Empty dependencies file for table1_trends.
# This may be replaced when dependencies are built.
