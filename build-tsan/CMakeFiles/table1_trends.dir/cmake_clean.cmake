file(REMOVE_RECURSE
  "CMakeFiles/table1_trends.dir/bench/table1_trends.cc.o"
  "CMakeFiles/table1_trends.dir/bench/table1_trends.cc.o.d"
  "bench/table1_trends"
  "bench/table1_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
