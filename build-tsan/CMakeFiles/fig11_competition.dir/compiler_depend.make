# Empty compiler generated dependencies file for fig11_competition.
# This may be replaced when dependencies are built.
