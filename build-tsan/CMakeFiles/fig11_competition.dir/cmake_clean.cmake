file(REMOVE_RECURSE
  "CMakeFiles/fig11_competition.dir/bench/fig11_competition.cc.o"
  "CMakeFiles/fig11_competition.dir/bench/fig11_competition.cc.o.d"
  "bench/fig11_competition"
  "bench/fig11_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
