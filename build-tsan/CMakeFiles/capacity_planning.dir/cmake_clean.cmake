file(REMOVE_RECURSE
  "CMakeFiles/capacity_planning.dir/bench/capacity_planning.cc.o"
  "CMakeFiles/capacity_planning.dir/bench/capacity_planning.cc.o.d"
  "bench/capacity_planning"
  "bench/capacity_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
