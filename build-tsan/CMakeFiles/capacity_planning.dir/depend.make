# Empty dependencies file for capacity_planning.
# This may be replaced when dependencies are built.
