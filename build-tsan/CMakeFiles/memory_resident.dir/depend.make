# Empty dependencies file for memory_resident.
# This may be replaced when dependencies are built.
