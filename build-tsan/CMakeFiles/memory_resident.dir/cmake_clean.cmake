file(REMOVE_RECURSE
  "CMakeFiles/memory_resident.dir/bench/memory_resident.cc.o"
  "CMakeFiles/memory_resident.dir/bench/memory_resident.cc.o.d"
  "bench/memory_resident"
  "bench/memory_resident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_resident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
