file(REMOVE_RECURSE
  "CMakeFiles/fig09_compression.dir/bench/fig09_compression.cc.o"
  "CMakeFiles/fig09_compression.dir/bench/fig09_compression.cc.o.d"
  "bench/fig09_compression"
  "bench/fig09_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
