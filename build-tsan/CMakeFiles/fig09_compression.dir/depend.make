# Empty dependencies file for fig09_compression.
# This may be replaced when dependencies are built.
