file(REMOVE_RECURSE
  "CMakeFiles/fig02_speedup_contour.dir/bench/fig02_speedup_contour.cc.o"
  "CMakeFiles/fig02_speedup_contour.dir/bench/fig02_speedup_contour.cc.o.d"
  "bench/fig02_speedup_contour"
  "bench/fig02_speedup_contour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_speedup_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
