# Empty dependencies file for fig02_speedup_contour.
# This may be replaced when dependencies are built.
