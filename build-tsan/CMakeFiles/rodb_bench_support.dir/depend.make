# Empty dependencies file for rodb_bench_support.
# This may be replaced when dependencies are built.
