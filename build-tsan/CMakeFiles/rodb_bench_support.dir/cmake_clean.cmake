file(REMOVE_RECURSE
  "CMakeFiles/rodb_bench_support.dir/bench/bench_util.cc.o"
  "CMakeFiles/rodb_bench_support.dir/bench/bench_util.cc.o.d"
  "librodb_bench_support.a"
  "librodb_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodb_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
