file(REMOVE_RECURSE
  "librodb_bench_support.a"
)
