file(REMOVE_RECURSE
  "CMakeFiles/warehouse_report.dir/warehouse_report.cpp.o"
  "CMakeFiles/warehouse_report.dir/warehouse_report.cpp.o.d"
  "warehouse_report"
  "warehouse_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
