# Empty compiler generated dependencies file for warehouse_report.
# This may be replaced when dependencies are built.
