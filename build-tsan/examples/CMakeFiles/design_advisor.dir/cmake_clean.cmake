file(REMOVE_RECURSE
  "CMakeFiles/design_advisor.dir/design_advisor.cpp.o"
  "CMakeFiles/design_advisor.dir/design_advisor.cpp.o.d"
  "design_advisor"
  "design_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
