# Empty dependencies file for design_advisor.
# This may be replaced when dependencies are built.
