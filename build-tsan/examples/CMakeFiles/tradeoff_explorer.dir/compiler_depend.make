# Empty compiler generated dependencies file for tradeoff_explorer.
# This may be replaced when dependencies are built.
