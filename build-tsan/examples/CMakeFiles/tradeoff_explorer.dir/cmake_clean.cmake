file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_explorer.dir/tradeoff_explorer.cpp.o"
  "CMakeFiles/tradeoff_explorer.dir/tradeoff_explorer.cpp.o.d"
  "tradeoff_explorer"
  "tradeoff_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
