# Empty compiler generated dependencies file for bulk_load_pipeline.
# This may be replaced when dependencies are built.
