file(REMOVE_RECURSE
  "CMakeFiles/bulk_load_pipeline.dir/bulk_load_pipeline.cpp.o"
  "CMakeFiles/bulk_load_pipeline.dir/bulk_load_pipeline.cpp.o.d"
  "bulk_load_pipeline"
  "bulk_load_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_load_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
