# Empty compiler generated dependencies file for rodbctl.
# This may be replaced when dependencies are built.
