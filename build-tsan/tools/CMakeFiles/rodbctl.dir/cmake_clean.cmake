file(REMOVE_RECURSE
  "CMakeFiles/rodbctl.dir/rodbctl.cpp.o"
  "CMakeFiles/rodbctl.dir/rodbctl.cpp.o.d"
  "rodbctl"
  "rodbctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodbctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
